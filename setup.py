"""Legacy setup shim so `pip install -e .` works without the wheel package.

Metadata lives in pyproject.toml; this file only exists because the target
environment is offline (no PEP 517 build isolation, no `wheel`), which makes
pip fall back to the classic `setup.py develop` editable-install path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PayLess: query optimization over cloud data markets "
        "(EDBT 2015 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
