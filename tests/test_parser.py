"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse


class TestSelectList:
    def test_star(self):
        statement = parse("SELECT * FROM T")
        assert statement.items == []

    def test_columns_and_aliases(self):
        statement = parse("SELECT a, T.b AS bee, c cee FROM T")
        assert statement.items[0].column == ast.Column(None, "a")
        assert statement.items[1].column == ast.Column("T", "b")
        assert statement.items[1].alias == "bee"
        assert statement.items[2].alias == "cee"

    def test_aggregates(self):
        statement = parse("SELECT COUNT(*), AVG(t.x) AS m FROM t")
        count, avg = statement.items
        assert count.aggregate_func == "COUNT" and count.aggregate_arg is None
        assert avg.aggregate_func == "AVG"
        assert avg.aggregate_arg == ast.Column("t", "x")
        assert avg.alias == "m"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM t")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct


class TestFrom:
    def test_multiple_tables(self):
        statement = parse("SELECT * FROM A, B, C")
        assert [t.name for t in statement.tables] == ["A", "B", "C"]

    def test_alias(self):
        statement = parse("SELECT * FROM Station s")
        assert statement.tables[0].alias == "s"
        assert statement.tables[0].binding_name == "s"


class TestWhere:
    def test_simple_comparison(self):
        statement = parse("SELECT * FROM T WHERE a >= 10")
        condition = statement.where
        assert isinstance(condition, ast.ComparisonExpr)
        assert condition.op == ">="
        assert condition.right == 10

    def test_conjunction_flattened(self):
        statement = parse("SELECT * FROM T WHERE a = 1 AND b = 2 AND c = 3")
        assert isinstance(statement.where, ast.AndExpr)
        assert len(statement.where.operands) == 3

    def test_or_precedence(self):
        statement = parse("SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, ast.OrExpr)
        left, right = statement.where.operands
        assert isinstance(left, ast.ComparisonExpr)
        assert isinstance(right, ast.AndExpr)

    def test_parentheses(self):
        statement = parse("SELECT * FROM T WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(statement.where, ast.AndExpr)
        assert isinstance(statement.where.operands[0], ast.OrExpr)

    def test_chained_equality(self):
        statement = parse(
            "SELECT * FROM S, W WHERE S.Country = W.Country = ?"
        )
        chain = statement.where
        assert isinstance(chain, ast.ChainedEquality)
        assert len(chain.terms) == 3
        assert isinstance(chain.terms[2], ast.Parameter)

    def test_between(self):
        statement = parse("SELECT * FROM T WHERE a BETWEEN 1 AND 5")
        condition = statement.where
        assert isinstance(condition, ast.BetweenExpr)
        assert condition.low == 1 and condition.high == 5

    def test_between_binds_tighter_than_and(self):
        statement = parse(
            "SELECT * FROM T WHERE a BETWEEN 1 AND 5 AND b = 2"
        )
        assert isinstance(statement.where, ast.AndExpr)
        assert isinstance(statement.where.operands[0], ast.BetweenExpr)

    def test_in_list(self):
        statement = parse("SELECT * FROM T WHERE a IN (1, 2, 3)")
        assert isinstance(statement.where, ast.InExpr)
        assert statement.where.values == (1, 2, 3)

    def test_not(self):
        statement = parse("SELECT * FROM T WHERE NOT a = 1")
        assert isinstance(statement.where, ast.NotExpr)

    def test_parameters_numbered_in_order(self):
        statement = parse(
            "SELECT * FROM T WHERE a = ? AND b >= ? AND c <= ?"
        )
        assert statement.parameter_count == 3
        operands = statement.where.operands
        assert operands[0].right == ast.Parameter(0)
        assert operands[2].right == ast.Parameter(2)


class TestClauses:
    def test_group_by(self):
        statement = parse("SELECT City, COUNT(*) FROM T GROUP BY City")
        assert statement.group_by == [ast.Column(None, "City")]

    def test_order_by(self):
        statement = parse("SELECT * FROM T ORDER BY a DESC, b ASC, c")
        assert [item.descending for item in statement.order_by] == [
            True,
            False,
            False,
        ]

    def test_limit(self):
        assert parse("SELECT * FROM T LIMIT 5").limit == 5

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM T LIMIT -1")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM T WHERE",
            "SELECT * FROM T WHERE a",
            "SELECT * FROM T WHERE a = ",
            "SELECT * FROM T trailing garbage tokens =",
            "SELECT a FROM T GROUP City",
            "SELECT * FROM T WHERE 1 BETWEEN 2 AND 3",
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)

    def test_paper_query_q5_parses(self):
        parse(
            "SELECT * FROM Pollution, Station, Weather, ZipMap "
            "WHERE Station.Country = Weather.Country = ? "
            "AND Weather.Date >= ? AND Weather.Date <= ? "
            "AND Pollution.Rank >= ? AND Pollution.Rank <= ? "
            "AND Pollution.ZipCode = ZipMap.ZipCode "
            "AND ZipMap.City = Station.City "
            "AND Station.StationID = Weather.StationID"
        )
