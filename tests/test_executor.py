"""Executor tests: results must equal an all-local oracle evaluation."""

import pytest

from repro.relational.database import Database
from repro.relational.engine import evaluate
from repro.relational.table import Table


def oracle(payless, market, sql, params=()):
    """Evaluate the query against full local copies of every market table."""
    database = Database()
    logical = payless.compile(sql, params)
    for name in logical.tables:
        if payless.context.is_market(name):
            __, market_table = market.find_table(name)
            clone = Table(name, market_table.schema)
            clone.extend(market_table.table.rows)
            database.add(clone)
        else:
            database.add(payless.local_db.table(name))
    return evaluate(database, logical)


def as_multiset(relation_or_rows):
    rows = getattr(relation_or_rows, "rows", relation_or_rows)
    return sorted(rows, key=repr)


CASES = [
    ("SELECT * FROM Station", ()),
    ("SELECT * FROM Station WHERE Country = 'CountryA'", ()),
    ("SELECT * FROM Weather WHERE Date >= 3 AND Date <= 5", ()),
    (
        "SELECT Temperature FROM Station, Weather "
        "WHERE City = 'Beta' AND Station.Country = 'CountryA' "
        "AND Station.StationID = Weather.StationID",
        (),
    ),
    (
        "SELECT City, AVG(Temperature) FROM Station, Weather "
        "WHERE Station.Country = Weather.Country = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Station.StationID = Weather.StationID GROUP BY City",
        ("CountryA", 2, 4),
    ),
    ("SELECT COUNT(*) FROM Weather WHERE Country = 'CountryB'", ()),
    (
        "SELECT * FROM Weather WHERE Country = 'CountryA' OR Country = 'CountryB'",
        (),
    ),
    ("SELECT * FROM Station WHERE City IN ('Alpha', 'Delta')", ()),
    (
        "SELECT StationID FROM Weather WHERE Temperature >= 35.0 AND Date = 1",
        (),
    ),
    ("SELECT DISTINCT Country FROM Station", ()),
    ("SELECT * FROM Weather WHERE Date = 12345", ()),  # empty result
]


@pytest.mark.parametrize("sql,params", CASES)
def test_results_match_oracle(mini_payless, mini_weather_market, sql, params):
    result = mini_payless.query(sql, params)
    expected = oracle(mini_payless, mini_weather_market, sql, params)
    assert as_multiset(result.relation) == as_multiset(expected)


@pytest.mark.parametrize("sql,params", CASES)
def test_results_match_oracle_without_sqr(
    mini_weather_market, sql, params
):
    from repro import PayLess

    payless = PayLess.without_sqr(mini_weather_market)
    payless.register_dataset("WHW")
    result = payless.query(sql, params)
    expected = oracle(payless, mini_weather_market, sql, params)
    assert as_multiset(result.relation) == as_multiset(expected)


def test_repeated_query_is_free_and_identical(mini_payless):
    sql = "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 4"
    first = mini_payless.query(sql)
    second = mini_payless.query(sql)
    assert second.transactions == 0
    assert as_multiset(first.relation) == as_multiset(second.relation)


def test_overlapping_query_pays_only_for_missing(mini_payless):
    first = mini_payless.query(
        "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 5"
    )
    second = mini_payless.query(
        "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 7"
    )
    assert first.transactions > 0
    # Days 6-7 for 4 stations = 8 rows = 1 transaction at t=10.
    assert second.transactions == 1


def test_bind_join_with_empty_left_side(mini_payless):
    result = mini_payless.query(
        "SELECT Temperature FROM Station, Weather "
        "WHERE City = 'Nowhere' AND Station.StationID = Weather.StationID"
    )
    assert result.rows == []
    # The Station probe may cost a call, but Weather must not be fetched.
    assert result.transactions <= 1


def test_local_join_with_market(mini_payless_with_local, mini_weather_market):
    sql = (
        "SELECT Temperature FROM CityInfo, Station, Weather "
        "WHERE CityInfo.Zone = 2 AND CityInfo.City = Station.City "
        "AND Station.StationID = Weather.StationID AND Weather.Date = 1"
    )
    result = mini_payless_with_local.query(sql)
    expected = oracle(mini_payless_with_local, mini_weather_market, sql)
    assert as_multiset(result.relation) == as_multiset(expected)


def test_plan_shape_flip_never_rebuys(mini_payless):
    """Regression: a repeat that switches from a bind-join plan to a direct
    fetch buys only the *new* region (stations the bind join skipped), and
    a third issue is fully covered and free."""
    sql = (
        "SELECT Temperature FROM Station, Weather "
        "WHERE Weather.Date >= 1 AND Weather.Date <= 4 "
        "AND Weather.Country = 'CountryB' AND Station.City = 'Alpha' "
        "AND Station.StationID = Weather.StationID"
    )
    first = mini_payless.query(sql)
    second = mini_payless.query(sql)
    third = mini_payless.query(sql)
    assert second.transactions <= first.transactions
    assert third.transactions == 0
    assert first.rows == second.rows == third.rows == []


def test_fetched_records_reported(mini_payless):
    result = mini_payless.query(
        "SELECT * FROM Weather WHERE Country = 'CountryB'"
    )
    assert result.fetched_records == 20
    assert result.transactions == 2
