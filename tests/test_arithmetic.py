"""Arithmetic aggregate arguments: SUM(ExtendedPrice * Discount) et al."""

import pytest

from repro.errors import SchemaError, SqlSyntaxError
from repro.relational.expressions import (
    Arithmetic,
    ColumnRef,
    Literal,
    RowLayout,
)
from repro.sqlparser import ast
from repro.sqlparser.parser import parse


class TestExpressionEvaluation:
    def test_operators(self):
        layout = RowLayout([("t", "a"), ("t", "b")])
        row = (6.0, 3.0)
        cases = {"+": 9.0, "-": 3.0, "*": 18.0, "/": 2.0}
        for op, expected in cases.items():
            expr = Arithmetic(op, ColumnRef("t", "a"), ColumnRef("t", "b"))
            assert expr.bind(layout)(row) == expected

    def test_nested(self):
        layout = RowLayout([("t", "a")])
        expr = Arithmetic(
            "*",
            ColumnRef("t", "a"),
            Arithmetic("-", Literal(1), Literal(0.1)),
        )
        assert expr.bind(layout)((100.0,)) == pytest.approx(90.0)

    def test_invalid_operator(self):
        with pytest.raises(SchemaError):
            Arithmetic("%", Literal(1), Literal(2))


class TestParsing:
    def test_product_argument(self):
        statement = parse("SELECT SUM(Price * Discount) FROM Lineitem")
        arg = statement.items[0].aggregate_arg
        assert isinstance(arg, ast.ArithExpr) and arg.op == "*"

    def test_precedence(self):
        statement = parse("SELECT SUM(a + b * c) FROM T")
        arg = statement.items[0].aggregate_arg
        assert arg.op == "+"
        assert isinstance(arg.right, ast.ArithExpr)
        assert arg.right.op == "*"

    def test_parentheses(self):
        statement = parse("SELECT SUM((a + b) * c) FROM T")
        arg = statement.items[0].aggregate_arg
        assert arg.op == "*"
        assert isinstance(arg.left, ast.ArithExpr)

    def test_constants_and_unary_minus(self):
        statement = parse("SELECT SUM(Price * (1 - Discount)) FROM T")
        arg = statement.items[0].aggregate_arg
        assert arg.op == "*"

    def test_count_star_still_works(self):
        statement = parse("SELECT COUNT(*) FROM T")
        assert statement.items[0].aggregate_arg is None

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*) FROM T")
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(a +) FROM T")


class TestEndToEnd:
    def test_revenue_query(self, mini_payless):
        """TPC-H Q6 style: SUM(price * quantity-ish) over market data."""
        result = mini_payless.query(
            "SELECT SUM(Temperature * 2.0) FROM Weather "
            "WHERE Country = 'CountryB' AND Date = 1"
        )
        # Stations 5 and 6, day 1: temps 51 and 61 -> (51+61)*2.
        assert result.rows[0][0] == pytest.approx(224.0)

    def test_arithmetic_in_group_by_query(self, mini_payless):
        result = mini_payless.query(
            "SELECT StationID, AVG(Temperature - 0.5) FROM Weather "
            "WHERE Country = 'CountryA' GROUP BY StationID"
        )
        values = dict(result.rows)
        # Station 1 temps: 11..20 -> mean 15.5; minus 0.5 = 15.0.
        assert values[1] == pytest.approx(15.0)

    def test_having_with_expression(self, mini_payless):
        result = mini_payless.query(
            "SELECT StationID, SUM(Temperature * 1.0) FROM Weather "
            "GROUP BY StationID HAVING SUM(Temperature * 1.0) >= 555"
        )
        # Station s sums to s*100 + 55 over 10 days.
        assert sorted(row[0] for row in result.rows) == [5, 6]

    def test_default_alias_for_expression(self, mini_payless):
        result = mini_payless.query(
            "SELECT SUM(Temperature * 2.0) FROM Weather WHERE Date = 1"
        )
        assert result.columns == ["sum_expr0"]


class TestArithmeticPredicates:
    def test_where_arithmetic_residual(self, mini_payless):
        result = mini_payless.query(
            "SELECT * FROM Weather WHERE Temperature * 2 >= 120"
        )
        assert all(row[3] * 2 >= 120 for row in result.rows)
        assert len(result.rows) == 11  # temps >= 60

    def test_column_vs_column_arithmetic(self, mini_payless):
        result = mini_payless.query(
            "SELECT * FROM Weather WHERE Temperature - 10.0 >= StationID * 10"
        )
        assert all(row[3] - 10.0 >= row[1] * 10 for row in result.rows)

    def test_precedence_in_predicate(self, mini_payless):
        # a + b * c: 1 + Date * 0 == 1 for every row.
        result = mini_payless.query(
            "SELECT COUNT(*) FROM Weather WHERE 1 + Date * 0 = 1"
        )
        assert result.rows == [(60,)]

    def test_parameter_inside_arithmetic(self, mini_payless):
        result = mini_payless.query(
            "SELECT COUNT(*) FROM Weather WHERE Temperature * ? >= ?",
            (2.0, 120.0),
        )
        assert result.rows == [(11,)]

    def test_cross_table_arithmetic_rejected(self, mini_payless):
        from repro.errors import SqlAnalysisError

        with pytest.raises(SqlAnalysisError):
            mini_payless.query(
                "SELECT * FROM Station, Weather "
                "WHERE Station.StationID + 1 = Weather.StationID * 2"
            )

    def test_constant_comparison_rejected(self, mini_payless):
        from repro.errors import SqlAnalysisError

        with pytest.raises(SqlAnalysisError):
            mini_payless.query("SELECT * FROM Station WHERE 1 + 1 = 2")
