"""Adaptive mid-query re-optimization (``AdaptivePolicy``).

The contract under test:

* **off by default** — ``QueryOptions().adaptive is None`` and execution
  takes the byte-identical static path;
* **savings on misestimates** — on the correlated-skew join graphs the
  uniform prior badly overestimates a ``V > 200`` prefix, the policy
  trips after the first fetch, and the re-planned suffix cuts total
  transactions while returning byte-identical rows;
* **bounded and quiet** — ``max_replans`` caps re-planning, and a
  workload with exact estimates never trips (identical bills);
* **composable** — re-planning keeps billing invariant under injected
  transport faults and under the 8-worker serving scheduler.
"""

import pytest

from repro.core.objectives import AdaptivePolicy, QueryOptions
from repro.core.payless import PayLess
from repro.errors import PlanningError
from repro.market.faults import FaultPolicy
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.serve import QueryScheduler, ServeConfig
from repro.workloads.synthetic import make_join_graph

#: The bench's chain2 scenario: 1000-row tables, V power-law-skewed
#: toward the low end of [1, 400], so ``V > 200`` keeps ~4% of rows
#: where the uniform prior expects ~50%.
SKEWED = dict(domain_high=400, skew=15.0, rows=1000)
SQL2 = "SELECT * FROM T1, T2 WHERE T1.K1 = T2.K1 AND T1.V > 200"
SQL3 = (
    "SELECT * FROM T1, T2, T3 WHERE T1.K1 = T2.K1 AND T2.K2 = T3.K2 "
    "AND T1.V > 200"
)


def _payless(data, adaptive=None, transport=None):
    market = DataMarket()
    for dataset in data.datasets:
        market.publish(dataset)
    payless = PayLess.full(
        market,
        local_db=data.local_database(),
        options=QueryOptions(adaptive=adaptive, transport=transport),
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)
    return payless


def _skewed_chain(n, tpt):
    return make_join_graph(
        "chain", n, tuples_per_transaction=tpt, **SKEWED
    )


class TestPolicy:
    def test_defaults(self):
        policy = AdaptivePolicy()
        assert policy.threshold == 2.0
        assert policy.min_rows == 10.0
        assert policy.max_replans == 2
        assert QueryOptions().adaptive is None

    def test_validation(self):
        with pytest.raises(PlanningError):
            AdaptivePolicy(threshold=1.0)
        with pytest.raises(PlanningError):
            AdaptivePolicy(min_rows=-1.0)
        with pytest.raises(PlanningError):
            AdaptivePolicy(max_replans=0)
        with pytest.raises(PlanningError):
            QueryOptions(adaptive="2.0")  # type: ignore[arg-type]

    def test_parse(self):
        assert AdaptivePolicy.parse("3") == AdaptivePolicy(threshold=3.0)
        assert AdaptivePolicy.parse("2.5:20:1") == AdaptivePolicy(
            threshold=2.5, min_rows=20.0, max_replans=1
        )
        with pytest.raises(PlanningError):
            AdaptivePolicy.parse("not-a-number")

    def test_diverged_is_symmetric_with_a_noise_floor(self):
        policy = AdaptivePolicy(threshold=2.0, min_rows=10.0)
        assert policy.diverged(estimated=100.0, actual=10.0)
        assert policy.diverged(estimated=10.0, actual=100.0)
        assert not policy.diverged(estimated=100.0, actual=60.0)
        # Both sides under the floor: estimation noise, not a misestimate.
        assert not policy.diverged(estimated=9.0, actual=1.0)

    def test_fingerprints_distinguish_policies(self):
        assert AdaptivePolicy().fingerprint() != AdaptivePolicy(
            threshold=3.0
        ).fingerprint()


class TestSavings:
    def test_skewed_chain2_saves_with_identical_rows(self):
        data = _skewed_chain(2, tpt=5)
        static = _payless(data).query(SQL2)
        adaptive = _payless(data, adaptive=AdaptivePolicy()).query(SQL2)
        assert sorted(adaptive.relation.rows) == sorted(static.relation.rows)
        assert adaptive.stats.replans >= 1
        assert adaptive.stats.replan_dollars_saved_est > 0
        saved = 1 - adaptive.stats.transactions / static.stats.transactions
        assert saved >= 0.20

    def test_skewed_chain3_saves_with_identical_rows(self):
        data = _skewed_chain(3, tpt=10)
        static = _payless(data).query(SQL3)
        adaptive = _payless(data, adaptive=AdaptivePolicy()).query(SQL3)
        assert sorted(adaptive.relation.rows) == sorted(static.relation.rows)
        assert adaptive.stats.replans >= 1
        saved = 1 - adaptive.stats.transactions / static.stats.transactions
        assert saved >= 0.20

    def test_explain_analyze_annotates_replans_and_divergence(self):
        data = _skewed_chain(2, tpt=5)
        text = str(
            _payless(data, adaptive=AdaptivePolicy()).explain_analyze(SQL2)
        )
        assert "divergence ×" in text
        assert "adaptive: 1 mid-query re-plan(s)" in text

    def test_max_replans_budget_is_respected(self):
        data = _skewed_chain(3, tpt=10)
        capped = _payless(
            data, adaptive=AdaptivePolicy(max_replans=1)
        ).query(SQL3)
        free = _payless(data, adaptive=AdaptivePolicy()).query(SQL3)
        assert capped.stats.replans == 1
        assert free.stats.replans == 2
        static = _payless(data).query(SQL3)
        assert sorted(capped.relation.rows) == sorted(static.relation.rows)


class TestNoTrip:
    def test_exact_estimates_never_replan_and_bill_identically(self):
        data = make_join_graph("chain", 4)
        static = _payless(data).query(data.sql)
        adaptive = _payless(data, adaptive=AdaptivePolicy()).query(data.sql)
        assert adaptive.stats.replans == 0
        assert adaptive.stats.replan_dollars_saved_est == 0.0
        assert adaptive.stats.transactions == static.stats.transactions
        assert adaptive.stats.calls == static.stats.calls
        assert sorted(adaptive.relation.rows) == sorted(static.relation.rows)

    def test_no_adaptive_stats_without_policy(self):
        data = make_join_graph("chain", 3)
        result = _payless(data).query(data.sql)
        assert result.stats.replans == 0
        assert result.stats.replan_dollars_saved_est == 0.0


class TestChaosInvariance:
    @pytest.mark.parametrize("seed", [7, 23, 101])
    def test_faults_do_not_change_the_adaptive_bill(self, seed):
        data = _skewed_chain(2, tpt=5)
        calm = _payless(data, adaptive=AdaptivePolicy()).query(SQL2)
        faults = FaultPolicy.uniform(seed=seed, rate=0.3)
        chaotic = _payless(
            data,
            adaptive=AdaptivePolicy(),
            transport=TransportConfig(faults=faults, max_retries=5),
        ).query(SQL2)
        assert chaotic.stats.faults_injected > 0
        assert chaotic.stats.retries == chaotic.stats.faults_injected
        assert chaotic.stats.replans == calm.stats.replans
        assert chaotic.stats.transactions == calm.stats.transactions
        assert chaotic.stats.price == calm.stats.price
        assert chaotic.stats.wasted_transactions == 0
        assert sorted(chaotic.relation.rows) == sorted(calm.relation.rows)


class TestConcurrentServing:
    def test_8_workers_match_serial_rows_and_spend(self):
        queries = [
            SQL2,
            "SELECT * FROM T1, T2 WHERE T1.K1 = T2.K1 AND T1.V > 300",
        ]
        serial = _payless(_skewed_chain(2, tpt=5), adaptive=AdaptivePolicy())
        serial_rows = [sorted(serial.query(sql).relation.rows)
                       for sql in queries]
        serial_spend = serial.market.ledger.total_price

        payless = _payless(_skewed_chain(2, tpt=5), adaptive=AdaptivePolicy())
        config = ServeConfig(workers=8, coalesce=True)
        with QueryScheduler(payless, config) as scheduler:
            tickets = [
                scheduler.session(f"user{i}").submit(sql)
                for i, sql in enumerate(queries)
            ]
            results = [ticket.result(timeout=120.0) for ticket in tickets]
        assert [sorted(r.relation.rows) for r in results] == serial_rows
        # Concurrent queries cannot reuse each other's still-in-flight
        # purchases, so overlapping regions may bill slightly more than
        # the serial replay — but re-planning must stay in the same
        # ballpark, never runaway-buy.
        assert payless.market.ledger.total_price <= serial_spend * 1.25
        assert sum(r.stats.replans for r in results) >= 1
