"""Unit + property tests for the greedy weighted set cover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.set_cover import (
    CoverCandidate,
    cover_cost,
    greedy_weighted_set_cover,
)
from repro.errors import PlanningError


def candidate(indices, cost):
    return CoverCandidate(covers=frozenset(indices), cost=cost)


class TestGreedy:
    def test_trivial_empty(self):
        assert greedy_weighted_set_cover(0, []) == []

    def test_single_covering_set(self):
        chosen = greedy_weighted_set_cover(3, [candidate({0, 1, 2}, 5.0)])
        assert chosen == [0]

    def test_prefers_cheaper_per_element(self):
        candidates = [
            candidate({0, 1, 2, 3}, 4.0),   # 1.0 per element
            candidate({0, 1}, 1.0),          # 0.5 per element
            candidate({2, 3}, 1.0),          # 0.5 per element
        ]
        chosen = greedy_weighted_set_cover(4, candidates)
        assert sorted(chosen) == [1, 2]
        assert cover_cost(candidates, chosen) == 2.0

    def test_big_cheap_set_wins(self):
        candidates = [
            candidate({0, 1, 2, 3}, 2.0),
            candidate({0}, 1.0),
            candidate({1}, 1.0),
            candidate({2}, 1.0),
            candidate({3}, 1.0),
        ]
        assert greedy_weighted_set_cover(4, candidates) == [0]

    def test_zero_cost_sets_always_taken(self):
        candidates = [candidate({0, 1}, 0.0), candidate({2}, 3.0)]
        chosen = greedy_weighted_set_cover(3, candidates)
        assert sorted(chosen) == [0, 1]

    def test_infeasible_raises(self):
        with pytest.raises(PlanningError):
            greedy_weighted_set_cover(3, [candidate({0, 1}, 1.0)])

    def test_candidate_must_cover_something(self):
        with pytest.raises(PlanningError):
            candidate(set(), 1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(PlanningError):
            candidate({0}, -1.0)

    def test_deterministic_tie_break(self):
        candidates = [candidate({0}, 1.0), candidate({0}, 1.0)]
        assert greedy_weighted_set_cover(1, candidates) == [0]


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(1, 10),
    data=st.data(),
)
def test_greedy_always_covers_when_feasible(n, data):
    """If singletons exist for every element, greedy returns a full cover."""
    singles = [candidate({i}, float(data.draw(st.integers(1, 5)))) for i in range(n)]
    extras = data.draw(
        st.lists(
            st.tuples(
                st.sets(st.integers(0, n - 1), min_size=1),
                st.integers(0, 10),
            ),
            max_size=6,
        )
    )
    candidates = singles + [candidate(s, float(c)) for s, c in extras]
    chosen = greedy_weighted_set_cover(n, candidates)
    covered = set()
    for index in chosen:
        covered |= candidates[index].covers
    assert covered == set(range(n))
    # Never more expensive than taking every singleton.
    assert cover_cost(candidates, chosen) <= sum(c.cost for c in singles)
