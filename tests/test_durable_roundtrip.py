"""Property-based round trips: arbitrary workloads survive snapshot+WAL.

For any interleaving of purchases, repeat queries, and clock advances,
recovering from the durable state dir — whether the previous session
closed cleanly (snapshot path) or was killed (WAL replay path) — must
reconstruct the *entire* buyer state exactly: covered boxes, cached rows,
the ISOMER histogram's refinement list, the logical clock, and every
billing bucket.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PayLess, QueryOptions
from repro.core.persistence import load_state, save_state
from repro.durable.records import cover_to_json
from repro.stats.isomer import FeedbackHistogram

from tests.test_durability_chaos import make_market

COUNTRIES = ("CountryA", "CountryB")


def weather_sql(country: str, lo: int, hi: int) -> str:
    return (
        "SELECT StationID, Date, Temperature FROM Weather "
        f"WHERE Country = '{country}' AND Date >= {lo} AND Date <= {hi}"
    )


def station_sql(country: str) -> str:
    return f"SELECT StationID, City FROM Station WHERE Country = '{country}'"


#: One operation: a Weather range query, a Station query, or a clock jump.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("weather"),
            st.sampled_from(COUNTRIES),
            st.integers(min_value=1, max_value=10),
            st.integers(min_value=0, max_value=4),
        ),
        st.tuples(st.just("station"), st.sampled_from(COUNTRIES)),
        st.tuples(st.just("clock"), st.integers(min_value=1, max_value=5)),
    ),
    min_size=1,
    max_size=5,
)


def apply_ops(payless: PayLess, ops) -> None:
    for op in ops:
        if op[0] == "weather":
            __, country, lo, span = op
            payless.query(weather_sql(country, lo, min(lo + span, 10)))
        elif op[0] == "station":
            payless.query(station_sql(op[1]))
        else:
            payless.store.advance_clock(payless.store.clock + op[1])


def capture(payless: PayLess) -> dict:
    """Everything the backend promises to persist, exactly."""
    state: dict = {"clock": payless.store.clock}
    for key, table_store in payless.store._tables.items():  # noqa: SLF001
        rows = table_store.all_rows()
        with table_store.lock:
            covers = [cover_to_json(c) for c in table_store._covers.values()]  # noqa: SLF001
        histogram = payless.catalog.statistics(key).histogram
        state[key] = {
            "covers": sorted(covers, key=repr),
            "rows": sorted(rows, key=repr),
            "histogram": (
                histogram.state_snapshot()
                if isinstance(histogram, FeedbackHistogram)
                else None
            ),
        }
    state["totals"] = (
        payless.total_transactions,
        payless.total_price,
        payless.total_calls,
        payless.queries_executed,
        payless.total_wasted_transactions,
        payless.total_wasted_price,
        payless.total_coalesced_fetches,
        payless.total_coalesced_transactions,
        payless.total_coalesced_price,
    )
    state["bill"] = payless.durability.bill.to_json()
    return state


def durable(market, state_dir) -> PayLess:
    payless = PayLess.full(market, options=QueryOptions(durability=state_dir))
    payless.register_dataset("WHW")
    payless.recover()
    return payless


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy, clean_close=st.booleans())
    def test_any_workload_survives_restart(self, ops, clean_close):
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "state"
            market = make_market()

            first = durable(market, state_dir)
            apply_ops(first, ops)
            before = capture(first)
            spent_before = market.ledger.spent.transactions
            if clean_close:
                first.close()  # snapshot path
            else:
                first.durability.abandon()  # kill: WAL replay path

            second = durable(market, state_dir)
            assert capture(second) == before
            # Recovery itself must not touch the market.
            assert market.ledger.spent.transactions == spent_before

    @settings(max_examples=10, deadline=None)
    @given(ops=ops_strategy)
    def test_two_generations_compact_identically(self, ops):
        """snapshot → more work → kill → replay-over-snapshot is exact."""
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "state"
            market = make_market()

            first = durable(market, state_dir)
            apply_ops(first, ops)
            first.durability.snapshot()
            apply_ops(first, ops)  # repeats: cache hits + clock churn
            before = capture(first)
            first.durability.abandon()

            second = PayLess.full(
                market, options=QueryOptions(durability=state_dir)
            )
            second.register_dataset("WHW")
            report = second.recover()
            assert report.snapshot_loaded
            assert capture(second) == before


class TestLegacyShimRegression:
    """The v1 JSON shim silently dropped the wasted/coalesced buckets; the
    v2 format and the WAL backend must both carry them."""

    def test_v2_json_keeps_all_buckets(self, mini_weather_market, tmp_path):
        payless = PayLess.full(mini_weather_market)
        payless.register_dataset("WHW")
        payless.query(weather_sql("CountryA", 2, 5))
        payless.total_wasted_transactions = 3
        payless.total_wasted_price = 3.5
        payless.total_coalesced_fetches = 2
        payless.total_coalesced_transactions = 4
        payless.total_coalesced_price = 4.25
        save_state(payless, tmp_path / "state.json")

        fresh = PayLess.full(mini_weather_market)
        fresh.register_dataset("WHW")
        load_state(fresh, tmp_path / "state.json")
        assert fresh.total_wasted_transactions == 3
        assert fresh.total_wasted_price == 3.5
        assert fresh.total_coalesced_fetches == 2
        assert fresh.total_coalesced_transactions == 4
        assert fresh.total_coalesced_price == 4.25

    def test_wal_backend_keeps_all_buckets(self, tmp_path):
        market = make_market()
        payless = durable(market, tmp_path / "state")
        payless.query(weather_sql("CountryA", 2, 5))
        payless.total_wasted_transactions = 3
        payless.total_wasted_price = 3.5
        payless.total_coalesced_fetches = 2
        payless.total_coalesced_transactions = 4
        payless.total_coalesced_price = 4.25
        payless.close()

        second = durable(market, tmp_path / "state")
        assert second.total_wasted_transactions == 3
        assert second.total_coalesced_price == 4.25
