"""The Section 4.2 two-dimensional worked examples (Figures 7-9).

These tests rebuild the paper's 2-d scenarios — a numeric×numeric query
with ten stored views (Figure 7), the categorical variant (Figure 8), and
the bind-join variant (Figure 9) — and check the properties the figures
illustrate: tightness pruning (B2 ⊋ B1), price pruning (B3), categorical
validity (single value or whole domain), and per-binding-value remainder
boxes merging across known values.
"""

import pytest

from repro.core.bounding_boxes import generate_candidates
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box, remainder_decomposition
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore
from repro.stats.catalog import Catalog
from repro.core.rewriter import SemanticRewriter


def numeric_space_2d():
    """R(A1[0,90], A2[0,60]) — the Figure 7 canvas."""
    schema = Schema([Attribute("A1", T.INT), Attribute("A2", T.INT)])
    pattern = BindingPattern(
        table="R", modes={"A1": AccessMode.FREE, "A2": AccessMode.FREE}
    )
    statistics = BasicStatistics(
        5000,
        {"a1": Domain.numeric(0, 89), "a2": Domain.numeric(0, 59)},
    )
    return BoxSpace.from_table("R", schema, pattern, statistics)


class TestFigure7:
    """Query A1[30,80] x A2[0,50] against stored 2-d views."""

    # A simplified version of Figure 7a's view layout: stored regions
    # covering parts of the query window.
    VIEWS = [
        Box(((30, 50), (0, 30))),   # left block
        Box(((50, 70), (0, 30))),   # middle-bottom block
        Box(((70, 81), (40, 51))),  # top-right corner
    ]
    QUERY = Box(((30, 81), (0, 51)))

    def test_remainder_is_disjoint_and_exact(self):
        remainder = remainder_decomposition(self.QUERY, self.VIEWS)
        total = sum(box.volume() for box in remainder)
        covered = sum(
            (self.QUERY.intersect(view) or Box(((0, 1),))).volume()
            for view in self.VIEWS
            if self.QUERY.intersect(view) is not None
        )
        assert total == self.QUERY.volume() - covered
        for i, a in enumerate(remainder):
            for b in remainder[i + 1:]:
                assert a.intersect(b) is None

    def test_rule1_drops_loose_boxes(self):
        """Any kept candidate equals the tight box of what it covers."""
        space = numeric_space_2d()
        remainder = remainder_decomposition(self.QUERY, self.VIEWS)
        result = generate_candidates(
            space, remainder, lambda box: float(box.volume()), 100
        )
        for candidate in result.merged_candidates:
            covered = [remainder[i] for i in candidate.covers]
            for axis in range(2):
                lows = min(b.extents[axis][0] for b in covered)
                highs = max(b.extents[axis][1] for b in covered)
                assert candidate.box.extents[axis] == (lows, highs)

    def test_rule2_drops_overpriced_boxes(self):
        """A candidate never costs as much as its parts bought separately."""
        space = numeric_space_2d()
        remainder = remainder_decomposition(self.QUERY, self.VIEWS)
        result = generate_candidates(
            space, remainder, lambda box: float(box.volume()), 100
        )
        prices = {
            frozenset([i]): c.transactions
            for i, c in enumerate(result.elementary_candidates)
        }
        for candidate in result.merged_candidates:
            parts = sum(prices[frozenset([i])] for i in candidate.covers)
            assert candidate.transactions < parts


class TestFigure8Categorical:
    """A2 becomes categorical {b1..b6}: candidates span 1 value or all."""

    def _space(self, bound=False):
        schema = Schema([Attribute("A1", T.INT), Attribute("A2", T.STRING)])
        pattern = BindingPattern(
            table="R",
            modes={
                "A1": AccessMode.FREE,
                "A2": AccessMode.BOUND if bound else AccessMode.FREE,
            },
        )
        statistics = BasicStatistics(
            600,
            {
                "a1": Domain.numeric(0, 89),
                "a2": Domain.categorical(
                    ["b1", "b2", "b3", "b4", "b5", "b6"]
                ),
            },
        )
        return BoxSpace.from_table("R", schema, pattern, statistics)

    def test_partial_categorical_span_never_generated(self):
        space = self._space()
        # Missing data at categorical positions 0, 1 and 4 over [50,80).
        remainder = [
            Box(((50, 80), (0, 1))),
            Box(((50, 80), (1, 2))),
            Box(((50, 80), (4, 5))),
        ]
        result = generate_candidates(
            space, remainder, lambda box: float(box.volume()), 1000
        )
        for candidate in result.merged_candidates:
            low, high = candidate.box.extents[1]
            assert high - low == 1 or (low, high) == (0, 6)

    def test_b1_analogue_is_inexpressible(self):
        """Figure 8's invalid B1 (two categorical values, not all)."""
        space = self._space()
        assert not space.expressible(Box(((50, 80), (0, 2))))

    def test_valid_b2_b3_analogues(self):
        space = self._space()
        assert space.expressible(Box(((50, 70), (4, 5))))  # B2: one value
        assert space.expressible(Box(((30, 40), (0, 6))))  # B3: whole domain


class TestFigure9BindJoin:
    """Remainder generation for a bind join: per-value boxes that merge."""

    def _setup(self):
        schema = Schema([Attribute("A2", T.INT), Attribute("A3", T.INT)])
        pattern = BindingPattern(
            table="S", modes={"A2": AccessMode.BOUND, "A3": AccessMode.FREE}
        )
        statistics = BasicStatistics(
            200, {"a2": Domain.numeric(0, 15), "a3": Domain.numeric(0, 30)}
        )
        space = BoxSpace.from_table("S", schema, pattern, statistics)
        store = SemanticStore()
        catalog = Catalog()
        catalog.register("S", schema, space, statistics)
        store.register_table(space, schema)
        return space, store, catalog

    def test_stored_bindings_reused_new_bindings_fetched(self):
        space, store, catalog = self._setup()
        # Stored query V bound values {2, 5, 9, 10} with A3 in [10,16).
        for value in (2, 5, 9, 10):
            store.record(
                "S",
                Box(((value, value + 1), (10, 16))),
                [(value, a3) for a3 in range(10, 16)],
            )
        constraints = [
            AttributeConstraint("A2", values=frozenset({2, 5, 9, 10, 12, 13})),
            AttributeConstraint("A3", low=8, high=19),
        ]
        seeded = SemanticRewriter(store, catalog).rewrite("S", constraints, 10)

        cold_store = SemanticStore()
        cold_store.register_table(space, catalog.statistics("S").schema)
        cold = SemanticRewriter(cold_store, catalog).rewrite(
            "S", constraints, 10
        )
        # Stored bindings make the rewritten plan no more expensive than a
        # cold fetch — and every remainder box still binds A2 (it is a
        # bound attribute), possibly as a *range of known values* or even
        # the whole domain (the Figure 9 B2/B3 choices).
        assert seeded.estimated_transactions <= cold.estimated_transactions
        for query in seeded.remainder:
            assert any(
                c.attribute.lower() == "a2" for c in query.constraints
            )

    def test_new_bindings_fully_fetched(self):
        space, store, catalog = self._setup()
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "S",
            [
                AttributeConstraint("A2", values=frozenset({12, 13})),
                AttributeConstraint("A3", low=8, high=19),
            ],
            100,
        )
        remainder_volume = sum(q.box.volume() for q in result.remainder)
        request_volume = sum(box.volume() for box in result.request_boxes)
        assert remainder_volume >= request_volume  # nothing stored yet
