"""Rewrite memoization: epoch-keyed caching and the staleness guard.

The rewriter memoizes ``rewrite()`` on ``(table, constraints, page size,
switches, clock, store epoch)``.  Repeat queries between store writes must
hit the cache (an acceptance criterion of the perf work); any store
mutation bumps the epoch and must invalidate; and the executor must refuse
to spend money on a rewrite computed at a stale epoch.
"""

import pytest

from repro.errors import ExecutionError
from repro.relational.query import AttributeConstraint
from repro.testing import registered_payless, tiny_weather_market


def fresh_payless(**kwargs):
    return registered_payless(tiny_weather_market(), **kwargs)


class TestMemoization:
    def test_repeat_query_hits_cache_and_is_free(self):
        """Acceptance criterion: a repeated query is a memo hit, not a rebuy."""
        payless = fresh_payless()
        sql = (
            "SELECT Temperature FROM Weather "
            "WHERE Country = 'CountryA' AND StationID = 2"
        )
        first = payless.query(sql)
        assert first.transactions > 0
        hits_before = payless.rewriter.cache_hits
        second = payless.query(sql)
        assert payless.rewriter.cache_hits > hits_before
        assert second.transactions == 0
        assert sorted(second.rows) == sorted(first.rows)
        assert 0.0 < payless.rewriter.cache_hit_rate <= 1.0

    def test_identical_rewrites_share_one_result(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        constraints = [AttributeConstraint("Country", value="CountryA")]
        first = rewriter.rewrite("Weather", constraints, 10)
        misses = rewriter.cache_misses
        second = rewriter.rewrite("Weather", constraints, 10)
        assert second is first
        assert rewriter.cache_misses == misses
        assert first.store_epoch == payless.store.epoch_of("Weather")

    def test_record_invalidates(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        constraints = [AttributeConstraint("Country", value="CountryA")]
        first = rewriter.rewrite("Weather", constraints, 10)
        assert not first.fully_covered
        space = payless.catalog.statistics("Weather").space
        box = space.boxes_for_constraints(constraints)[0]
        payless.store.record("Weather", box, [])
        again = rewriter.rewrite("Weather", constraints, 10)
        assert again is not first
        assert again.fully_covered
        assert again.store_epoch == payless.store.epoch_of("Weather")

    def test_clock_advance_invalidates(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        constraints = [AttributeConstraint("Country", value="CountryB")]
        first = rewriter.rewrite("Weather", constraints, 10)
        payless.store.advance_clock(1)
        second = rewriter.rewrite("Weather", constraints, 10)
        assert second is not first

    def test_different_page_size_is_a_different_entry(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        constraints = [AttributeConstraint("Country", value="CountryA")]
        small = rewriter.rewrite("Weather", constraints, 5)
        large = rewriter.rewrite("Weather", constraints, 500)
        assert small is not large

    def test_unhashable_constraint_computes_uncached(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        # A list-valued point is off-domain (the space only indexes ints),
        # and — being unhashable — must bypass the memo without crashing.
        constraints = [AttributeConstraint("StationID", value=[1, 2])]
        first = rewriter.rewrite("Weather", constraints, 10)
        second = rewriter.rewrite("Weather", constraints, 10)
        assert first is not second
        assert first.fully_covered  # empty request region: nothing to buy

    def test_memo_cap_bounds_the_table(self):
        payless = fresh_payless()
        rewriter = payless.rewriter
        rewriter.MEMO_CAP = 3
        for station in range(1, 5):
            rewriter.rewrite(
                "Weather",
                [AttributeConstraint("StationID", value=station)],
                10,
            )
        assert len(rewriter._memo) <= 3  # noqa: SLF001


class TestStalenessGuard:
    def test_executor_rejects_stale_rewrite(self):
        """Regression: execution must never spend on a planning-epoch rewrite."""
        payless = fresh_payless()
        payless.query("SELECT * FROM Station")
        page = payless.context.tuples_per_transaction("Station")
        stale = payless.rewriter.rewrite("Station", [], page)
        space = payless.catalog.statistics("Station").space
        payless.store.record("Station", space.full_box, [])  # bump the epoch

        class StaleRewriter:
            enabled = True
            prune = True

            def rewrite(self, table, constraints, tuples_per_transaction):
                return stale

        payless.context.rewriter = StaleRewriter()
        with pytest.raises(ExecutionError, match="stale rewrite"):
            payless.query("SELECT * FROM Station")

    def test_normal_repeat_execution_is_not_stale(self):
        payless = fresh_payless()
        sql = "SELECT * FROM Station WHERE Country = 'CountryB'"
        payless.query(sql)
        result = payless.query(sql)  # planning + execution at one epoch
        assert result.transactions == 0
