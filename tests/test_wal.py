"""Unit tests for the WAL framing layer: encode/decode, torn tails,
fsync policies, and the simulated-crash hook."""

from __future__ import annotations

import struct

import pytest

from repro.durable.wal import (
    HEADER,
    SimulatedCrash,
    WriteAheadLog,
    encode_record,
    iter_records,
)


class TestFraming:
    def test_round_trip(self):
        payloads = [
            {"t": "buy", "rows": [[1, "a", 2.5]], "n": 1},
            {"t": "clk", "c": 3.0},
            {"t": "in", "k": "i00aa.0", "u": "/x?y=1"},
        ]
        data = b"".join(encode_record(p) for p in payloads)
        records, valid = iter_records(data)
        assert records == payloads
        assert valid == len(data)

    def test_empty(self):
        assert iter_records(b"") == ([], 0)

    def test_torn_header_stops_at_prefix(self):
        good = encode_record({"t": "clk", "c": 1.0})
        records, valid = iter_records(good + b"\x05\x00")
        assert records == [{"t": "clk", "c": 1.0}]
        assert valid == len(good)

    def test_torn_body_stops_at_prefix(self):
        good = encode_record({"t": "clk", "c": 1.0})
        torn = encode_record({"t": "buy", "rows": [[1, 2, 3]]})[:-4]
        records, valid = iter_records(good + torn)
        assert records == [{"t": "clk", "c": 1.0}]
        assert valid == len(good)

    def test_corrupt_crc_stops_at_prefix(self):
        good = encode_record({"t": "clk", "c": 1.0})
        bad = bytearray(encode_record({"t": "clk", "c": 2.0}))
        bad[-1] ^= 0xFF  # flip a payload byte; the CRC no longer matches
        records, valid = iter_records(good + bytes(bad))
        assert records == [{"t": "clk", "c": 1.0}]
        assert valid == len(good)

    def test_crc_matching_garbage_json_stops(self):
        # A frame whose CRC is self-consistent but whose body is not JSON
        # (e.g. the overwritten middle of a recycled sector) is torn too.
        body = b"\x00\x01\x02 not json"
        import zlib

        frame = HEADER.pack(len(body), zlib.crc32(body)) + body
        records, valid = iter_records(frame)
        assert records == []
        assert valid == 0

    def test_every_truncation_point_is_safe(self):
        payloads = [{"t": "clk", "c": float(i)} for i in range(4)]
        data = b"".join(encode_record(p) for p in payloads)
        boundaries = []
        offset = 0
        for p in payloads:
            offset += len(encode_record(p))
            boundaries.append(offset)
        for cut in range(len(data) + 1):
            records, valid = iter_records(data[:cut])
            # The decoded prefix is exactly the records whose frames fit.
            whole = sum(1 for b in boundaries if b <= cut)
            assert len(records) == whole
            assert records == payloads[:whole]
            assert valid == (boundaries[whole - 1] if whole else 0)


class TestWriteAheadLog:
    def test_append_is_os_visible_without_close(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path, fsync="os")
        log.append({"t": "clk", "c": 1.0})
        # Unbuffered writes: visible to other readers before close/fsync.
        records, __ = iter_records(path.read_bytes())
        assert records == [{"t": "clk", "c": 1.0}]
        log.close()

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_commit_clears_dirty(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.log", fsync="commit")
        log.append({"t": "clk", "c": 1.0})
        assert log._dirty
        log.commit()
        assert not log._dirty
        log.close()

    def test_truncate_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        good = encode_record({"t": "clk", "c": 1.0})
        path.write_bytes(good + b"\x99\x00\x00\x00garbage")
        records, valid = WriteAheadLog.truncate_torn_tail(path)
        assert records == [{"t": "clk", "c": 1.0}]
        assert valid == len(good)
        assert path.stat().st_size == len(good)
        # Appending after truncation yields a clean two-record segment.
        log = WriteAheadLog(path, fsync="os")
        log.append({"t": "clk", "c": 2.0})
        log.close()
        records, valid = iter_records(path.read_bytes())
        assert [r["c"] for r in records] == [1.0, 2.0]


class TestCrashHook:
    def test_hook_cut_points(self, tmp_path):
        payload = {"t": "buy", "rows": [[1, 2]], "n": 1}
        frame = encode_record(payload)
        for cut in (0, 1, HEADER.size, len(frame) - 1, len(frame)):
            path = tmp_path / f"wal-{cut}.log"
            log = WriteAheadLog(path, fsync="os")
            log.crash_hook = lambda p, f, cut=cut: cut
            with pytest.raises(SimulatedCrash):
                log.append(payload)
            log.close(final_sync=False)
            assert path.stat().st_size == cut
            records, valid = iter_records(path.read_bytes())
            if cut == len(frame):
                assert records == [payload]
            else:
                assert records == []
                assert valid == 0

    def test_simulated_crash_escapes_except_exception(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.log", fsync="os")
        log.crash_hook = lambda p, f: 0
        with pytest.raises(SimulatedCrash):
            try:
                log.append({"t": "clk", "c": 1.0})
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be an Exception")
        log.close(final_sync=False)

    def test_hook_none_lets_append_proceed(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path, fsync="os")
        log.crash_hook = lambda p, f: None
        log.append({"t": "clk", "c": 1.0})
        log.close()
        records, __ = iter_records(path.read_bytes())
        assert records == [{"t": "clk", "c": 1.0}]
