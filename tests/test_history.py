"""Query-history log on the facade."""

import pytest

from repro.testing import registered_payless, tiny_weather_market


@pytest.fixture
def payless():
    return registered_payless(tiny_weather_market())


class TestHistory:
    def test_entries_appended_in_order(self, payless):
        payless.query("SELECT * FROM Station")
        payless.query("SELECT * FROM Weather WHERE Date <= 3")
        assert len(payless.history) == 2
        assert [entry.sequence for entry in payless.history] == [1, 2]

    def test_entry_contents(self, payless):
        result = payless.query(
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.StationID = Weather.StationID"
        )
        entry = payless.history[-1]
        assert entry.sql_tables == ("Station", "Weather")
        assert entry.transactions == result.transactions
        assert entry.calls == result.calls
        assert entry.used_bind_join is True

    def test_direct_plan_flagged(self, payless):
        payless.query("SELECT * FROM Weather")
        assert payless.history[-1].used_bind_join is False

    def test_repr_readable(self, payless):
        payless.query("SELECT * FROM Station")
        text = repr(payless.history[0])
        assert "#1" in text and "Station" in text and "trans." in text
