"""The concurrent serving front-end: scheduler, admission, coalescing.

Deterministic by construction: tests that need two sessions' fetches to
*overlap* gate the market (or the fault draw) on the singleflight
registry actually holding a waiter, instead of racing real sleeps.
"""

import threading
import time
import warnings

import pytest

from repro.errors import AdmissionError, MarketError, MarketUnavailableError
from repro.market.faults import FaultKind, InjectedFault
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryScheduler, ServeConfig, SingleflightGroup


SQL_A = "SELECT * FROM Weather WHERE Country = 'CountryA'"
SQL_B = "SELECT * FROM Weather WHERE Country = 'CountryB'"


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


class _StubResult:
    """Shaped like a QueryResult as far as the scheduler reads it."""

    class _Stats:
        transactions = 1
        price = 1.0
        coalesced_fetches = 0
        coalesced_savings_price = 0.0

    stats = _Stats()


class _StubPayless:
    """A controllable installation: queries block until released."""

    class _Context:
        coalescer = None

    def __init__(self):
        self.context = self._Context()
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self.calls = []
        self.running = 0
        self.max_running = 0
        self.gate = threading.Event()
        self.gate.set()  # open by default: queries return immediately

    def query(self, sql, params=()):
        with self._lock:
            self.calls.append(sql)
            self.running += 1
            self.max_running = max(self.max_running, self.running)
        try:
            if not self.gate.wait(timeout=10.0):
                raise TimeoutError("stub gate never opened")
            if sql == "BOOM":
                raise MarketError("injected query failure")
            return _StubResult()
        finally:
            with self._lock:
                self.running -= 1

    def bill(self):
        return "stub bill"


class TestConfig:
    def test_defaults_valid(self):
        config = ServeConfig()
        assert config.workers >= 1 and config.coalesce

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_queue": 0},
            {"session_max_inflight": 0},
            {"admission_timeout_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(MarketError):
            ServeConfig(**kwargs)


class TestScheduling:
    def test_fifo_within_session(self):
        stub = _StubPayless()
        config = ServeConfig(workers=1, session_max_inflight=8, coalesce=False)
        with QueryScheduler(stub, config) as scheduler:
            session = scheduler.session("alice")
            for i in range(6):
                session.submit(f"q{i}")
        assert stub.calls == [f"q{i}" for i in range(6)]

    def test_session_inflight_cap(self):
        stub = _StubPayless()
        stub.gate.clear()  # queries block on a worker until released
        config = ServeConfig(workers=4, session_max_inflight=2, coalesce=False)
        scheduler = QueryScheduler(stub, config)
        try:
            session = scheduler.session("alice")
            tickets = [session.submit(f"q{i}") for i in range(4)]
            # Only 2 of alice's 4 queries may occupy workers at once.
            assert _wait_for(lambda: stub.running == 2)
            time.sleep(0.05)
            assert stub.max_running == 2
            stub.gate.set()
            for ticket in tickets:
                ticket.result(timeout=10.0)
            assert stub.max_running == 2
        finally:
            stub.gate.set()
            scheduler.close()

    def test_one_chatty_session_cannot_starve_another(self):
        stub = _StubPayless()
        stub.gate.clear()
        config = ServeConfig(workers=2, session_max_inflight=1, coalesce=False)
        scheduler = QueryScheduler(stub, config)
        try:
            alice = scheduler.session("alice")
            for i in range(5):
                alice.submit(f"alice-{i}")
            bob_ticket = scheduler.session("bob").submit("bob-0")
            # Alice holds one worker (her cap); bob's query still runs on
            # the other worker despite alice's deeper backlog.
            assert _wait_for(lambda: "bob-0" in stub.calls)
            assert stub.calls.count("alice-0") == 1
            assert "alice-1" not in stub.calls
            stub.gate.set()
            bob_ticket.result(timeout=10.0)
            scheduler.drain(timeout=10.0)
        finally:
            stub.gate.set()
            scheduler.close()

    def test_backpressure_times_out_with_admission_error(self):
        stub = _StubPayless()
        stub.gate.clear()
        config = ServeConfig(
            workers=1,
            max_queue=1,
            admission_timeout_s=0.05,
            coalesce=False,
        )
        scheduler = QueryScheduler(stub, config)
        try:
            session = scheduler.session("alice")
            first = session.submit("q0")  # fills the queue
            with pytest.raises(AdmissionError):
                session.submit("q1")
            stub.gate.set()
            first.result(timeout=10.0)
            # Capacity freed: admission works again.
            session.submit("q2").result(timeout=10.0)
        finally:
            stub.gate.set()
            scheduler.close()

    def test_submit_after_close_refused(self):
        stub = _StubPayless()
        scheduler = QueryScheduler(stub, ServeConfig(workers=1))
        scheduler.close()
        with pytest.raises(AdmissionError):
            scheduler.session("alice").submit("q0")

    def test_query_error_relayed_to_ticket_only(self):
        stub = _StubPayless()
        with QueryScheduler(stub, ServeConfig(workers=2)) as scheduler:
            session = scheduler.session("alice")
            bad = session.submit("BOOM")
            good = session.submit("q0")
            with pytest.raises(MarketError):
                bad.result(timeout=10.0)
            assert good.result(timeout=10.0) is not None
            assert session.failures == 1
            assert session.queries == 1

    def test_drain_timeout(self):
        stub = _StubPayless()
        stub.gate.clear()
        scheduler = QueryScheduler(stub, ServeConfig(workers=1))
        try:
            scheduler.session("alice").submit("q0")
            with pytest.raises(AdmissionError):
                scheduler.drain(timeout=0.05)
            stub.gate.set()
            scheduler.drain(timeout=10.0)
        finally:
            stub.gate.set()
            scheduler.close()

    def test_coalescer_wired_and_unwired(self):
        stub = _StubPayless()
        scheduler = QueryScheduler(stub, ServeConfig(coalesce=True))
        assert isinstance(scheduler.coalescer, SingleflightGroup)
        assert stub.context.coalescer is scheduler.coalescer
        scheduler.close()
        assert stub.context.coalescer is None
        off = QueryScheduler(stub, ServeConfig(coalesce=False))
        assert off.coalescer is None
        off.close()


class TestServing:
    """End-to-end over a real installation (the mini weather market)."""

    def test_attribution_sums_to_installation_totals(self, mini_payless):
        with QueryScheduler(
            mini_payless, ServeConfig(workers=4)
        ) as scheduler:
            tickets = [
                scheduler.session("alice").submit(SQL_A),
                scheduler.session("bob").submit(SQL_B),
                scheduler.session("alice").submit(
                    "SELECT * FROM Station WHERE Country = 'CountryA'"
                ),
            ]
            for ticket in tickets:
                ticket.result(timeout=30.0)
        sessions = scheduler.sessions
        assert sum(s.queries for s in sessions) == 3
        assert (
            sum(s.transactions for s in sessions)
            == mini_payless.total_transactions
        )
        assert sum(s.price for s in sessions) == pytest.approx(
            mini_payless.total_price
        )
        report = scheduler.spend_report()
        assert "alice" in report and "bob" in report

    def test_overlapping_identical_fetches_bill_once(self, mini_payless):
        """The tentpole invariant, deterministically: the market gates the
        leader's call until a second session has joined the flight, so the
        two fetches provably overlap — and exactly one is billed."""
        real_get = mini_payless.market.get
        with QueryScheduler(
            mini_payless, ServeConfig(workers=2)
        ) as scheduler:
            group = scheduler.coalescer

            def gated_get(request, **kwargs):
                def joined():
                    with group._lock:
                        flight = group._flights.get(request.url())
                        return flight is not None and flight.waiters >= 1

                _wait_for(joined)
                return real_get(request, **kwargs)

            mini_payless.market.get = gated_get
            try:
                first = scheduler.session("alice").submit(SQL_A)
                second = scheduler.session("bob").submit(SQL_A)
                results = [
                    first.result(timeout=30.0),
                    second.result(timeout=30.0),
                ]
            finally:
                mini_payless.market.get = real_get
        paid = [r for r in results if r.stats.transactions > 0]
        free = [r for r in results if r.stats.transactions == 0]
        assert len(paid) == 1 and len(free) == 1
        # The rider shares the leader's rows and records the saved bill.
        assert sorted(free[0].rows) == sorted(paid[0].rows)
        assert free[0].stats.coalesced_fetches >= 1
        assert free[0].stats.coalesced_savings_transactions == (
            paid[0].stats.transactions
        )
        ledger = mini_payless.market.ledger
        assert ledger.total_transactions == paid[0].stats.transactions
        savings = ledger.coalesced_savings
        assert savings.calls >= 1
        assert savings.transactions == paid[0].stats.transactions
        assert (
            mini_payless.metrics.counter("fetch_coalesced").value >= 1
        )
        assert group.fetches_coalesced >= 1
        report = scheduler.spend_report()
        assert "coalesced" in report and "saved" in report

    def test_failed_leader_never_bills_and_never_serves_waiters(
        self, mini_payless
    ):
        """Forced leader failure under coalescing: the first call fails
        only after a waiter joined its flight.  Both queries must error,
        nothing may be billed, and the waiter must have retried as a new
        leader (flights_aborted counts the failed one) rather than being
        served rows from the unbilled fetch."""
        transport = mini_payless.context.transport

        class _FailFirstAfterJoin:
            """FaultPolicy stand-in: first attempt blocks until the flight
            has a waiter, then fails; every later attempt fails fast."""

            timeout_ms = 0.0

            def __init__(self, group):
                self.group = group
                self.first = True

            def outcome(self, call_key, attempt):
                url = call_key.split("#")[0]
                if self.first:
                    self.first = False

                    def joined():
                        with self.group._lock:
                            flight = self.group._flights.get(url)
                            return (
                                flight is not None and flight.waiters >= 1
                            )

                    assert _wait_for(joined), "no waiter ever joined"
                return FaultKind.SERVER_ERROR

            def duplicated(self, call_key, attempt):
                return False

            def jitter(self, call_key, attempt):
                return 0.0

            def fault_for(self, kind, call_key):
                return InjectedFault(kind, f"forced failure on {call_key}")

        with QueryScheduler(
            mini_payless, ServeConfig(workers=2)
        ) as scheduler:
            transport.faults = _FailFirstAfterJoin(scheduler.coalescer)
            try:
                first = scheduler.session("alice").submit(SQL_A)
                second = scheduler.session("bob").submit(SQL_A)
                errors = 0
                for ticket in (first, second):
                    with pytest.raises(MarketUnavailableError):
                        ticket.result(timeout=30.0)
                    errors += 1
            finally:
                transport.faults = None
        assert errors == 2
        # Server errors never bill: no one was silently charged.
        ledger = mini_payless.market.ledger
        assert ledger.total_calls == 0
        assert ledger.total_transactions == 0
        # The failed flight was aborted; its waiter re-led (and failed on
        # its own budget) instead of consuming the failed result.
        assert scheduler.coalescer.flights_aborted >= 2
        assert scheduler.coalescer.in_flight == 0
        sessions = scheduler.sessions
        assert sum(s.failures for s in sessions) == 2
        assert sum(s.transactions for s in sessions) == 0

    def test_organization_serve_front_end(self, mini_payless):
        from repro.core.organization import Organization

        organization = Organization(mini_payless, name="acme")
        with organization.serve(ServeConfig(workers=2)) as scheduler:
            result = scheduler.session("alice").query(SQL_A)
        assert result.stats.transactions > 0
        assert mini_payless.context.coalescer is None


class TestDeprecationForwarders:
    def test_warning_reported_at_caller_line(self, mini_payless):
        """``stacklevel=2`` audit: the DeprecationWarning must point at the
        line *reading* the legacy attribute, not at payless.py."""
        result = mini_payless.query("SELECT * FROM Station")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            __ = result.transactions  # the caller line the warning names
        assert len(caught) == 1
        warning = caught[0]
        assert warning.category is DeprecationWarning
        assert warning.filename == __file__
        read_line = None
        with open(__file__) as handle:
            for number, text in enumerate(handle, start=1):
                if "the caller line the warning names" in text:
                    read_line = number
                    break
        assert warning.lineno == read_line
