"""Harness tests: the evaluation's orderings hold at miniature scale."""

import pytest

from repro.bench.figures import BenchProfile, make_instances, make_workload
from repro.bench.harness import build_system, download_all_bound, run_session
from repro.bench.reporting import checkpoints, series_table, summary_table
from repro.errors import ReproError
from repro.workloads.weather import WeatherConfig

# Default weather sizes (≈29k market rows): big enough that the paper's
# ordering PayLess < w/o-SQR < Minimizing-Calls < Download-All shows up;
# small enough to run in seconds.
SMALL = BenchProfile(weather_q=3, tpch_q=1, tpch_scale=0.2)


@pytest.fixture(scope="module")
def real_sessions():
    data = make_workload("real", SMALL)
    instances = make_instances("real", data, 4, SMALL)
    systems = ("payless", "payless_nosqr", "min_calls", "download_all")
    return (
        data,
        {system: run_session(system, data, instances) for system in systems},
    )


class TestFigure10Orderings:
    def test_cumulative_series_monotone(self, real_sessions):
        __, sessions = real_sessions
        for session in sessions.values():
            series = session.cumulative_transactions
            assert all(a <= b for a, b in zip(series, series[1:]))

    def test_payless_beats_nosqr(self, real_sessions):
        __, sessions = real_sessions
        assert (
            sessions["payless"].total_transactions
            <= sessions["payless_nosqr"].total_transactions
        )

    def test_payless_beats_min_calls(self, real_sessions):
        __, sessions = real_sessions
        assert (
            sessions["payless"].total_transactions
            < sessions["min_calls"].total_transactions
        )

    def test_payless_beats_download_all_on_real_data(self, real_sessions):
        __, sessions = real_sessions
        assert (
            sessions["payless"].total_transactions
            < sessions["download_all"].total_transactions
        )

    def test_download_all_flatlines_at_bound(self, real_sessions):
        data, sessions = real_sessions
        assert (
            sessions["download_all"].total_transactions
            == download_all_bound(data)
        )

    def test_payless_never_exceeds_download_bound_plus_rounding(
        self, real_sessions
    ):
        """Once the store holds everything, PayLess stops paying."""
        data, sessions = real_sessions
        series = sessions["payless"].cumulative_transactions
        # Generous envelope: per-region ceil rounding can add overhead but
        # the curve must flatten far below repeated refetching.
        assert series[-1] < 3 * download_all_bound(data)


class TestHarness:
    def test_unknown_system(self):
        data = make_workload("real", SMALL)
        with pytest.raises(ReproError):
            build_system("mystery", data)

    def test_unknown_workload(self):
        with pytest.raises(ReproError):
            make_workload("mystery", SMALL)

    def test_noprune_instrumentation(self):
        data = make_workload("real", SMALL)
        instances = make_instances("real", data, 2, SMALL)
        session = run_session("payless", data, instances)
        assert session.average_boxes(pruned=True) <= session.average_boxes(
            pruned=False
        )

    def test_disable_all_counts_more_plans(self):
        data = make_workload("real", SMALL)
        instances = make_instances("real", data, 2, SMALL)
        payless = run_session("payless_nosqr", data, instances)
        bushy = run_session("payless_disable_all", data, instances)
        assert (
            bushy.average_evaluated_plans >= payless.average_evaluated_plans
        )


class TestReporting:
    def test_checkpoints(self):
        marks = checkpoints(100, 10)
        assert marks[-1] == 100
        assert len(marks) == 10

    def test_checkpoints_short_series(self):
        assert checkpoints(3, 10) == [1, 2, 3]

    def test_series_table_renders(self):
        text = series_table(
            "Fig X", {"a": [1, 2, 3], "b": [4, 5, 6]}, points=2
        )
        assert "Fig X" in text and "a" in text and "6" in text

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table("x", {"a": [1], "b": [1, 2]})

    def test_summary_table(self):
        text = summary_table(
            "Fig Y", [["real", 1.5, 10]], ["workload", "avg", "n"]
        )
        assert "workload" in text and "1.5" in text
