"""The async pipelined transport: parity, pools, prefetch, lifecycle.

The contract of :mod:`repro.market.aio` is that switching
``QueryOptions(transport_mode="async")`` changes *when* market calls
happen, never *what they cost*: both drivers replay the same sans-IO
fetch machine, so idempotency keys, fault draws, retries and billing are
identical by construction.  These tests assert that contract from the
outside:

* **canonical ledger parity** — the same workload billed through either
  driver produces the same multiset of billed calls (URL, rows,
  transactions, price, server-side latency, waste classification, and
  the *grouping* of entries into attribution tokens), calm and under
  injected chaos.  Raw tokens and idempotency keys are installation-
  scoped (they embed a transport id and a global query sequence), so the
  comparison canonicalizes them to ordinals first.
* **connection-setup semantics** — ``LatencyModel.connection_setup_ms``
  is charged per physical call by the threaded driver but once per
  pooled connection by the async driver; the saved milliseconds equal
  ``setup_ms x connections_reused`` exactly, while dollars are
  untouched.
* **conservative prefetch** — a query that fails after its prefetches
  were issued still records every completed purchase in the semantic
  store (counted in ``prefetch_wasted_dollars``), so a retry pays only
  for what was never bought: two-run total == clean-run total.
* **lifecycle** — ``close`` is idempotent and a later query transparently
  restarts the loop with fresh pools.
"""

import pytest

from repro.core.objectives import QueryOptions
from repro.errors import PlanningError
from repro.market.aio import AsyncMarketTransport
from repro.market.faults import FaultPolicy
from repro.market.latency import LatencyModel
from repro.market.transport import TransportConfig
from repro.obs.metrics import MetricsRegistry
from repro.testing import (
    oracle_evaluate,
    registered_payless,
    tiny_weather_market,
)

JOIN_SQL = (
    "SELECT s.City, w.Temperature FROM Station s, Weather w "
    "WHERE s.Country = w.Country AND s.StationID = w.StationID "
    "AND w.Date >= 1 AND w.Date <= 5"
)
WEATHER_SQL = (
    "SELECT Country, StationID, Date, Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= ? AND Date <= ?"
)


def _payless(transport_mode, transport=None, **option_kwargs):
    market = tiny_weather_market(days=10, tuples_per_transaction=5)
    payless = registered_payless(
        market,
        metrics=MetricsRegistry(),
        transport=transport,
        options=QueryOptions(transport_mode=transport_mode, **option_kwargs),
    )
    return payless


def _canonical_ledger(ledger):
    """The ledger as a transport-independent value.

    Sorts entries canonically and maps attribution tokens and
    idempotency keys to first-appearance ordinals: two runs then compare
    equal iff they billed the same calls for the same money with the
    same waste classification and the same token *grouping* — regardless
    of raw token text (which embeds per-installation counters).
    """
    entries = sorted(
        ledger,
        key=lambda e: (
            e.request.url(),
            e.transactions,
            e.price,
            e.idempotency_key or "",
        ),
    )
    tokens, keys = {}, {}
    canon = []
    for entry in entries:
        token = entry.fetch_token
        if token is not None:
            token = tokens.setdefault(token, len(tokens))
        key = entry.idempotency_key
        if key is not None:
            key = keys.setdefault(key, len(keys))
        canon.append(
            (
                entry.request.url(),
                entry.record_count,
                entry.transactions,
                entry.price,
                entry.elapsed_ms,
                ledger.is_wasted(entry),
                token,
                key,
            )
        )
    return canon


def _replay(transport_mode, transport=None):
    """A small mixed session: join, repeat (free), two range windows."""
    payless = _payless(transport_mode, transport=transport)
    try:
        results = [
            payless.query(JOIN_SQL),
            payless.query(JOIN_SQL),
            payless.query(WEATHER_SQL, (1, 6)),
            payless.query(WEATHER_SQL, (4, 9)),
        ]
        return _canonical_ledger(payless.market.ledger), results
    finally:
        payless.close()


class TestLedgerParity:
    def test_calm_ledgers_identical(self):
        threaded, threaded_results = _replay("threaded")
        awaited, async_results = _replay("async")
        assert awaited == threaded
        for a, b in zip(threaded_results, async_results):
            assert sorted(a.rows, key=repr) == sorted(b.rows, key=repr)
            assert a.stats.price == b.stats.price

    @pytest.mark.parametrize("seed", [7, 23, 101])
    def test_chaos_ledgers_identical(self, seed):
        def chaotic():
            return TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.35),
                max_retries=5,
            )

        threaded, __ = _replay("threaded", transport=chaotic())
        awaited, __ = _replay("async", transport=chaotic())
        assert awaited == threaded

    def test_stats_report_the_driver(self):
        payless = _payless("async")
        try:
            stats = payless.query(JOIN_SQL).stats
            assert stats.transport_mode == "async"
        finally:
            payless.close()
        payless = _payless("threaded")
        try:
            stats = payless.query(JOIN_SQL).stats
            assert stats.transport_mode == "threaded"
            assert stats.prefetch_hits == 0
        finally:
            payless.close()


class TestConnectionSetup:
    def _run(self, transport_mode):
        payless = _payless(transport_mode)
        market = payless.market
        try:
            # Warm a middle window so the second query's remainder splits
            # into two physical calls against the same seller.
            payless.query(WEATHER_SQL, (4, 5))
            market.latency = LatencyModel(
                round_trip_ms=10.0,
                per_transaction_ms=1.0,
                connection_setup_ms=100.0,
            )
            stats = payless.query(WEATHER_SQL, (1, 10)).stats
            reused = payless.metrics.snapshot().get(
                "connections_reused", 0.0
            )
            return stats, reused
        finally:
            payless.close()

    def test_setup_charged_per_connection_not_per_call(self):
        threaded, threaded_reused = self._run("threaded")
        awaited, async_reused = self._run("async")
        assert threaded.calls == awaited.calls == 2
        assert threaded.price == awaited.price  # dollars never move
        assert threaded_reused == 0.0
        assert async_reused == 2.0  # warm call pooled the connection
        # The threaded driver paid the handshake on both calls; the async
        # driver paid it on neither — the gap is exactly setup x reuses.
        assert threaded.market_time_ms - awaited.market_time_ms == (
            pytest.approx(100.0 * async_reused)
        )
        assert (
            awaited.market_time_critical_path_ms
            < threaded.market_time_critical_path_ms
        )

    def test_negative_setup_rejected(self):
        from repro.errors import MarketError

        with pytest.raises(MarketError):
            LatencyModel(connection_setup_ms=-1.0)

    def test_setup_participates_in_is_instant(self):
        instant = LatencyModel(round_trip_ms=0.0, per_transaction_ms=0.0)
        assert instant.is_instant
        assert not LatencyModel(
            round_trip_ms=0.0,
            per_transaction_ms=0.0,
            connection_setup_ms=5.0,
        ).is_instant


class TestPrefetch:
    def test_prefetch_consumed_and_free_of_waste(self):
        payless = _payless("async", use_theorems=False)
        try:
            result = payless.query(JOIN_SQL)
            assert result.stats.prefetch_hits == 2  # both accesses
            snapshot = payless.metrics.snapshot()
            assert snapshot.get("prefetch_hits") == 2.0
            assert snapshot.get("prefetch_wasted_dollars", 0.0) == 0.0
            want = sorted(
                oracle_evaluate(payless, JOIN_SQL).rows, key=repr
            )
            assert sorted(result.rows, key=repr) == want
        finally:
            payless.close()

    def test_failed_query_drains_prefetched_purchases(self):
        clean = _payless("async", use_theorems=False)
        try:
            clean.query(JOIN_SQL)
            clean_total = clean.market.ledger.total_price
        finally:
            clean.close()

        payless = _payless("async", use_theorems=False)
        market = payless.market
        original = market.get

        def failing(request, **kwargs):
            # Station is the plan's first access: its prefetch surfaces
            # the outage while Weather's prefetched purchase completes
            # and must be drained, not dropped.
            if request.table.lower() == "station":
                raise RuntimeError("injected seller outage")
            return original(request, **kwargs)

        market.get = failing
        try:
            with pytest.raises(RuntimeError, match="injected"):
                payless.query(JOIN_SQL)
            snapshot = payless.metrics.snapshot()
            # Weather's speculative purchase is accounted as waste...
            assert snapshot.get("prefetch_wasted_dollars", 0.0) > 0.0
            assert payless.market.ledger.total_price > 0.0
            # ...but recorded in the store, so the retry pays only for
            # what was never bought: two runs cost one clean run.
            market.get = original
            retry = payless.query(JOIN_SQL)
            assert payless.market.ledger.total_price == clean_total
            want = sorted(
                oracle_evaluate(payless, JOIN_SQL).rows, key=repr
            )
            assert sorted(retry.rows, key=repr) == want
        finally:
            market.get = original
            payless.close()

    def test_prefetch_can_be_disabled(self):
        payless = _payless("async", prefetch=False)
        try:
            result = payless.query(JOIN_SQL)
            assert result.stats.prefetch_hits == 0
            assert (
                payless.metrics.snapshot().get("prefetch_hits", 0.0) == 0.0
            )
        finally:
            payless.close()


class TestLifecycleAndValidation:
    def test_close_is_idempotent_and_restartable(self):
        payless = _payless("async")
        try:
            first = payless.query(WEATHER_SQL, (1, 3))
            aio = payless.context.async_transport
            aio.close()
            aio.close()  # idempotent
            # A query after close lazily restarts the loop (fresh pools).
            second = payless.query(WEATHER_SQL, (4, 6))
            assert first.stats.complete and second.stats.complete
        finally:
            payless.close()
            payless.close()

    def test_transport_mode_validated(self):
        with pytest.raises(PlanningError):
            QueryOptions(transport_mode="carrier-pigeon")
        with pytest.raises(PlanningError):
            QueryOptions(async_pool_size=0)

    def test_pool_size_validated(self):
        payless = _payless("threaded")
        try:
            with pytest.raises(ValueError):
                AsyncMarketTransport(
                    payless.context.transport, pool_size=0
                )
        finally:
            payless.close()

    def test_threaded_stays_the_default(self):
        assert QueryOptions().transport_mode == "threaded"
        payless = _payless("threaded")
        try:
            assert payless.context.async_transport is None
        finally:
            payless.close()
