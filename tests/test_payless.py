"""Facade tests: registration, querying, billing, variants."""

import pytest

from repro import (
    ConsistencyPolicy,
    Database,
    DataMarket,
    PayLess,
    Table,
)
from repro.errors import PlanningError, SqlAnalysisError


class TestRegistration:
    def test_query_before_registration_fails(self, mini_weather_market):
        payless = PayLess.full(mini_weather_market)
        with pytest.raises(SqlAnalysisError):
            payless.query("SELECT * FROM Station")

    def test_register_unknown_dataset(self, mini_weather_market):
        payless = PayLess.full(mini_weather_market)
        with pytest.raises(Exception):
            payless.register_dataset("Nope")

    def test_add_local_table(self, mini_payless):
        from repro.relational.schema import Attribute, Schema
        from repro.relational.types import AttributeType as T

        table = Table(
            "Notes", Schema([Attribute("City", T.STRING)]), [("Alpha",)]
        )
        mini_payless.add_local_table(table)
        result = mini_payless.query("SELECT * FROM Notes")
        assert result.rows == [("Alpha",)]
        assert result.transactions == 0


class TestQuerying:
    def test_columns_exposed(self, mini_payless):
        result = mini_payless.query(
            "SELECT City, AVG(Temperature) FROM Station, Weather "
            "WHERE Station.StationID = Weather.StationID "
            "AND Station.Country = 'CountryB' GROUP BY City"
        )
        assert result.columns == ["City", "avg_temperature"]
        assert len(result.rows) == 1  # only Delta in CountryB

    def test_bill_accumulates(self, mini_payless):
        mini_payless.query("SELECT * FROM Station")
        mini_payless.query("SELECT * FROM Station")
        assert mini_payless.queries_executed == 2
        assert mini_payless.total_transactions == 1  # second is free
        assert "2 queries" in mini_payless.bill()

    def test_explain_does_not_buy(self, mini_payless):
        planning = mini_payless.explain("SELECT * FROM Weather")
        assert planning.cost > 0
        assert mini_payless.total_transactions == 0
        assert "MarketAccess" in planning.plan.describe()

    def test_price_tracks_policy(self, mini_payless):
        result = mini_payless.query("SELECT * FROM Weather")
        assert result.price == pytest.approx(float(result.transactions))


class TestVariants:
    def test_without_sqr_repays(self, mini_weather_market):
        payless = PayLess.without_sqr(mini_weather_market)
        payless.register_dataset("WHW")
        first = payless.query("SELECT * FROM Station")
        second = payless.query("SELECT * FROM Station")
        assert first.transactions == second.transactions > 0

    def test_strong_consistency_repays(self, mini_weather_market):
        payless = PayLess.full(
            mini_weather_market, consistency=ConsistencyPolicy.strong()
        )
        payless.register_dataset("WHW")
        first = payless.query("SELECT * FROM Station")
        second = payless.query("SELECT * FROM Station")
        assert first.transactions == second.transactions > 0

    def test_x_week_consistency_expires(self, mini_weather_market):
        payless = PayLess.full(
            mini_weather_market, consistency=ConsistencyPolicy.weeks(1)
        )
        payless.register_dataset("WHW")
        payless.query("SELECT * FROM Station")
        assert payless.query("SELECT * FROM Station").transactions == 0
        payless.store.advance_clock(2)
        assert payless.query("SELECT * FROM Station").transactions > 0


class TestDownloadAll:
    def test_first_touch_downloads_whole_table(self, mini_payless):
        strategy = mini_payless.download_all_strategy()
        logical = mini_payless.compile(
            "SELECT * FROM Weather WHERE Date = 1"
        )
        first = strategy.execute(logical)
        assert first.transactions == 6  # all 60 weather rows at t=10
        assert len(first.relation.rows) == 6
        second = strategy.execute(logical)
        assert second.transactions == 0

    def test_upfront_cost(self, mini_payless):
        strategy = mini_payless.download_all_strategy()
        assert strategy.upfront_cost(["Station", "Weather"]) == 1 + 6

    def test_local_tables_pass_through(
        self, mini_payless_with_local
    ):
        strategy = mini_payless_with_local.download_all_strategy()
        logical = mini_payless_with_local.compile(
            "SELECT * FROM CityInfo WHERE Zone = 1"
        )
        outcome = strategy.execute(logical)
        assert outcome.transactions == 0
        assert len(outcome.relation.rows) == 2
