"""Chaos + determinism for concurrent serving (``pytest -m concurrency``).

Two acceptance properties of the serving front-end, asserted *exactly*
(not probabilistically):

* **billing invariance under chaos** — the same multi-session workload,
  run at 8 workers with coalescing on, bills the identical total whether
  or not transient market faults are injected.  The fault policy's
  ``max_consecutive_faults`` cap is below the retry allowance, so every
  call eventually succeeds; idempotency keys make retries free; and the
  singleflight invariant makes every distinct remainder box bill exactly
  once no matter how sessions interleave.  No box is ever double-billed
  and no waiter is ever served rows from an unbilled fetch.
* **determinism across worker counts** — with coalescing off and a
  workload whose sessions touch disjoint regions, workers=1 and
  workers=8 produce identical per-query rows and identical total spent
  dollars: thread scheduling must never leak into results or money.

The workload is the paper's Q1 template over a small synthetic WHW
market; shared regions are identical across sessions (the coalescing
surface), private regions are disjoint per session (the determinism
surface).
"""

import pytest

from repro.core.objectives import QueryOptions
from repro.core.payless import PayLess
from repro.market.faults import FaultPolicy
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryScheduler, ServeConfig
from repro.workloads.weather import (
    TEMPLATES,
    WeatherConfig,
    generate_weather_workload,
)

pytestmark = pytest.mark.concurrency

Q1 = TEMPLATES["Q1"]

#: Small but real: 2 countries x 6 stations x 40 days, 20-tuple pages.
DATA = generate_weather_workload(
    WeatherConfig(
        countries=2,
        stations_per_country=6,
        cities_per_country=4,
        days=40,
        tuples_per_transaction=20,
        seed=13,
    )
)

SESSIONS = 4


def _fresh_payless(
    transport: TransportConfig | None = None,
    transport_mode: str = "threaded",
) -> PayLess:
    market = DataMarket()
    for dataset in DATA.datasets:
        market.publish(dataset)
    payless = PayLess.full(
        market,
        local_db=DATA.local_database(),
        transport=transport,
        metrics=MetricsRegistry(),
        options=QueryOptions(transport_mode=transport_mode),
    )
    for dataset in DATA.datasets:
        payless.register_dataset(dataset.name)
    return payless


def _shared_workload() -> list[tuple[str, tuple]]:
    """Per session: 2 shared Q1 regions (identical across sessions, the
    coalescing surface) then 4 private 2-day windows (disjoint across
    sessions).  Submission is region-major so the shared fetches of all
    sessions overlap under a thread pool."""
    shared = [("Country00", 1, 10), ("Country01", 11, 20)]
    workload: list[tuple[str, tuple]] = []
    for params in shared:
        for session in range(SESSIONS):
            workload.append((f"user{session}", params))
    for session in range(SESSIONS):
        for window in range(4):
            index = session * 4 + window
            country = f"Country{index // 10:02d}"
            low = 21 + 2 * (index % 10)
            workload.append((f"user{session}", (country, low, low + 1)))
    return workload


def _disjoint_workload() -> list[tuple[str, tuple]]:
    """Every (session, query) touches its own region — billing and rows
    cannot depend on interleaving, which is what determinism asserts."""
    workload: list[tuple[str, tuple]] = []
    for session in range(SESSIONS):
        for window in range(6):
            index = session * 6 + window
            country = f"Country{index // 13:02d}"
            low = 1 + 3 * (index % 13)
            workload.append((f"user{session}", (country, low, low + 2)))
    return workload


def _run(
    workload,
    workers: int,
    coalesce: bool,
    transport: TransportConfig | None = None,
    session_max_inflight: int = 2,
    transport_mode: str = "threaded",
):
    """One fresh installation through the scheduler; results in submit
    order (so runs are comparable query-by-query)."""
    payless = _fresh_payless(transport, transport_mode=transport_mode)
    config = ServeConfig(
        workers=workers,
        coalesce=coalesce,
        session_max_inflight=session_max_inflight,
    )
    with QueryScheduler(payless, config) as scheduler:
        tickets = [
            (scheduler.session(session).submit(Q1, params))
            for session, params in workload
        ]
        results = [ticket.result(timeout=120.0) for ticket in tickets]
    payless.close()  # stops the async loop when one is attached
    return payless, scheduler, results


class TestChaosBillingInvariance:
    @pytest.mark.parametrize("transport_mode", ["threaded", "async"])
    @pytest.mark.parametrize("seed", [7, 23, 101])
    def test_faults_do_not_change_the_bill(self, seed, transport_mode):
        workload = _shared_workload()
        calm_payless, __, calm_results = _run(
            workload, workers=8, coalesce=True,
            transport_mode=transport_mode,
        )
        faults = FaultPolicy.uniform(seed=seed, rate=0.4)
        assert faults.max_consecutive_faults == 3  # < max_retries below
        chaotic = TransportConfig(faults=faults, max_retries=5)
        chaos_payless, scheduler, chaos_results = _run(
            workload, workers=8, coalesce=True, transport=chaotic,
            transport_mode=transport_mode,
        )

        # Chaos actually happened, and every fault was absorbed.
        injected = sum(r.stats.faults_injected for r in chaos_results)
        assert injected > 0
        assert all(r.stats.complete for r in chaos_results)

        # The acceptance gate: total billed dollars identical faults-on
        # vs faults-off, and nothing wasted.
        calm_ledger = calm_payless.market.ledger
        chaos_ledger = chaos_payless.market.ledger
        assert (
            chaos_ledger.total_transactions
            == calm_ledger.total_transactions
        )
        assert chaos_ledger.total_price == pytest.approx(
            calm_ledger.total_price
        )
        assert chaos_ledger.wasted_on_failures.calls == 0
        assert chaos_payless.total_price == pytest.approx(
            calm_payless.total_price
        )

        # At-most-once per box, under chaos and coalescing: no remainder
        # URL appears twice among billed calls.
        urls = [entry.request.url() for entry in chaos_ledger]
        assert len(urls) == len(set(urls))

        # No waiter was ever served rows from a failed (unbilled) fetch:
        # every query's rows match the fault-free run's, query for query.
        for calm, chaos in zip(calm_results, chaos_results):
            assert sorted(chaos.rows) == sorted(calm.rows)

        # Attribution still sums exactly despite retries interleaving.
        sessions = scheduler.sessions
        assert sum(s.price for s in sessions) == pytest.approx(
            chaos_payless.total_price
        )

        # Conservative prefetch: nothing speculatively bought was ever
        # thrown away, even under chaos.
        metrics = chaos_payless.metrics.snapshot()
        assert metrics.get("prefetch_wasted_dollars", 0.0) == 0.0

    def test_coalesced_savings_ledger_consistent(self):
        """Whatever was coalesced is accounted once, on both sides: the
        sessions' attributed savings equal the ledger's savings bucket."""
        payless, scheduler, results = _run(
            _shared_workload(), workers=8, coalesce=True
        )
        savings = payless.market.ledger.coalesced_savings
        attributed = sum(r.stats.coalesced_fetches for r in results)
        assert savings.calls == attributed
        assert sum(
            r.stats.coalesced_savings_price for r in results
        ) == pytest.approx(savings.price)
        # Free riders (coalesced or covered-at-issue or covered-at-
        # rewrite) exist or not depending on timing, but money never
        # exceeds the serial bill: each distinct box at most once.
        urls = [e.request.url() for e in payless.market.ledger]
        assert len(urls) == len(set(urls))


class TestDeterminismAcrossWorkers:
    @pytest.mark.parametrize("transport_mode", ["threaded", "async"])
    def test_workers_1_and_8_agree_exactly(self, transport_mode):
        workload = _disjoint_workload()
        serial_payless, __, serial_results = _run(
            workload, workers=1, coalesce=False, session_max_inflight=1,
            transport_mode=transport_mode,
        )
        parallel_payless, __, parallel_results = _run(
            workload, workers=8, coalesce=False, session_max_inflight=1,
            transport_mode=transport_mode,
        )
        assert len(serial_results) == len(parallel_results)
        for serial, parallel in zip(serial_results, parallel_results):
            assert sorted(parallel.rows) == sorted(serial.rows)
            assert (
                parallel.stats.transactions == serial.stats.transactions
            )
        assert (
            parallel_payless.total_transactions
            == serial_payless.total_transactions
        )
        assert parallel_payless.total_price == pytest.approx(
            serial_payless.total_price
        )
        assert (
            parallel_payless.market.ledger.total_price
            == pytest.approx(serial_payless.market.ledger.total_price)
        )

    def test_parallel_run_repeats_identically(self):
        workload = _disjoint_workload()
        first_payless, __, first = _run(
            workload, workers=8, coalesce=False, session_max_inflight=1
        )
        second_payless, __, second = _run(
            workload, workers=8, coalesce=False, session_max_inflight=1
        )
        for a, b in zip(first, second):
            assert sorted(a.rows) == sorted(b.rows)
        assert first_payless.total_price == pytest.approx(
            second_payless.total_price
        )
