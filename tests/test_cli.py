"""CLI tests: argument parsing and command output."""

import pytest

from repro.cli import main


class TestSession:
    def test_session_runs(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--system", "payless"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cumulative transactions" in out
        assert "total:" in out

    def test_download_all_session(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--system", "download_all"]
        )
        assert code == 0
        assert "download-all bound" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_plan(self, capsys):
        code = main(
            [
                "explain",
                "--workload",
                "real",
                "SELECT * FROM Weather WHERE Weather.Date <= 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MarketAccess(Weather)" in out
        assert "estimated transactions" in out


class TestFigures:
    def test_fig15(self, capsys):
        code = main(["figures", "fig15", "--workload", "real"])
        assert code == 0
        assert "Figure 15" in capsys.readouterr().out


class TestParsing:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["session", "--workload", "mystery"])
