"""CLI tests: argument parsing and command output."""

import pytest

from repro.cli import main


class TestSession:
    def test_session_runs(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--system", "payless"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cumulative transactions" in out
        assert "total:" in out

    def test_download_all_session(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--system", "download_all"]
        )
        assert code == 0
        assert "download-all bound" in capsys.readouterr().out

    def test_concurrent_session_with_workers(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--workers", "4", "--sessions", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving:" in out
        assert "user0" in out and "user1" in out

    def test_concurrent_session_no_coalesce(self, capsys):
        code = main(
            ["session", "--workload", "real", "--instances", "1",
             "--workers", "2", "--no-coalesce"]
        )
        assert code == 0
        assert "serving:" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_plan(self, capsys):
        code = main(
            [
                "explain",
                "--workload",
                "real",
                "SELECT * FROM Weather WHERE Weather.Date <= 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MarketAccess(Weather)" in out
        assert "estimated:" in out
        assert "coverage:" in out

    def test_explain_prefix_is_stripped(self, capsys):
        code = main(
            [
                "explain",
                "--workload",
                "real",
                "EXPLAIN SELECT * FROM Weather WHERE Weather.Date <= 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN EXPLAIN" not in out
        assert "MarketAccess(Weather)" in out

    def test_explain_analyze_prints_actuals(self, capsys):
        code = main(
            [
                "explain",
                "--workload",
                "real",
                "--analyze",
                "SELECT * FROM Weather WHERE Weather.Date <= 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "actual:" in out
        assert "purchased" in out

    def test_trace_json_dumps_span_tree(self, capsys):
        code = main(
            [
                "explain",
                "--workload",
                "real",
                "--trace-json",
                "EXPLAIN ANALYZE SELECT * FROM Weather WHERE Weather.Date <= 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"kind": "query"' in out
        assert '"kind": "table_fetch"' in out


class TestSessionMetrics:
    def test_session_metrics_flag_prints_snapshot(self, capsys):
        code = main(
            [
                "session",
                "--workload",
                "real",
                "--instances",
                "1",
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "queries = " in out
        assert "transactions_spent = " in out


class TestFigures:
    def test_fig15(self, capsys):
        code = main(["figures", "fig15", "--workload", "real"])
        assert code == 0
        assert "Figure 15" in capsys.readouterr().out


class TestParsing:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["session", "--workload", "mystery"])
