"""Failure injection: the system must fail loudly and bill consistently.

Real markets flake; the important invariant is that a failed query leaves
the buyer-side state coherent — the ledger reflects exactly the calls that
happened, the semantic store only records data actually received, and a
retry works (and pays only for what the failed attempt didn't manage to
store).
"""

import pytest

from repro.errors import MarketError, ReproError
from repro.testing import registered_payless, tiny_weather_market


class _FlakyMarket:
    """Wraps DataMarket.get to fail on the Nth call."""

    def __init__(self, market, fail_on_call: int):
        self.market = market
        self.fail_on_call = fail_on_call
        self.calls = 0
        self._original_get = market.get

    def install(self):
        def flaky_get(request):
            self.calls += 1
            if self.calls == self.fail_on_call:
                raise MarketError("injected: service unavailable")
            return self._original_get(request)

        self.market.get = flaky_get

    def restore(self):
        self.market.get = self._original_get


JOIN_SQL = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Alpha' AND Station.StationID = Weather.StationID"
)


class TestFailureMidPlan:
    def test_error_propagates(self):
        market = tiny_weather_market()
        payless = registered_payless(market)
        flaky = _FlakyMarket(market, fail_on_call=2)
        flaky.install()
        with pytest.raises(MarketError, match="injected"):
            payless.query(JOIN_SQL)

    def test_ledger_reflects_partial_work(self):
        market = tiny_weather_market()
        payless = registered_payless(market)
        flaky = _FlakyMarket(market, fail_on_call=2)
        flaky.install()
        with pytest.raises(MarketError):
            payless.query(JOIN_SQL)
        # Exactly one successful call was billed before the failure.
        assert market.ledger.total_calls == 1

    def test_retry_succeeds_and_reuses_partial_data(self):
        market = tiny_weather_market()
        payless = registered_payless(market)
        flaky = _FlakyMarket(market, fail_on_call=2)
        flaky.install()
        with pytest.raises(MarketError):
            payless.query(JOIN_SQL)
        flaky.restore()

        result = payless.query(JOIN_SQL)
        assert len(result.rows) == 20  # stations 1 and 2, 10 days each
        # The Station call from the failed attempt was stored, so the
        # retry buys only the Weather side.
        retry_station_calls = [
            entry
            for entry in market.ledger
            if entry.request.table == "Station"
        ]
        assert len(retry_station_calls) == 1

    def test_facade_totals_unchanged_on_failure(self):
        market = tiny_weather_market()
        payless = registered_payless(market)
        flaky = _FlakyMarket(market, fail_on_call=1)
        flaky.install()
        with pytest.raises(MarketError):
            payless.query("SELECT * FROM Station")
        # The facade never recorded a completed query.
        assert payless.queries_executed == 0
        assert payless.history == []
