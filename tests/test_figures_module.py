"""Unit tests for the per-figure experiment drivers (tiny profiles)."""

import pytest

from repro.bench.figures import (
    BenchProfile,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.workloads.weather import WeatherConfig

TINY = BenchProfile(
    weather_q=1,
    tpch_q=1,
    weather=WeatherConfig(
        countries=2, stations_per_country=6, cities_per_country=4, days=20
    ),
    tpch_scale=0.1,
)


class TestFigure10:
    def test_returns_all_systems(self):
        sessions = figure10("real", TINY)
        assert set(sessions) == {
            "payless",
            "payless_nosqr",
            "min_calls",
            "download_all",
        }
        lengths = {len(s.cumulative_transactions) for s in sessions.values()}
        assert lengths == {5}  # 5 templates x q=1

    def test_subset_of_systems(self):
        sessions = figure10("real", TINY, systems=("payless",))
        assert list(sessions) == ["payless"]


class TestFigure11:
    def test_sweeps_t(self):
        results = figure11("real", t_values=(50, 100), profile=TINY)
        assert set(results) == {
            "payless_t50",
            "download_all_t50",
            "payless_t100",
            "download_all_t100",
        }
        # Smaller pages -> more transactions, on both series.
        assert results["download_all_t50"] > results["download_all_t100"]
        assert (
            results["payless_t50"].total_transactions
            >= results["payless_t100"].total_transactions
        )


class TestFigure12:
    def test_sweeps_q(self):
        results = figure12("real", q_values=(1, 2), profile=TINY)
        assert len(results["payless_q1"].cumulative_transactions) == 5
        assert len(results["payless_q2"].cumulative_transactions) == 10
        assert isinstance(results["download_all"], int)


class TestFigure13:
    def test_sweeps_scale(self):
        results = figure13("tpch", scales=(0.1, 0.2), profile=TINY)
        assert results["download_all_D0.2"] > results["download_all_D0.1"]


class TestFigure14:
    def test_three_arms(self):
        results = figure14("real", q_values=(1,), profile=TINY)
        assert set(results) == {"PayLess", "Disable SQR", "Disable All"}
        assert results["Disable All"][1] >= results["PayLess"][1]


class TestFigure15:
    def test_two_series(self):
        results = figure15("real", q_values=(1,), profile=TINY)
        assert results["PayLess"][1] <= results["No Pruning"][1]
