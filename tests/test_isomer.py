"""Unit + property tests for the ISOMER-style feedback histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace
from repro.stats.isomer import FeedbackHistogram


def make_space(width=100):
    schema = Schema([Attribute("A", T.INT)])
    pattern = BindingPattern(table="R", modes={"A": AccessMode.FREE})
    return BoxSpace.from_table(
        "R", schema, pattern, BasicStatistics(0, {"a": Domain.numeric(0, width - 1)})
    )


def make_space_2d(width=20):
    schema = Schema([Attribute("A", T.INT), Attribute("B", T.INT)])
    pattern = BindingPattern(
        table="R", modes={"A": AccessMode.FREE, "B": AccessMode.FREE}
    )
    return BoxSpace.from_table(
        "R",
        schema,
        pattern,
        BasicStatistics(
            0,
            {
                "a": Domain.numeric(0, width - 1),
                "b": Domain.numeric(0, width - 1),
            },
        ),
    )


class TestUniformPrior:
    def test_full_box_equals_cardinality(self):
        histogram = FeedbackHistogram(make_space(), 500)
        assert histogram.estimate_full() == pytest.approx(500.0)

    def test_proportional_fraction(self):
        histogram = FeedbackHistogram(make_space(100), 500)
        assert histogram.estimate(Box(((0, 50),))) == pytest.approx(250.0)

    def test_outside_domain_is_zero(self):
        histogram = FeedbackHistogram(make_space(100), 500)
        assert histogram.estimate(Box(((200, 300),))) == 0.0

    def test_negative_cardinality_rejected(self):
        with pytest.raises(StatisticsError):
            FeedbackHistogram(make_space(), -1)


class TestFeedback:
    def test_observed_region_exact(self):
        histogram = FeedbackHistogram(make_space(100), 1000)
        histogram.observe(Box(((0, 10),)), 3)
        assert histogram.estimate(Box(((0, 10),))) == pytest.approx(3.0)

    def test_residual_rebalanced(self):
        histogram = FeedbackHistogram(make_space(100), 1000)
        histogram.observe(Box(((0, 50),)), 0)
        # All 1000 tuples must now be in the other half.
        assert histogram.estimate(Box(((50, 100),))) == pytest.approx(1000.0)

    def test_total_preserved(self):
        histogram = FeedbackHistogram(make_space(100), 1000)
        histogram.observe(Box(((10, 30),)), 111)
        histogram.observe(Box(((40, 70),)), 222)
        assert histogram.estimate_full() == pytest.approx(1000.0)

    def test_overlapping_feedback_latest_wins(self):
        histogram = FeedbackHistogram(make_space(100), 1000)
        histogram.observe(Box(((0, 20),)), 100)
        histogram.observe(Box(((10, 30),)), 50)
        assert histogram.estimate(Box(((10, 30),))) == pytest.approx(50.0)

    def test_refinement_splits_proportionally(self):
        histogram = FeedbackHistogram(make_space(100), 1000)
        histogram.observe(Box(((0, 20),)), 100)
        histogram.observe(Box(((10, 30),)), 50)
        # [0,10) keeps half of the original 100.
        assert histogram.estimate(Box(((0, 10),))) == pytest.approx(50.0)

    def test_negative_observation_rejected(self):
        histogram = FeedbackHistogram(make_space(), 10)
        with pytest.raises(StatisticsError):
            histogram.observe(Box(((0, 5),)), -2)

    def test_off_domain_observation_ignored(self):
        histogram = FeedbackHistogram(make_space(100), 10)
        histogram.observe(Box(((500, 600),)), 99)
        assert histogram.refined_box_count == 0

    def test_compaction_bounds_box_count(self):
        histogram = FeedbackHistogram(make_space(1000), 100, max_boxes=16)
        for i in range(100):
            histogram.observe(Box(((i * 10, i * 10 + 10),)), 1)
        assert histogram.refined_box_count <= 16

    def test_2d_feedback(self):
        histogram = FeedbackHistogram(make_space_2d(20), 400)
        histogram.observe(Box(((0, 10), (0, 10))), 7)
        assert histogram.estimate(Box(((0, 10), (0, 10)))) == pytest.approx(7.0)
        assert histogram.estimate_full() == pytest.approx(400.0)


@settings(max_examples=100, deadline=None)
@given(
    observations=st.lists(
        st.tuples(
            st.integers(0, 90),
            st.integers(1, 20),
            st.integers(0, 50),
        ),
        max_size=8,
    ),
)
def test_last_observation_always_exact(observations):
    """Re-estimating the most recent observed region returns its count."""
    histogram = FeedbackHistogram(make_space(100), 500)
    last = None
    for start, width, count in observations:
        box = Box(((start, min(start + width, 100)),))
        histogram.observe(box, count)
        last = (box, count)
    if last is not None:
        box, count = last
        assert histogram.estimate(box) == pytest.approx(float(count))


@settings(max_examples=100, deadline=None)
@given(
    observations=st.lists(
        st.tuples(st.integers(0, 90), st.integers(1, 20), st.integers(0, 50)),
        max_size=8,
    ),
    probe=st.tuples(st.integers(0, 90), st.integers(1, 30)),
)
def test_estimates_never_negative(observations, probe):
    histogram = FeedbackHistogram(make_space(100), 100)
    for start, width, count in observations:
        histogram.observe(Box(((start, min(start + width, 100)),)), count)
    start, width = probe
    assert histogram.estimate(Box(((start, min(start + width, 100)),))) >= 0.0
