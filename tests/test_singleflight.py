"""Singleflight protocol unit tests: leader/follower, abort, release.

The invariants asserted here are the ones the concurrent serving design
rests on (see DESIGN.md "Concurrency & coalescing"): a completed flight
stays registered until its rows are recorded (held-until-release), a
failed flight is deregistered *before* its waiters wake (no waiter is
ever served rows from an unbilled fetch), and release retires only the
exact flight object it led (a successor flight started after an abort is
untouched).
"""

import threading

from repro.serve.singleflight import Flight, SingleflightGroup


class _FakeResult:
    """Stands in for a FetchResult — singleflight never inspects it."""


def _result() -> _FakeResult:
    return _FakeResult()


class TestLifecycle:
    def test_first_begin_leads(self):
        group = SingleflightGroup()
        flight, leader = group.begin("k")
        assert leader
        assert not flight.done
        assert group.in_flight == 1
        assert group.flights_led == 1

    def test_second_begin_joins_same_flight(self):
        group = SingleflightGroup()
        flight, _ = group.begin("k")
        joined, leader = group.begin("k")
        assert joined is flight
        assert not leader
        assert flight.waiters == 1
        assert group.fetches_coalesced == 1

    def test_distinct_keys_do_not_coalesce(self):
        group = SingleflightGroup()
        a, a_leads = group.begin("a")
        b, b_leads = group.begin("b")
        assert a is not b
        assert a_leads and b_leads
        assert group.in_flight == 2

    def test_complete_wakes_waiters_with_shared_result(self):
        group = SingleflightGroup()
        flight, _ = group.begin("k")
        result = _result()
        group.complete(flight, result)
        assert flight.done
        assert flight.completed
        assert flight.wait(timeout=0.0)
        assert flight.result is result

    def test_completed_flight_stays_registered_until_release(self):
        # The held-until-release invariant: after complete() but before
        # release(), a new arrival still joins the flight (free) instead
        # of leading a duplicate paid fetch of the same key.
        group = SingleflightGroup()
        flight, _ = group.begin("k")
        group.complete(flight, _result())
        late, leader = group.begin("k")
        assert late is flight
        assert not leader
        group.release(flight)
        assert group.in_flight == 0
        fresh, leads = group.begin("k")
        assert fresh is not flight
        assert leads

    def test_release_removes_only_the_exact_flight(self):
        group = SingleflightGroup()
        first, _ = group.begin("k")
        group.abort(first, RuntimeError("boom"))
        successor, leads = group.begin("k")
        assert leads
        # Releasing the dead first flight must not retire the successor.
        group.release(first)
        assert group.in_flight == 1
        again, joined_leader = group.begin("k")
        assert again is successor
        assert not joined_leader


class TestAbort:
    def test_abort_deregisters_before_waking(self):
        group = SingleflightGroup()
        flight, _ = group.begin("k")
        error = RuntimeError("market down")
        group.abort(flight, error)
        assert flight.done
        assert flight.failed
        assert not flight.completed
        assert flight.error is error
        assert flight.result is None
        # The key is free again: the next begin leads a fresh flight.
        assert group.in_flight == 0
        assert group.flights_aborted == 1
        fresh, leads = group.begin("k")
        assert leads
        assert fresh is not flight

    def test_waiter_never_reads_rows_from_a_failed_flight(self):
        """Forced leader failure: the woken waiter must observe failure
        (and re-begin as the new leader), never the failed flight's rows."""
        group = SingleflightGroup()
        flight, _ = group.begin("k")
        observed = {}
        joined = threading.Event()

        def waiter():
            shared, leader = group.begin("k")
            assert not leader
            joined.set()
            shared.wait(timeout=5.0)
            observed["failed"] = shared.failed
            observed["result"] = shared.result
            # The protocol's retry step: loop back through begin and
            # become the new leader with a fresh retry budget.
            retry, now_leader = group.begin("k")
            observed["retried_as_leader"] = now_leader
            group.complete(retry, _result())
            group.release(retry)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert joined.wait(timeout=5.0)
        group.abort(flight, RuntimeError("leader died"))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert observed["failed"] is True
        assert observed["result"] is None
        assert observed["retried_as_leader"] is True
        assert group.flights_aborted == 1
        assert group.in_flight == 0

    def test_many_concurrent_begins_elect_one_leader(self):
        group = SingleflightGroup()
        barrier = threading.Barrier(8)
        leaders = []
        lock = threading.Lock()
        flight_box = {}

        def contender():
            barrier.wait()
            flight, leader = group.begin("k")
            with lock:
                leaders.append(leader)
                flight_box.setdefault("flight", flight)
                assert flight_box["flight"] is flight
            if leader:
                group.complete(flight, _result())
            else:
                assert flight.wait(timeout=5.0)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert sum(leaders) == 1
        assert group.flights_led == 1
        assert group.fetches_coalesced == 7


class TestIntrospection:
    def test_repr_states(self):
        flight = Flight("k")
        assert "in-flight" in repr(flight)
        group = SingleflightGroup()
        led, _ = group.begin("k")
        group.complete(led, _result())
        assert "done" in repr(led)
        group.abort(led, RuntimeError("x"))
        assert "failed" in repr(led)
        assert "led" in repr(group)
