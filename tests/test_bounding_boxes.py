"""Unit tests for Algorithm 1 (candidate bounding-box generation)."""

import pytest

from repro.core.bounding_boxes import generate_candidates
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace


def numeric_space(names_and_widths):
    schema = Schema([Attribute(n, T.INT) for n, __ in names_and_widths])
    pattern = BindingPattern(
        table="R", modes={n: AccessMode.FREE for n, __ in names_and_widths}
    )
    domains = {
        n.lower(): Domain.numeric(0, w - 1) for n, w in names_and_widths
    }
    return BoxSpace.from_table("R", schema, pattern, BasicStatistics(0, domains))


def mixed_space(width, categories, bound_categorical=False):
    schema = Schema([Attribute("A", T.INT), Attribute("C", T.STRING)])
    pattern = BindingPattern(
        table="R",
        modes={
            "A": AccessMode.FREE,
            "C": AccessMode.BOUND if bound_categorical else AccessMode.FREE,
        },
    )
    domains = {
        "a": Domain.numeric(0, width - 1),
        "c": Domain.categorical(categories),
    }
    return BoxSpace.from_table("R", schema, pattern, BasicStatistics(0, domains))


def volume_estimator(box):
    """Pretend density is exactly one tuple per grid cell."""
    return float(box.volume())


class TestSingleElementary:
    def test_no_merging_possible(self):
        space = numeric_space([("A", 100)])
        result = generate_candidates(
            space, [Box(((0, 10),))], volume_estimator, 10
        )
        assert result.enumerated_count == 0
        assert len(result.elementary_candidates) == 1
        assert result.elementary_candidates[0].transactions == 1

    def test_empty_elementary(self):
        space = numeric_space([("A", 100)])
        result = generate_candidates(space, [], volume_estimator, 10)
        assert result.all_candidates == []


class TestMerging:
    def test_adjacent_boxes_can_merge(self):
        space = numeric_space([("A", 100)])
        elementary = [Box(((0, 10),)), Box(((10, 20),))]
        result = generate_candidates(space, elementary, volume_estimator, 100)
        merged_boxes = [c.box for c in result.merged_candidates]
        assert Box(((0, 20),)) in merged_boxes
        merged = next(
            c for c in result.merged_candidates if c.box == Box(((0, 20),))
        )
        assert merged.covers == frozenset({0, 1})
        # 20 tuples / 100 per transaction = 1 < 1 + 1.
        assert merged.transactions == 1

    def test_pruning_rule_2_blocks_costly_merge(self):
        space = numeric_space([("A", 200)])
        # Far apart: a merged box spans 150 cells = 2 transactions at t=100,
        # while the two elementary boxes cost 1 each.
        elementary = [Box(((0, 10),)), Box(((140, 150),))]
        result = generate_candidates(space, elementary, volume_estimator, 100)
        assert result.merged_candidates == []
        assert result.enumerated_count >= 1

    def test_pruning_rule_1_minimality(self):
        space = numeric_space([("A", 100), ("B", 100)])
        # Two elementary boxes whose tight bound is [0,20)x[0,10); any
        # candidate with a looser extent must be pruned as non-minimal.
        elementary = [Box(((0, 10), (0, 10))), Box(((10, 20), (0, 10)))]
        result = generate_candidates(space, elementary, volume_estimator, 1000)
        for candidate in result.merged_candidates:
            assert candidate.box == Box(((0, 20), (0, 10)))

    def test_no_pruning_keeps_everything(self):
        space = numeric_space([("A", 200)])
        elementary = [Box(((0, 10),)), Box(((140, 150),))]
        pruned = generate_candidates(space, elementary, volume_estimator, 100)
        unpruned = generate_candidates(
            space, elementary, volume_estimator, 100, prune=False
        )
        assert unpruned.kept_count == unpruned.enumerated_count
        assert unpruned.kept_count > pruned.kept_count

    def test_enumeration_cap(self):
        space = numeric_space([("A", 1000)])
        elementary = [Box(((i * 10, i * 10 + 5),)) for i in range(20)]
        result = generate_candidates(
            space, elementary, volume_estimator, 100, enumeration_cap=10
        )
        assert result.capped
        # Elementary fallbacks still guarantee a feasible cover.
        assert len(result.elementary_candidates) == 20


class TestCategorical:
    def test_candidates_span_one_value_or_whole_domain(self):
        space = mixed_space(100, ["a", "b", "c", "d"])
        # Missing data at categorical positions 0 and 2 (same numeric range).
        elementary = [
            Box(((0, 10), (0, 1))),
            Box(((0, 10), (2, 3))),
        ]
        result = generate_candidates(space, elementary, volume_estimator, 1000)
        for candidate in result.merged_candidates:
            low, high = candidate.box.extents[1]
            assert high - low == 1 or (low, high) == (0, 4)
        # The whole-domain candidate (Figure 8's B3 analogue) must exist.
        assert any(
            candidate.box.extents[1] == (0, 4)
            for candidate in result.merged_candidates
        )

    def test_bound_categorical_never_spans_domain(self):
        space = mixed_space(100, ["a", "b", "c", "d"], bound_categorical=True)
        elementary = [
            Box(((0, 10), (0, 1))),
            Box(((0, 10), (2, 3))),
        ]
        result = generate_candidates(space, elementary, volume_estimator, 1000)
        for candidate in result.merged_candidates:
            low, high = candidate.box.extents[1]
            assert high - low == 1
