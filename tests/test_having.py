"""HAVING clause: parser, analyzer, engine, and end-to-end via PayLess."""

import pytest

from repro.errors import SqlAnalysisError, SqlSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse


class TestParsing:
    def test_having_parsed(self):
        statement = parse(
            "SELECT City, COUNT(*) FROM Station GROUP BY City "
            "HAVING COUNT(*) >= 2"
        )
        assert isinstance(statement.having, ast.ComparisonExpr)
        assert isinstance(statement.having.left, ast.AggregateTerm)

    def test_having_with_aggregate_arg(self):
        statement = parse(
            "SELECT City, AVG(Temperature) FROM Weather GROUP BY City "
            "HAVING AVG(Temperature) > 20 AND City != 'X'"
        )
        assert isinstance(statement.having, ast.AndExpr)

    def test_having_requires_group_by(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT COUNT(*) FROM T HAVING COUNT(*) > 1")

    def test_aggregate_term_only_in_having(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM T WHERE COUNT(*) > 1")


class TestEndToEnd:
    def test_having_filters_groups(self, mini_payless):
        # Alpha has 2 stations, Delta has 2, Beta and Gamma have 1 each.
        result = mini_payless.query(
            "SELECT City, COUNT(*) FROM Station GROUP BY City "
            "HAVING COUNT(*) >= 2"
        )
        cities = sorted(row[0] for row in result.rows)
        assert cities == ["Alpha", "Delta"]

    def test_having_on_avg(self, mini_payless):
        result = mini_payless.query(
            "SELECT StationID, AVG(Temperature) FROM Weather "
            "GROUP BY StationID HAVING AVG(Temperature) >= 40.0"
        )
        # Station s averages s*10 + 5.5; stations 4, 5, 6 qualify.
        assert sorted(row[0] for row in result.rows) == [4, 5, 6]

    def test_having_group_key_reference(self, mini_payless):
        result = mini_payless.query(
            "SELECT Country, COUNT(*) FROM Station GROUP BY Country "
            "HAVING Country = 'CountryB'"
        )
        assert result.rows == [("CountryB", 2)]

    def test_having_aggregate_must_be_selected(self, mini_payless):
        with pytest.raises(SqlAnalysisError):
            mini_payless.query(
                "SELECT City, COUNT(*) FROM Station GROUP BY City "
                "HAVING SUM(StationID) > 3"
            )

    def test_having_without_aggregates_rejected(self, mini_payless):
        with pytest.raises(SqlAnalysisError):
            mini_payless.query(
                "SELECT City FROM Station GROUP BY City HAVING City = 'A'"
            )
