"""Unit tests for the physical operators."""

import pytest

from repro.errors import ExecutionError
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.operators import (
    Aggregate,
    Relation,
    aggregate_rows,
    cross_product,
    distinct,
    filter_rows,
    hash_join,
    limit,
    project,
    scan,
    sort,
    union_all,
)
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T


@pytest.fixture
def stations():
    schema = Schema([Attribute("id", T.INT), Attribute("city", T.STRING)])
    return Table(
        "S", schema, [(1, "Alpha"), (2, "Alpha"), (3, "Beta")]
    )


@pytest.fixture
def weather():
    schema = Schema([Attribute("sid", T.INT), Attribute("temp", T.FLOAT)])
    return Table(
        "W", schema, [(1, 10.0), (1, 12.0), (2, 20.0), (9, 99.0)]
    )


class TestScanFilterProject:
    def test_scan(self, stations):
        relation = scan(stations)
        assert len(relation) == 3
        assert relation.layout.resolve("S", "city") == 1

    def test_scan_alias(self, stations):
        relation = scan(stations, alias="st")
        assert relation.layout.has("st", "id")

    def test_filter(self, stations):
        predicate = Comparison("=", ColumnRef("S", "city"), Literal("Alpha"))
        assert len(filter_rows(scan(stations), predicate)) == 2

    def test_project(self, stations):
        relation = project(scan(stations), [ColumnRef("S", "city")])
        assert relation.rows == [("Alpha",), ("Alpha",), ("Beta",)]


class TestJoins:
    def test_hash_join(self, stations, weather):
        joined = hash_join(
            scan(stations),
            scan(weather),
            [(ColumnRef("S", "id"), ColumnRef("W", "sid"))],
        )
        assert len(joined) == 3  # station 1 x2 rows, station 2 x1, 3 and 9 drop
        assert joined.layout.resolve("W", "temp") == 3

    def test_hash_join_builds_on_smaller_side(self, stations, weather):
        # Same result regardless of which side is larger.
        joined_a = hash_join(
            scan(stations), scan(weather),
            [(ColumnRef("S", "id"), ColumnRef("W", "sid"))],
        )
        big = Table("W2", weather.schema, list(weather.rows) * 5)
        joined_b = hash_join(
            scan(stations), scan(big, alias="W"),
            [(ColumnRef("S", "id"), ColumnRef("W", "sid"))],
        )
        assert len(joined_b) == 5 * len(joined_a)

    def test_empty_keys_is_cross(self, stations, weather):
        joined = hash_join(scan(stations), scan(weather), [])
        assert len(joined) == 12

    def test_cross_product(self, stations, weather):
        crossed = cross_product(scan(stations), scan(weather))
        assert len(crossed) == 12
        assert crossed.rows[0] == (1, "Alpha", 1, 10.0)


class TestSetOps:
    def test_distinct(self, stations):
        doubled = union_all([scan(stations), scan(stations)])
        assert len(distinct(doubled)) == 3

    def test_sort_asc_desc(self, weather):
        relation = sort(scan(weather), [ColumnRef("W", "temp")], [True])
        assert [row[1] for row in relation.rows] == [99.0, 20.0, 12.0, 10.0]

    def test_sort_multi_key(self, weather):
        relation = sort(
            scan(weather),
            [ColumnRef("W", "sid"), ColumnRef("W", "temp")],
            [False, True],
        )
        assert relation.rows[0] == (1, 12.0)

    def test_sort_flag_mismatch(self, weather):
        with pytest.raises(ExecutionError):
            sort(scan(weather), [ColumnRef("W", "sid")], [True, False])

    def test_limit(self, weather):
        assert len(limit(scan(weather), 2)) == 2

    def test_union_all_mismatch(self, stations, weather):
        narrow = project(scan(stations), [ColumnRef("S", "id")])
        with pytest.raises(ExecutionError):
            union_all([scan(weather), narrow])

    def test_union_all_empty(self):
        with pytest.raises(ExecutionError):
            union_all([])


class TestAggregation:
    def test_group_by(self, weather):
        relation = aggregate_rows(
            scan(weather),
            [ColumnRef("W", "sid")],
            [Aggregate("AVG", ColumnRef("W", "temp"), "avg_temp")],
        )
        by_sid = {row[0]: row[1] for row in relation.rows}
        assert by_sid[1] == pytest.approx(11.0)
        assert by_sid[2] == pytest.approx(20.0)

    def test_count_star(self, weather):
        relation = aggregate_rows(
            scan(weather), [], [Aggregate("COUNT", None, "n")]
        )
        assert relation.rows == [(4,)]

    def test_global_aggregate_on_empty_input(self, weather):
        empty = filter_rows(
            scan(weather), Comparison("=", Literal(1), Literal(2))
        )
        relation = aggregate_rows(
            empty,
            [],
            [
                Aggregate("COUNT", None, "n"),
                Aggregate("SUM", ColumnRef("W", "temp"), "s"),
            ],
        )
        assert relation.rows == [(0, None)]

    def test_min_max_sum(self, weather):
        relation = aggregate_rows(
            scan(weather),
            [],
            [
                Aggregate("MIN", ColumnRef("W", "temp"), "lo"),
                Aggregate("MAX", ColumnRef("W", "temp"), "hi"),
                Aggregate("SUM", ColumnRef("W", "sid"), "total"),
            ],
        )
        assert relation.rows == [(10.0, 99.0, 13)]

    def test_unsupported_aggregate(self):
        with pytest.raises(ExecutionError):
            Aggregate("MEDIAN", None, "m")

    def test_sum_requires_argument(self):
        with pytest.raises(ExecutionError):
            Aggregate("SUM", None, "s")
