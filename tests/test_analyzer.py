"""Unit tests for the SQL semantic analyzer."""

import pytest

from repro.errors import SqlAnalysisError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType as T
from repro.sqlparser.analyzer import compile_sql


class Provider:
    """A minimal SchemaProvider for analyzer tests."""

    def __init__(self):
        self.schemas = {
            "station": Schema(
                [
                    Attribute("Country", T.STRING),
                    Attribute("StationID", T.INT),
                    Attribute("City", T.STRING),
                ]
            ),
            "weather": Schema(
                [
                    Attribute("Country", T.STRING),
                    Attribute("StationID", T.INT),
                    Attribute("Date", T.DATE),
                    Attribute("Temperature", T.FLOAT),
                ]
            ),
        }

    def has_table(self, name):
        return name.lower() in self.schemas

    def schema_of(self, name):
        return self.schemas[name.lower()]


@pytest.fixture
def provider():
    return Provider()


class TestResolution:
    def test_tables_resolved(self, provider):
        query = compile_sql("SELECT * FROM Station, Weather", provider)
        assert query.tables == ["Station", "Weather"]

    def test_unknown_table(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql("SELECT * FROM Nope", provider)

    def test_unqualified_column_resolved(self, provider):
        query = compile_sql(
            "SELECT City FROM Station WHERE City = 'X'", provider
        )
        assert query.outputs[0].column.table == "Station"

    def test_ambiguous_column(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql(
                "SELECT Country FROM Station, Weather", provider
            )

    def test_self_join_rejected(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql("SELECT * FROM Station, Station", provider)

    def test_parameter_count_mismatch(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql(
                "SELECT * FROM Station WHERE City = ?", provider, ()
            )


class TestConstraints:
    def test_point_constraint(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE City = 'Alpha'", provider
        )
        constraint = query.constraints_for("Station")[0]
        assert constraint.is_point and constraint.value == "Alpha"

    def test_parameter_substitution(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE City = ?", provider, ("Beta",)
        )
        assert query.constraints_for("Station")[0].value == "Beta"

    def test_range_normalization_half_open(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE Date >= 5 AND Date <= 9", provider
        )
        constraints = query.constraints_for("Weather")
        lows = [c.low for c in constraints if c.low is not None]
        highs = [c.high for c in constraints if c.high is not None]
        assert lows == [5]
        assert highs == [10]  # inclusive 9 becomes half-open 10

    def test_strict_inequalities(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE Date > 5 AND Date < 9", provider
        )
        constraints = query.constraints_for("Weather")
        assert {(c.low, c.high) for c in constraints} == {(6, None), (None, 9)}

    def test_between(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE Date BETWEEN 3 AND 7", provider
        )
        constraint = query.constraints_for("Weather")[0]
        assert (constraint.low, constraint.high) == (3, 8)

    def test_reversed_comparison_flipped(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE 5 <= Date", provider
        )
        constraint = query.constraints_for("Weather")[0]
        assert constraint.low == 5

    def test_float_range_stays_residual(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE Temperature >= 20.5", provider
        )
        assert not query.constraints_for("Weather")
        assert len(query.residuals_for("Weather")) == 1

    def test_not_equal_stays_residual(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE City != 'Alpha'", provider
        )
        assert not query.constraints_for("Station")
        assert len(query.residuals_for("Station")) == 1

    def test_in_becomes_point_set(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE City IN ('A', 'B')", provider
        )
        constraint = query.constraints_for("Station")[0]
        assert constraint.is_set and constraint.values == frozenset({"A", "B"})

    def test_or_same_column_becomes_point_set(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE City = 'A' OR City = 'B'", provider
        )
        constraint = query.constraints_for("Station")[0]
        assert constraint.is_set

    def test_or_across_columns_rejected(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql(
                "SELECT * FROM Station WHERE City = 'A' OR Country = 'B'",
                provider,
            )

    def test_not_predicate_residual(self, provider):
        query = compile_sql(
            "SELECT * FROM Station WHERE NOT City = 'A'", provider
        )
        assert len(query.residuals_for("Station")) == 1


class TestJoins:
    def test_equi_join_extracted(self, provider):
        query = compile_sql(
            "SELECT * FROM Station, Weather "
            "WHERE Station.StationID = Weather.StationID",
            provider,
        )
        assert len(query.joins) == 1
        assert set(query.joins[0].tables()) == {"Station", "Weather"}

    def test_chained_equality_join_plus_constraints(self, provider):
        query = compile_sql(
            "SELECT * FROM Station, Weather "
            "WHERE Station.Country = Weather.Country = ?",
            provider,
            ("CountryA",),
        )
        assert len(query.joins) == 1
        assert query.constraints_for("Station")[0].value == "CountryA"
        assert query.constraints_for("Weather")[0].value == "CountryA"

    def test_non_equi_cross_table_rejected(self, provider):
        with pytest.raises(SqlAnalysisError):
            compile_sql(
                "SELECT * FROM Station, Weather "
                "WHERE Station.StationID < Weather.StationID",
                provider,
            )

    def test_same_table_comparison_residual(self, provider):
        query = compile_sql(
            "SELECT * FROM Weather WHERE StationID = Date", provider
        )
        assert len(query.residuals_for("Weather")) == 1

    def test_join_components(self, provider):
        query = compile_sql(
            "SELECT * FROM Station, Weather", provider
        )
        components = query.join_components()
        assert len(components) == 2


class TestOutputs:
    def test_aggregate_alias_defaults(self, provider):
        query = compile_sql(
            "SELECT AVG(Temperature) FROM Weather", provider
        )
        assert query.outputs[0].aggregate.alias == "avg_temperature"

    def test_count_star_alias(self, provider):
        query = compile_sql("SELECT COUNT(*) FROM Weather", provider)
        assert query.outputs[0].aggregate.alias == "count_all"

    def test_group_by_resolved(self, provider):
        query = compile_sql(
            "SELECT City, COUNT(*) FROM Station GROUP BY City", provider
        )
        assert query.group_by[0].table == "Station"

    def test_order_by_and_limit(self, provider):
        query = compile_sql(
            "SELECT * FROM Station ORDER BY City DESC LIMIT 2", provider
        )
        assert query.order_descending == [True]
        assert query.limit == 2
