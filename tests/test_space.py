"""Unit tests for box spaces: constraint ↔ box conversion."""

import pytest

from repro.errors import MarketError, StatisticsError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace, Dimension


@pytest.fixture
def space():
    """Country (categorical: CA < DE < US), Rank numeric [1, 100]."""
    schema = Schema(
        [
            Attribute("Country", T.STRING),
            Attribute("Rank", T.INT),
            Attribute("Payload", T.FLOAT),
        ]
    )
    pattern = BindingPattern(
        table="R",
        modes={"Country": AccessMode.FREE, "Rank": AccessMode.FREE},
    )
    statistics = BasicStatistics(
        cardinality=300,
        domains={
            "country": Domain.categorical(["US", "CA", "DE"]),
            "rank": Domain.numeric(1, 100),
        },
    )
    return BoxSpace.from_table("R", schema, pattern, statistics)


class TestConstruction:
    def test_dimensions(self, space):
        assert space.dimensionality == 2
        country, rank = space.dimensions
        assert country.is_categorical and country.values == ("CA", "DE", "US")
        assert (rank.low, rank.high) == (1, 101)

    def test_float_attribute_skipped(self, space):
        assert not space.has_dimension("Payload")

    def test_full_box(self, space):
        assert space.full_box == Box(((0, 3), (1, 101)))

    def test_missing_domain_raises(self):
        schema = Schema([Attribute("A", T.INT)])
        pattern = BindingPattern(table="R", modes={"A": AccessMode.FREE})
        with pytest.raises(StatisticsError):
            BoxSpace.from_table(
                "R", schema, pattern, BasicStatistics(10, {})
            )


class TestConstraintsToBoxes:
    def test_unconstrained_is_full_box(self, space):
        assert space.boxes_for_constraints([]) == [space.full_box]

    def test_point_categorical(self, space):
        boxes = space.boxes_for_constraints(
            [AttributeConstraint("Country", value="US")]
        )
        assert boxes == [Box(((2, 3), (1, 101)))]

    def test_point_off_domain_yields_empty(self, space):
        assert space.boxes_for_constraints(
            [AttributeConstraint("Country", value="FR")]
        ) == []

    def test_range_numeric_clipped(self, space):
        boxes = space.boxes_for_constraints(
            [AttributeConstraint("Rank", low=50, high=500)]
        )
        assert boxes == [Box(((0, 3), (50, 101)))]

    def test_empty_range_after_clip(self, space):
        assert space.boxes_for_constraints(
            [AttributeConstraint("Rank", low=500)]
        ) == []

    def test_point_set_fans_out(self, space):
        boxes = space.boxes_for_constraints(
            [AttributeConstraint("Country", values=frozenset({"US", "CA"}))]
        )
        assert len(boxes) == 2
        assert all(box.extents[1] == (1, 101) for box in boxes)

    def test_two_set_constraints_cross_product(self, space):
        boxes = space.boxes_for_constraints(
            [
                AttributeConstraint("Country", values=frozenset({"US", "CA"})),
                AttributeConstraint("Rank", values=frozenset({3, 7})),
            ]
        )
        assert len(boxes) == 4

    def test_conflicting_constraints_empty(self, space):
        assert space.boxes_for_constraints(
            [
                AttributeConstraint("Rank", low=10, high=20),
                AttributeConstraint("Rank", low=30, high=40),
            ]
        ) == []

    def test_non_dimension_constraint_ignored(self, space):
        boxes = space.boxes_for_constraints(
            [AttributeConstraint("Payload", value=3.0)]
        )
        assert boxes == [space.full_box]


class TestBoxesToConstraints:
    def test_round_trip_point_and_range(self, space):
        box = Box(((2, 3), (10, 20)))
        constraints = space.constraints_for_box(box)
        by_name = {c.attribute: c for c in constraints}
        assert by_name["Country"].value == "US"
        assert (by_name["Rank"].low, by_name["Rank"].high) == (10, 20)

    def test_full_extents_omitted(self, space):
        assert space.constraints_for_box(space.full_box) == ()

    def test_width_one_numeric_becomes_point(self, space):
        constraints = space.constraints_for_box(Box(((0, 3), (5, 6))))
        assert constraints[0].value == 5

    def test_partial_categorical_rejected(self, space):
        with pytest.raises(MarketError):
            space.constraints_for_box(Box(((0, 2), (1, 101))))

    def test_expressible(self, space):
        assert space.expressible(space.full_box)
        assert space.expressible(Box(((1, 2), (1, 101))))
        assert not space.expressible(Box(((0, 2), (1, 101))))


class TestBoundDimensions:
    def _bound_space(self, categorical_bound):
        schema = Schema(
            [Attribute("K", T.STRING if categorical_bound else T.INT)]
        )
        pattern = BindingPattern(table="R", modes={"K": AccessMode.BOUND})
        domains = (
            {"k": Domain.categorical(["a", "b"])}
            if categorical_bound
            else {"k": Domain.numeric(0, 9)}
        )
        return BoxSpace.from_table(
            "R", schema, pattern, BasicStatistics(10, domains)
        )

    def test_bound_numeric_full_extent_gets_explicit_range(self):
        space = self._bound_space(categorical_bound=False)
        constraints = space.constraints_for_box(space.full_box)
        assert constraints[0].low == 0 and constraints[0].high == 10

    def test_bound_categorical_full_extent_inexpressible(self):
        space = self._bound_space(categorical_bound=True)
        assert not space.expressible(space.full_box)
        with pytest.raises(MarketError):
            space.constraints_for_box(space.full_box)


class TestRowPoints:
    def test_row_point(self, space):
        schema = Schema(
            [
                Attribute("Country", T.STRING),
                Attribute("Rank", T.INT),
                Attribute("Payload", T.FLOAT),
            ]
        )
        assert space.row_point(("US", 42, 1.0), schema) == (2, 42)
        assert space.row_point(("FR", 42, 1.0), schema) is None
        assert space.row_point(("US", 4200, 1.0), schema) is None

    def test_dimension_value_round_trip(self, space):
        country = space.dimensions[0]
        for value in ("CA", "DE", "US"):
            assert country.value_at(country.index_of(value)) == value
