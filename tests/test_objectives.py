"""The unified configuration surface: PlanObjective / ServiceTier /
QueryOptions, plus the deprecation forwarders off the old scattered
``PayLess(...)`` keywords.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.objectives import (
    MIN_DOLLARS,
    SERVICE_TIERS,
    PlanObjective,
    QueryOptions,
    ServiceTier,
)
from repro.core.optimizer import OptimizerOptions
from repro.errors import PlanningError
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig
from repro.testing import registered_payless, tiny_weather_market


class TestPlanObjective:
    def test_default_is_min_dollars(self):
        assert PlanObjective().is_default
        assert PlanObjective.min_dollars() is MIN_DOLLARS
        assert not PlanObjective.min_latency().is_default

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="fastest"),
            dict(kind="dollars_under_latency_ms"),  # missing bound
            dict(kind="dollars_under_latency_ms", latency_bound_ms=0),
            dict(kind="dollars_under_latency_ms", latency_bound_ms=-5),
            dict(kind="latency_under_dollars"),  # missing bound
            dict(kind="latency_under_dollars", dollar_bound=-1),
            dict(kind="min_latency", latency_bound_ms=100),  # wrong kind
            dict(kind="min_dollars", dollar_bound=5),  # wrong kind
            dict(kind="weighted", dollar_weight=-1),
            dict(kind="weighted", dollar_weight=0, latency_weight_per_ms=0),
        ],
    )
    def test_invalid_combinations_raise(self, bad):
        with pytest.raises(PlanningError):
            PlanObjective(**bad)

    def test_parse_round_trips_every_kind(self):
        assert PlanObjective.parse("min_dollars") is MIN_DOLLARS
        assert PlanObjective.parse("min_latency").kind == "min_latency"
        bounded = PlanObjective.parse("dollars_under_latency_ms:500")
        assert bounded.latency_bound_ms == 500.0
        budget = PlanObjective.parse("latency_under_dollars:12.5")
        assert budget.dollar_bound == 12.5
        blended = PlanObjective.parse("weighted:0.25")
        assert blended.latency_weight_per_ms == 0.25
        assert PlanObjective.parse("weighted").latency_weight_per_ms == 0.01

    @pytest.mark.parametrize(
        "text",
        ["sharpest", "dollars_under_latency_ms", "latency_under_dollars:abc"],
    )
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(PlanningError):
            PlanObjective.parse(text)

    def test_fingerprints_distinguish_objectives(self):
        objectives = [
            MIN_DOLLARS,
            PlanObjective.min_latency(),
            PlanObjective.dollars_under_latency_ms(500),
            PlanObjective.dollars_under_latency_ms(501),
            PlanObjective.latency_under_dollars(500),
            PlanObjective.weighted(),
            PlanObjective.weighted(latency_weight_per_ms=0.02),
        ]
        fingerprints = {o.fingerprint() for o in objectives}
        assert len(fingerprints) == len(objectives)

    def test_describe_is_human_readable(self):
        assert "500" in PlanObjective.dollars_under_latency_ms(500).describe()
        assert "$" in PlanObjective.latency_under_dollars(3).describe()
        assert str(PlanObjective.min_latency()) == "min_latency"


class TestServiceTier:
    def test_builtin_tiers(self):
        assert set(SERVICE_TIERS) == {"economy", "interactive", "realtime"}
        assert SERVICE_TIERS["economy"].objective is MIN_DOLLARS
        assert SERVICE_TIERS["realtime"].objective.kind == "min_latency"
        interactive = SERVICE_TIERS["interactive"].objective
        assert interactive.kind == "dollars_under_latency_ms"
        assert interactive.latency_bound_ms == 2000.0

    def test_named_lookup_is_case_insensitive(self):
        assert ServiceTier.named("Realtime") is SERVICE_TIERS["realtime"]
        with pytest.raises(PlanningError):
            ServiceTier.named("platinum")

    def test_tier_validation(self):
        with pytest.raises(PlanningError):
            ServiceTier("", MIN_DOLLARS)
        with pytest.raises(PlanningError):
            ServiceTier("custom", "min_latency")  # must be a PlanObjective


class TestQueryOptions:
    def test_optimizer_options_mapping(self):
        options = QueryOptions(
            use_sqr=False,
            cost_metric="calls",
            max_bind_attrs=1,
            prune=False,
            plan_cache_size=7,
            objective=PlanObjective.min_latency(),
        )
        derived = options.optimizer_options()
        assert derived.use_sqr is False
        assert derived.objective == "calls"
        assert derived.max_bind_attrs == 1
        assert derived.prune is False
        assert derived.plan_cache_size == 7
        assert derived.plan_objective.kind == "min_latency"

    def test_transport_config_defaults_to_none(self):
        assert QueryOptions().transport_config() is None

    def test_transport_convenience_fields_overlay(self):
        options = QueryOptions(
            fault_rate=0.25, fault_seed=11, max_retries=2, partial_results=True
        )
        config = options.transport_config()
        assert config is not None
        assert config.max_retries == 2
        assert config.partial_results is True
        assert config.faults is not None

    def test_explicit_transport_passes_through(self):
        transport = TransportConfig(max_retries=9)
        options = QueryOptions(transport=transport)
        assert options.transport_config() is transport
        overlaid = QueryOptions(transport=transport, max_retries=1)
        assert overlaid.transport_config().max_retries == 1

    def test_validation_fails_fast(self):
        with pytest.raises(PlanningError):
            QueryOptions(objective="min_latency")  # must be a PlanObjective
        with pytest.raises(PlanningError):
            QueryOptions(fault_rate=1.5)

    def test_from_optimizer_options_round_trip(self):
        legacy = OptimizerOptions(use_sqr=False, objective="calls", prune=False)
        adapted = QueryOptions.from_optimizer_options(legacy)
        assert adapted.use_sqr is False
        assert adapted.cost_metric == "calls"
        assert adapted.prune is False
        assert adapted.optimizer_options() == legacy

    def test_with_objective(self):
        base = QueryOptions()
        fast = base.with_objective(PlanObjective.min_latency())
        assert fast.objective.kind == "min_latency"
        assert base.objective is MIN_DOLLARS  # frozen original untouched


class TestDeprecationForwarders:
    """Old keyword spellings keep working, but warn at the call site."""

    def _payless(self, **kwargs):
        market = tiny_weather_market()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            payless = registered_payless(market, **kwargs)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        return payless, deprecations

    def test_optimizer_options_still_accepted(self):
        payless, warned = self._payless(
            options=OptimizerOptions(use_sqr=False)
        )
        assert warned, "OptimizerOptions should trigger a DeprecationWarning"
        assert payless.query_options.use_sqr is False
        assert payless.options.use_sqr is False

    def test_transport_kwarg_still_accepted(self):
        transport = TransportConfig(max_retries=2)
        payless, warned = self._payless(transport=transport)
        assert warned
        assert payless.transport_config.max_retries == 2

    def test_engine_kwarg_still_accepted(self):
        payless, warned = self._payless(engine="reference")
        assert warned
        assert payless.query_options.engine == "reference"

    def test_prune_bounding_boxes_kwarg_still_accepted(self):
        payless, warned = self._payless(prune_bounding_boxes=False)
        assert warned
        assert payless.query_options.prune_bounding_boxes is False
        assert payless.rewriter.prune is False

    def test_max_concurrent_calls_kwarg_still_accepted(self):
        payless, warned = self._payless(max_concurrent_calls=3)
        assert warned
        assert payless.query_options.max_concurrent_calls == 3

    def test_query_options_path_is_warning_free(self):
        payless, warned = self._payless(
            options=QueryOptions(use_sqr=False, engine="reference")
        )
        assert not warned
        assert payless.query_options.engine == "reference"

    def test_warning_points_at_the_caller(self):
        market = tiny_weather_market()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.PayLess(market, engine="reference")
        warning = next(
            w for w in caught if issubclass(w.category, DeprecationWarning)
        )
        assert warning.filename == __file__


class TestPackageExports:
    @pytest.mark.parametrize(
        "name",
        [
            "PlanObjective",
            "QueryOptions",
            "ServiceTier",
            "SERVICE_TIERS",
            "InfeasibleObjectiveError",
            "LatencyModel",
            "DEFAULT_LATENCY",
            "INSTANT",
        ],
    )
    def test_new_names_exported(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__
