"""Differential parity: the vectorized engine vs the row-at-a-time oracle.

The vectorized engine (``repro.relational.operators``: columnar batches +
compiled expression kernels) and the reference engine
(``repro.relational.reference``: the original interpreter) promise
*identical* results — row order included — for every operator, every NULL
edge case, and every full query.  This suite holds them to it three ways:

* **hypothesis properties** run each operator on random (NULL-heavy)
  relations through both engines and assert exact equality;
* **explicit NULL-semantics cases** pin the SQL rules both engines must
  share: NULL join keys never match, ``COUNT(col)`` counts non-NULL only,
  SUM/AVG/MIN/MAX skip NULLs, sort is NULLS LAST in both directions;
* **full-query parity** replays the weather and TPC-H workload sessions
  through two PayLess installations differing only in ``engine=``, with
  and without chaos-seed fault injection, and asserts identical answers
  and identical spend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.figures import BenchProfile, make_instances, make_workload
from repro.bench.harness import build_system
from repro.errors import ExecutionError
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig
from repro.obs.metrics import MetricsRegistry
from repro.relational import operators as vec
from repro.relational import reference as ref
from repro.relational.engine import ExecutionConfig
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
    RowLayout,
)
from repro.relational.operators import Aggregate, Relation
from repro.workloads.weather import WeatherConfig

# ---------------------------------------------------------------------------
# Strategies: typed columns so comparisons never mix strings with numbers
# (that would be a schema error upstream, not an engine behaviour).
# ---------------------------------------------------------------------------

INT = st.one_of(st.none(), st.integers(-5, 5))
FLOAT = st.one_of(
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-100, max_value=100),
)
TEXT = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd", "e"]))

COLUMN_TYPES = {"int": INT, "float": FLOAT, "str": TEXT}
NUMERIC = ("int", "float")


@st.composite
def typed_relation(draw, min_cols=2, max_cols=4, max_rows=30, table="t"):
    """A relation with per-column value types (NULLs mixed in everywhere)."""
    n_cols = draw(st.integers(min_cols, max_cols))
    types = [
        draw(st.sampled_from(["int", "int", "float", "str"]))
        for __ in range(n_cols)
    ]
    n_rows = draw(st.integers(0, max_rows))
    rows = [
        tuple(draw(COLUMN_TYPES[t]) for t in types) for __ in range(n_rows)
    ]
    layout = RowLayout([(table, f"c{i}") for i in range(n_cols)])
    return Relation(layout, rows), types, table


def _col(table, i):
    return ColumnRef(table, f"c{i}")


@st.composite
def predicate_for(draw, types, table):
    """A random predicate over columns of the given types."""

    def leaf():
        i = draw(st.integers(0, len(types) - 1))
        kind = draw(st.sampled_from(["cmp_lit", "cmp_col", "inlist", "arith"]))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        if kind == "inlist":
            values = draw(
                st.frozensets(COLUMN_TYPES[types[i]].filter(lambda v: v is not None),
                              min_size=1, max_size=3)
            )
            return InList(_col(table, i), values)
        if kind == "arith" and types[i] in NUMERIC:
            arith_op = draw(st.sampled_from(["+", "-", "*"]))
            bound = draw(st.integers(-5, 5))
            return Comparison(
                op,
                Arithmetic(arith_op, _col(table, i), Literal(draw(st.integers(1, 3)))),
                Literal(bound),
            )
        if kind == "cmp_col":
            same = [
                j
                for j, t in enumerate(types)
                if (t in NUMERIC) == (types[i] in NUMERIC)
            ]
            j = draw(st.sampled_from(same))
            return Comparison(op, _col(table, i), _col(table, j))
        value = draw(COLUMN_TYPES[types[i]].filter(lambda v: v is not None))
        return Comparison(op, _col(table, i), Literal(value))

    shape = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if shape == "leaf":
        return leaf()
    if shape == "not":
        return Not(leaf())
    parts = tuple(leaf() for __ in range(draw(st.integers(2, 3))))
    return And(parts) if shape == "and" else Or(parts)


def assert_identical(got: Relation, want: Relation) -> None:
    """Exact parity: layout, row order, and every value (incl. None)."""
    assert got.layout.columns == want.layout.columns
    assert got.rows == want.rows


PROPERTY = settings(max_examples=60, deadline=None)


# ---------------------------------------------------------------------------
# Operator properties
# ---------------------------------------------------------------------------


class TestOperatorParity:
    @PROPERTY
    @given(data=st.data())
    def test_filter_rows(self, data):
        relation, types, table = data.draw(typed_relation())
        predicate = data.draw(predicate_for(types, table))
        assert_identical(
            vec.filter_rows(relation, predicate),
            ref.filter_rows(relation, predicate),
        )

    @PROPERTY
    @given(data=st.data())
    def test_project(self, data):
        relation, types, table = data.draw(typed_relation())
        refs = data.draw(
            st.lists(
                st.integers(0, len(types) - 1), min_size=1, max_size=4
            ).map(lambda ps: [_col(table, p) for p in ps])
        )
        assert_identical(vec.project(relation, refs), ref.project(relation, refs))

    @PROPERTY
    @given(data=st.data())
    def test_hash_join(self, data):
        left, left_types, __ = data.draw(typed_relation(table="l"))
        right, right_types, __ = data.draw(typed_relation(table="r"))
        li = data.draw(st.integers(0, len(left_types) - 1))
        candidates = [
            j
            for j, t in enumerate(right_types)
            if (t in NUMERIC) == (left_types[li] in NUMERIC)
        ]
        if not candidates:
            return
        ri = data.draw(st.sampled_from(candidates))
        keys = [(_col("l", li), _col("r", ri))]
        assert_identical(
            vec.hash_join(left, right, keys), ref.hash_join(left, right, keys)
        )

    @PROPERTY
    @given(data=st.data())
    def test_cross_product(self, data):
        left, __, __ = data.draw(typed_relation(max_rows=8, table="l"))
        right, __, __ = data.draw(typed_relation(max_rows=8, table="r"))
        assert_identical(
            vec.cross_product(left, right), ref.cross_product(left, right)
        )

    @PROPERTY
    @given(data=st.data())
    def test_distinct(self, data):
        relation, __, __ = data.draw(typed_relation())
        assert_identical(vec.distinct(relation), ref.distinct(relation))

    @PROPERTY
    @given(data=st.data())
    def test_sort_nulls_last(self, data):
        relation, types, table = data.draw(typed_relation())
        n_keys = data.draw(st.integers(1, min(2, len(types))))
        positions = data.draw(
            st.lists(
                st.integers(0, len(types) - 1),
                min_size=n_keys,
                max_size=n_keys,
                unique=True,
            )
        )
        refs = [_col(table, p) for p in positions]
        flags = [data.draw(st.booleans()) for __ in positions]
        got = vec.sort(relation, refs, flags)
        want = ref.sort(relation, refs, flags)
        assert_identical(got, want)
        # NULLS LAST on the primary key: once a NULL appears, only NULLs follow.
        primary = relation.layout.resolve(table, f"c{positions[0]}")
        values = [row[primary] for row in got.rows]
        if None in values:
            first_null = values.index(None)
            assert all(v is None for v in values[first_null:])

    @PROPERTY
    @given(data=st.data())
    def test_limit(self, data):
        relation, __, __ = data.draw(typed_relation())
        count = data.draw(st.integers(0, 40))
        assert_identical(
            vec.limit(relation, count), ref.limit(relation, count)
        )

    @PROPERTY
    @given(data=st.data())
    def test_union_all(self, data):
        first, types, table = data.draw(typed_relation())
        n_rows = data.draw(st.integers(0, 10))
        second = Relation(
            first.layout,
            [
                tuple(data.draw(COLUMN_TYPES[t]) for t in types)
                for __ in range(n_rows)
            ],
        )
        assert_identical(
            vec.union_all([first, second]), ref.union_all([first, second])
        )

    @PROPERTY
    @given(data=st.data())
    def test_aggregate_rows(self, data):
        relation, types, table = data.draw(typed_relation())
        group_by = [
            _col(table, i)
            for i in data.draw(
                st.lists(st.integers(0, len(types) - 1), max_size=2, unique=True)
            )
        ]
        numeric = [i for i, t in enumerate(types) if t in NUMERIC]
        aggregates = [Aggregate("COUNT", None, "n")]
        any_col = data.draw(st.integers(0, len(types) - 1))
        aggregates.append(Aggregate("COUNT", _col(table, any_col), "n_col"))
        aggregates.append(
            Aggregate(
                data.draw(st.sampled_from(["MIN", "MAX"])),
                _col(table, any_col),
                "extremum",
            )
        )
        if numeric:
            i = data.draw(st.sampled_from(numeric))
            func = data.draw(st.sampled_from(["SUM", "AVG"]))
            arg = data.draw(
                st.sampled_from(
                    [
                        _col(table, i),
                        Arithmetic("*", _col(table, i), Literal(2)),
                    ]
                )
            )
            aggregates.append(Aggregate(func, arg, "agg"))
        assert_identical(
            vec.aggregate_rows(relation, group_by, aggregates),
            ref.aggregate_rows(relation, group_by, aggregates),
        )


# ---------------------------------------------------------------------------
# Pinned NULL semantics (identical in both engines)
# ---------------------------------------------------------------------------

ENGINES = [vec, ref]


@pytest.fixture(params=ENGINES, ids=["vectorized", "reference"])
def ops(request):
    return request.param


def _relation(columns, rows, table="t"):
    return Relation(RowLayout([(table, c) for c in columns]), rows)


class TestNullSemantics:
    def test_null_join_keys_never_match(self, ops):
        left = _relation(["k", "a"], [(1, "x"), (None, "y"), (2, "z")], "l")
        right = _relation(["k", "b"], [(1, 10), (None, 20), (3, 30)], "r")
        joined = ops.hash_join(
            left, right, [(ColumnRef("l", "k"), ColumnRef("r", "k"))]
        )
        assert joined.rows == [(1, "x", 1, 10)]

    def test_count_star_vs_count_column(self, ops):
        relation = _relation(["v"], [(1,), (None,), (3,), (None,)])
        result = ops.aggregate_rows(
            relation,
            [],
            [
                Aggregate("COUNT", None, "star"),
                Aggregate("COUNT", ColumnRef("t", "v"), "col"),
            ],
        )
        assert result.rows == [(4, 2)]

    def test_sum_avg_min_max_skip_nulls(self, ops):
        relation = _relation(["v"], [(2,), (None,), (4,)])
        result = ops.aggregate_rows(
            relation,
            [],
            [
                Aggregate("SUM", ColumnRef("t", "v"), "s"),
                Aggregate("AVG", ColumnRef("t", "v"), "a"),
                Aggregate("MIN", ColumnRef("t", "v"), "lo"),
                Aggregate("MAX", ColumnRef("t", "v"), "hi"),
            ],
        )
        assert result.rows == [(6, 3.0, 2, 4)]

    def test_all_null_aggregates_are_null(self, ops):
        relation = _relation(["v"], [(None,), (None,)])
        result = ops.aggregate_rows(
            relation,
            [],
            [
                Aggregate("COUNT", ColumnRef("t", "v"), "n"),
                Aggregate("SUM", ColumnRef("t", "v"), "s"),
                Aggregate("MIN", ColumnRef("t", "v"), "lo"),
            ],
        )
        assert result.rows == [(0, None, None)]

    def test_grouped_null_skipping(self, ops):
        relation = _relation(
            ["g", "v"], [("a", 1), ("a", None), ("b", None), ("b", 5)]
        )
        result = ops.aggregate_rows(
            relation,
            [ColumnRef("t", "g")],
            [
                Aggregate("COUNT", ColumnRef("t", "v"), "n"),
                Aggregate("SUM", ColumnRef("t", "v"), "s"),
            ],
        )
        assert result.rows == [("a", 1, 1), ("b", 1, 5)]

    def test_sort_nulls_last_ascending(self, ops):
        relation = _relation(["v"], [(3,), (None,), (1,), (None,), (2,)])
        result = ops.sort(relation, [ColumnRef("t", "v")])
        assert [r[0] for r in result.rows] == [1, 2, 3, None, None]

    def test_sort_nulls_last_descending(self, ops):
        relation = _relation(["v"], [(3,), (None,), (1,), (None,), (2,)])
        result = ops.sort(relation, [ColumnRef("t", "v")], [True])
        assert [r[0] for r in result.rows] == [3, 2, 1, None, None]

    def test_sort_does_not_crash_on_mixed_none(self, ops):
        # The pre-fix sort raised TypeError comparing None with a value.
        relation = _relation(["a", "b"], [(None, 1), (2, None), (1, 3)])
        result = ops.sort(
            relation, [ColumnRef("t", "a"), ColumnRef("t", "b")], [False, True]
        )
        assert [r[0] for r in result.rows] == [1, 2, None]

    def test_null_comparison_filters_out(self, ops):
        relation = _relation(["v"], [(1,), (None,), (3,)])
        kept = ops.filter_rows(
            relation, Comparison(">", ColumnRef("t", "v"), Literal(0))
        )
        assert kept.rows == [(1,), (3,)]

    def test_group_by_treats_null_as_one_group(self, ops):
        relation = _relation(["g"], [(None,), ("a",), (None,)])
        result = ops.aggregate_rows(
            relation, [ColumnRef("t", "g")], [Aggregate("COUNT", None, "n")]
        )
        assert result.rows == [(None, 2), ("a", 1)]


# ---------------------------------------------------------------------------
# Full-query parity on the benchmark workloads (with and without chaos)
# ---------------------------------------------------------------------------

SMALL = BenchProfile(
    weather_q=2,
    tpch_q=1,
    weather=WeatherConfig(
        countries=2, stations_per_country=4, cities_per_country=3, days=15
    ),
    tpch_scale=0.5,
    tuples_per_transaction=20,
)

CHAOS_SEEDS = (7, 23, 101)


def _replay(workload, engine, transport=None):
    data = make_workload(workload, SMALL)
    q = SMALL.weather_q if workload == "real" else SMALL.tpch_q
    instances = make_instances(workload, data, q, SMALL)
    payless, __ = build_system(
        "payless",
        data,
        transport=transport,
        metrics=MetricsRegistry(),
        engine=engine,
    )
    results = [payless.query(i.sql, i.params) for i in instances]
    return payless, results


@pytest.mark.parametrize("workload", ["real", "tpch"])
def test_full_query_parity(workload):
    """Both engines answer the whole session identically — rows *and* money."""
    vec_payless, vec_results = _replay(workload, "vectorized")
    ref_payless, ref_results = _replay(workload, "reference")
    assert len(vec_results) == len(ref_results)
    for got, want in zip(vec_results, ref_results):
        assert got.rows == want.rows
        assert got.stats.transactions == want.stats.transactions
    assert vec_payless.total_price == ref_payless.total_price


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_full_query_parity_under_chaos(seed):
    """Fault injection (same seed → same faults) never splits the engines."""
    transport = TransportConfig(
        faults=FaultPolicy.uniform(seed=seed, rate=0.15)
    )
    __, vec_results = _replay("real", "vectorized", transport)
    __, ref_results = _replay("real", "reference", transport)
    for got, want in zip(vec_results, ref_results):
        assert got.rows == want.rows
        assert got.stats.transactions == want.stats.transactions


def test_unknown_engine_rejected():
    with pytest.raises(ExecutionError):
        ExecutionConfig(engine="gpu")


def test_explain_analyze_reports_engine():
    """EXPLAIN ANALYZE names the engine that actually ran the local eval."""
    for engine in ("vectorized", "reference"):
        data = make_workload("real", SMALL)
        instances = make_instances("real", data, SMALL.weather_q, SMALL)
        payless, __ = build_system(
            "payless", data, metrics=MetricsRegistry(), engine=engine
        )
        rendered = payless.explain_analyze(
            instances[0].sql, instances[0].params
        ).render()
        assert f"engine={engine}" in rendered
        assert "rows/sec" in rendered
