"""Equivalence guard: indexed store probes vs the brute-force oracle.

The grid indexes of :mod:`repro.semstore.grid` must be pure accelerators.
For any sequence of mutations and probes, a store running the pre-index
flat scans (``debug_bruteforce=True``) and the default indexed store must
return *byte-identical* answers: the same remainder decompositions in the
same order, the same coverage verdicts, and the same assembled rows in the
same order.  These tests drive both stores through identical randomized
workloads (seeded, so failures reproduce) and compare every answer.
"""

import random

import pytest

from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.grid import BoxGridIndex, PointGridIndex
from repro.semstore.space import BoxSpace, Dimension
from repro.semstore.store import SemanticStore

CATEGORIES = ("amber", "blue", "coral", "dune")

#: Per-axis width caps for randomly generated boxes (K, D, C).
RECORD_WIDTHS = (12, 5, 2)
QUERY_WIDTHS = (25, 8, 4)


def make_space() -> BoxSpace:
    return BoxSpace(
        "R",
        (
            Dimension("K", is_categorical=False, low=0, high=41),
            Dimension("D", is_categorical=False, low=1, high=11),
            Dimension(
                "C",
                is_categorical=True,
                low=0,
                high=len(CATEGORIES),
                values=CATEGORIES,
            ),
        ),
    )


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("K", T.INT),
            Attribute("D", T.INT),
            Attribute("C", T.STRING),
            Attribute("V", T.FLOAT),
        ]
    )


def paired_stores(policy=None):
    """Two stores fed identical workloads: indexed vs brute-force oracle."""
    indexed = SemanticStore(policy)
    indexed.register_table(make_space(), make_schema())
    brute = SemanticStore(policy, debug_bruteforce=True)
    brute.register_table(make_space(), make_schema())
    return indexed, brute


def random_box(rng: random.Random, max_widths) -> Box:
    extents = []
    for dimension, cap in zip(make_space().dimensions, max_widths):
        span = dimension.high - dimension.low
        width = rng.randint(1, min(cap, span))
        low = rng.randint(dimension.low, dimension.high - width)
        extents.append((low, low + width))
    return Box(tuple(extents))


def rows_for_box(box: Box, rng: random.Random):
    """A sampled row for most grid points of ``box`` (plus an off-domain one)."""
    (k0, k1), (d0, d1), (c0, c1) = box.extents
    rows = []
    for k in range(k0, k1):
        for d in range(d0, d1):
            for c in range(c0, c1):
                if rng.random() < 0.7:
                    rows.append(
                        (k, d, CATEGORIES[c], float(k * 1000 + d * 10 + c))
                    )
    if rng.random() < 0.2:
        rows.append((k0, d0, "off-domain-category", -1.0))
    return rows


def assert_probes_agree(indexed: SemanticStore, brute: SemanticStore, query: Box):
    assert indexed.remainder("R", query) == brute.remainder("R", query)
    assert indexed.is_covered("R", query) == brute.is_covered("R", query)
    assert indexed.effective_covers("R") == brute.effective_covers("R")
    assert indexed.rows_in_boxes("R", [query]) == brute.rows_in_boxes(
        "R", [query]
    )
    assert indexed.table("R").rows_in_box(query) == brute.table(
        "R"
    ).rows_in_box(query)


POLICY_FACTORIES = {
    "weak": ConsistencyPolicy.weak,
    "two_weeks": lambda: ConsistencyPolicy.weeks(2),
}


class TestRandomWorkloadEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("seed", range(4))
    def test_indexed_matches_bruteforce(self, seed, policy_name):
        rng = random.Random(seed)
        indexed, brute = paired_stores(POLICY_FACTORIES[policy_name]())
        for __ in range(60):
            action = rng.random()
            if action < 0.55:
                box = (
                    make_space().full_box
                    if rng.random() < 0.1
                    else random_box(rng, RECORD_WIDTHS)
                )
                rows = rows_for_box(box, rng)
                new_indexed = indexed.record("R", box, rows)
                new_brute = brute.record("R", box, rows)
                assert new_indexed == new_brute
            elif action < 0.65:
                weeks = rng.choice((0.5, 1.0, 3.0))
                indexed.advance_clock(weeks)
                brute.advance_clock(weeks)
            query = random_box(rng, QUERY_WIDTHS)
            assert_probes_agree(indexed, brute, query)
            assert indexed.epoch_of("R") == brute.epoch_of("R")
            table_i, table_b = indexed.table("R"), brute.table("R")
            assert table_i.covered == table_b.covered
            assert table_i.cached_row_count == table_b.cached_row_count

    def test_full_domain_record_covers_everything(self):
        rng = random.Random(1234)
        indexed, brute = paired_stores()
        full = make_space().full_box
        rows = rows_for_box(full, rng)
        indexed.record("R", full, rows)
        brute.record("R", full, rows)
        for __ in range(10):
            query = random_box(rng, QUERY_WIDTHS)
            assert indexed.remainder("R", query) == []
            assert indexed.is_covered("R", query)
            assert_probes_agree(indexed, brute, query)


class TestBindJoinFanout:
    """The >16-box assembly path (one box per binding value) must agree."""

    def test_many_point_boxes(self):
        rng = random.Random(99)
        indexed, brute = paired_stores()
        full = make_space().full_box
        rows = rows_for_box(full, rng)
        indexed.record("R", full, rows)
        brute.record("R", full, rows)
        ks = rng.sample(range(0, 41), 24)
        boxes = [Box(((k, k + 1), (1, 11), (0, 4))) for k in ks]
        assert indexed.rows_in_boxes("R", boxes) == brute.rows_in_boxes(
            "R", boxes
        )

    def test_mixed_point_and_range_boxes(self):
        rng = random.Random(7)
        indexed, brute = paired_stores()
        for __ in range(8):
            box = random_box(rng, RECORD_WIDTHS)
            rows = rows_for_box(box, rng)
            indexed.record("R", box, rows)
            brute.record("R", box, rows)
        boxes = [Box(((k, k + 1), (1, 11), (0, 4))) for k in range(0, 40, 2)]
        boxes.append(Box(((0, 41), (1, 3), (1, 2))))
        assert indexed.rows_in_boxes("R", boxes) == brute.rows_in_boxes(
            "R", boxes
        )


def overlaps(a: Box, b: Box) -> bool:
    return all(
        max(low_a, low_b) < min(high_a, high_b)
        for (low_a, high_a), (low_b, high_b) in zip(a.extents, b.extents)
    )


class TestBoxGridIndex:
    EXTENTS = ((0, 100), (0, 100))

    def test_candidates_are_overlap_superset_in_insertion_order(self):
        rng = random.Random(42)
        index = BoxGridIndex(self.EXTENTS)
        boxes = {}
        for box_id in range(50):
            low_x, low_y = rng.randint(0, 90), rng.randint(0, 90)
            box = Box(
                (
                    (low_x, low_x + rng.randint(1, 10)),
                    (low_y, low_y + rng.randint(1, 10)),
                )
            )
            boxes[box_id] = box
            index.insert(box_id, box)
        for __ in range(40):
            low_x, low_y = rng.randint(0, 80), rng.randint(0, 80)
            query = Box(((low_x, low_x + 20), (low_y, low_y + 20)))
            candidates = index.candidates(query)
            assert candidates == sorted(candidates)
            truly = {i for i, box in boxes.items() if overlaps(box, query)}
            assert truly.issubset(candidates)

    def test_remove(self):
        index = BoxGridIndex(self.EXTENTS)
        box = Box(((10, 20), (10, 20)))
        index.insert(0, box)
        assert 0 in index.candidates(box)
        index.remove(0)
        assert index.candidates(box) == []

    def test_oversized_box_always_probed(self):
        index = BoxGridIndex(self.EXTENTS)
        index.insert(0, Box(((0, 100), (0, 100))))
        assert 0 in index.candidates(Box(((3, 4), (97, 98))))


class TestPointGridIndex:
    def test_candidates_are_containment_superset(self):
        rng = random.Random(17)
        index = PointGridIndex(((0, 100), (0, 100)))
        points = {}
        for row_id in range(200):
            point = (rng.randint(0, 99), rng.randint(0, 99))
            points[row_id] = point
            index.insert(row_id, point)
        for __ in range(30):
            low_x, low_y = rng.randint(0, 80), rng.randint(0, 80)
            query = Box(((low_x, low_x + 20), (low_y, low_y + 20)))
            truly = {
                i for i, p in points.items() if query.contains_point(p)
            }
            assert truly.issubset(set(index.candidates(query)))
