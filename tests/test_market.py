"""Unit tests for the data-market simulator: binding, pricing, server."""

import pytest

from repro.errors import BindingError, MarketError, SchemaError
from repro.market import (
    AccessMode,
    BindingPattern,
    DataMarket,
    Dataset,
    PricingPolicy,
    RestRequest,
    interval,
    point,
)
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T


class TestBindingPattern:
    def test_parse(self):
        pattern = BindingPattern.parse("R", "Ab, Bf, Co")
        assert pattern.mode_of("A") is AccessMode.BOUND
        assert pattern.mode_of("B") is AccessMode.FREE
        assert pattern.mode_of("C") is AccessMode.OUTPUT

    def test_unlisted_attribute_is_output(self):
        pattern = BindingPattern.parse("R", "Af")
        assert pattern.mode_of("Zzz") is AccessMode.OUTPUT

    def test_parse_bad_suffix(self):
        with pytest.raises(SchemaError):
            BindingPattern.parse("R", "Ax")

    def test_downloadable(self):
        assert BindingPattern.parse("R", "Af, Bf").downloadable
        assert not BindingPattern.parse("R", "Ab, Bf").downloadable

    def test_validate_constrained_requires_bound(self):
        pattern = BindingPattern.parse("R", "Ab, Bf")
        pattern.validate_constrained(["A"])  # fine
        pattern.validate_constrained(["A", "B"])  # fine
        with pytest.raises(BindingError):
            pattern.validate_constrained(["B"])  # A missing

    def test_validate_constrained_rejects_output(self):
        pattern = BindingPattern.parse("R", "Af")
        with pytest.raises(BindingError):
            pattern.validate_constrained(["Other"])

    def test_all_free(self):
        pattern = BindingPattern.all_free("R", ["A", "B"])
        assert pattern.downloadable


class TestPricing:
    def test_equation_one(self):
        pricing = PricingPolicy(tuples_per_transaction=100)
        assert pricing.transactions_for(0) == 0
        assert pricing.transactions_for(1) == 1
        assert pricing.transactions_for(100) == 1
        assert pricing.transactions_for(101) == 2
        assert pricing.transactions_for(4400) == 44  # the paper's example

    def test_price(self):
        pricing = PricingPolicy(
            tuples_per_transaction=100, price_per_transaction=0.12
        )
        assert pricing.price_for(4400) == pytest.approx(5.28)

    def test_invalid_page_size(self):
        with pytest.raises(MarketError):
            PricingPolicy(tuples_per_transaction=0)

    def test_negative_count(self):
        with pytest.raises(MarketError):
            PricingPolicy().transactions_for(-1)


@pytest.fixture
def market():
    schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(["US", "CA"])),
            Attribute("Rank", T.INT, Domain.numeric(1, 100)),
            Attribute("Secret", T.FLOAT),
        ]
    )
    rows = [("US", rank, float(rank)) for rank in range(1, 51)] + [
        ("CA", rank, float(rank)) for rank in range(1, 26)
    ]
    dataset = Dataset("D", PricingPolicy(tuples_per_transaction=10))
    dataset.add_table(
        Table("R", schema, rows),
        BindingPattern(table="R", modes={
            "Country": AccessMode.BOUND,
            "Rank": AccessMode.FREE,
        }),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


class TestRestRequest:
    def test_rejects_set_constraint(self):
        with pytest.raises(MarketError):
            RestRequest(
                "D", "R",
                (AttributeConstraint("Country", values=frozenset({"US"})),),
            )

    def test_rejects_duplicate_attribute(self):
        with pytest.raises(MarketError):
            RestRequest(
                "D", "R", (point("Rank", 1), interval("Rank", 2, 5))
            )

    def test_url_rendering(self):
        request = RestRequest(
            "D", "R", (point("Country", "US"), interval("Rank", 1, 10))
        )
        assert "Country='US'" in request.url()
        assert "Rank=[1,10)" in request.url()


class TestServerGet:
    def test_filtering_and_billing(self, market):
        response = market.get(
            RestRequest(
                "D", "R", (point("Country", "US"), interval("Rank", 1, 25))
            )
        )
        assert response.record_count == 24
        assert response.transactions == 3  # ceil(24/10)
        assert market.ledger.total_transactions == 3

    def test_empty_result_free(self, market):
        response = market.get(
            RestRequest(
                "D", "R", (point("Country", "US"), interval("Rank", 99, 100))
            )
        )
        assert response.record_count == 0
        assert response.transactions == 0

    def test_bound_attribute_enforced(self, market):
        with pytest.raises(BindingError):
            market.get(RestRequest("D", "R", (interval("Rank", 1, 5),)))

    def test_output_attribute_rejected(self, market):
        with pytest.raises(BindingError):
            market.get(
                RestRequest(
                    "D", "R", (point("Country", "US"), point("Secret", 1.0))
                )
            )

    def test_range_on_categorical_rejected(self, market):
        # Craft a constraint that is a range on a string attribute.
        constraint = AttributeConstraint("Country", low=1, high=5)
        with pytest.raises(MarketError):
            market.get(RestRequest("D", "R", (constraint, point("Country", "x"))))

    def test_unknown_dataset(self, market):
        with pytest.raises(MarketError):
            market.get(RestRequest("Nope", "R", ()))

    def test_unknown_table(self, market):
        with pytest.raises(MarketError):
            market.get(RestRequest("D", "Nope", ()))

    def test_unknown_attribute(self, market):
        with pytest.raises(MarketError):
            market.get(
                RestRequest(
                    "D", "R", (point("Country", "US"), point("Bogus", 1))
                )
            )

    def test_download_blocked_for_bound_tables(self, market):
        with pytest.raises(MarketError):
            market.download_table("R")

    def test_double_publish_rejected(self, market):
        with pytest.raises(MarketError):
            market.publish(Dataset("D"))


class TestBasicStatistics:
    def test_cardinality_and_domains(self, market):
        statistics = market.basic_statistics("R")
        assert statistics.cardinality == 75
        assert statistics.domain_of("rank").low == 1
        assert statistics.domain_of("country").values == frozenset({"US", "CA"})


class TestLedger:
    def test_summary_and_accumulation(self, market):
        market.get(
            RestRequest("D", "R", (point("Country", "US"),))
        )
        market.get(
            RestRequest("D", "R", (point("Country", "CA"),))
        )
        ledger = market.ledger
        assert ledger.total_calls == 2
        assert ledger.total_records == 75
        assert ledger.total_transactions == 5 + 3
        assert ledger.transactions_for_dataset("D") == 8
        assert "TOTAL" in ledger.summary()
