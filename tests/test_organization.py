"""Multi-user organizations: shared store, per-user billing, deferred batch."""

import pytest

from repro.core.organization import Organization


@pytest.fixture
def organization(mini_payless):
    return Organization(mini_payless, name="acme")


class TestSharedStore:
    def test_one_users_purchase_helps_another(self, organization):
        alice = organization.user("alice")
        bob = organization.user("bob")
        first = alice.query("SELECT * FROM Weather WHERE Country = 'CountryA'")
        second = bob.query(
            "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 3"
        )
        assert first.transactions > 0
        assert second.transactions == 0  # rides on Alice's purchase

    def test_user_identity_stable(self, organization):
        assert organization.user("Ann") is organization.user("ann")
        assert len(organization.users) == 1


class TestAttribution:
    def test_spend_attributed_per_user(self, organization):
        alice = organization.user("alice")
        bob = organization.user("bob")
        a = alice.query("SELECT * FROM Station")
        b = bob.query("SELECT * FROM Weather WHERE Country = 'CountryB'")
        assert alice.transactions == a.transactions
        assert bob.transactions == b.transactions
        report = organization.spend_report()
        assert "alice" in report and "bob" in report
        assert "unattributed" not in report


class TestDeferredBatch:
    def test_flush_executes_everything(self, organization):
        alice = organization.user("alice")
        bob = organization.user("bob")
        t1 = alice.defer(
            "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 3"
        )
        t2 = bob.defer("SELECT * FROM Weather WHERE Country = 'CountryA'")
        assert organization.pending_count == 2
        results = organization.flush()
        assert organization.pending_count == 0
        assert set(results) == {t1, t2}
        assert len(results[t2].rows) == 40

    def test_batch_order_makes_narrow_queries_free(self, organization):
        alice = organization.user("alice")
        bob = organization.user("bob")
        narrow = alice.defer(
            "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 3"
        )
        broad = bob.defer("SELECT * FROM Weather WHERE Country = 'CountryA'")
        results = organization.flush()
        # The broad query runs first (containment order), so the narrow
        # one is covered and free; Alice pays nothing.
        assert results[narrow].transactions == 0
        assert results[broad].transactions > 0
        assert alice.transactions == 0
        assert bob.transactions == results[broad].transactions

    def test_flush_empty(self, organization):
        assert organization.flush() == {}
