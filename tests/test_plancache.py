"""The epoch-keyed parameterized plan cache (repro.core.plancache).

The invariant everything here protects: a cache hit must return exactly
what fresh planning would have produced.  The cache therefore keys on
template + parameter values + planner fingerprint and revalidates the
store epochs stamped at planning time — any purchase into a referenced
table, or a store-clock advance, invalidates the entry.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_system
from repro.core.objectives import AdaptivePolicy, PlanObjective
from repro.core.plancache import PlanCache
from repro.core.plans import MaterializedNode
from repro.core.prepared import PreparedQuery
from repro.obs.metrics import MetricsRegistry
from repro.workloads.synthetic import make_join_graph


def build(shape: str = "chain", n: int = 3, **kwargs):
    data = make_join_graph(shape, n)
    payless, __ = build_system("payless", data, **kwargs)
    return payless, data


def warm(payless, n: int) -> None:
    """Buy every table whole so later queries purchase nothing (fixed
    epochs: executions no longer mutate the store)."""
    for i in range(1, n + 1):
        payless.query(f"SELECT * FROM T{i}")


class TestHitMissLifecycle:
    def test_repeat_query_miss_invalidate_hit(self):
        payless, data = build()
        cache = payless.plan_cache
        # 1st: cold miss; its own purchases bump the referenced epochs,
        # so the entry (stamped at planning time) is immediately stale.
        payless.query(data.sql)
        assert (cache.hits, cache.misses, cache.invalidations) == (0, 1, 0)
        # 2nd: the stale entry is dropped and re-planned at the settled
        # epochs; execution is fully covered, so nothing changes anymore.
        payless.query(data.sql)
        assert (cache.hits, cache.misses, cache.invalidations) == (0, 2, 1)
        # 3rd: a genuine hit.
        payless.query(data.sql)
        assert (cache.hits, cache.misses, cache.invalidations) == (1, 2, 1)

    def test_hit_preserves_planning_counts(self):
        payless, data = build()
        warm(payless, 3)
        first = payless.explain(data.sql)
        second = payless.explain(data.sql)
        assert second.planning.cache_status == "hit"
        assert second.from_cache
        assert not first.from_cache
        assert second.evaluated_plans == first.evaluated_plans
        assert second.pruned_plans == first.pruned_plans
        assert second.cost == first.cost
        assert second.plan.describe() == first.plan.describe()

    def test_purchase_into_referenced_table_invalidates(self):
        payless, data = build()
        warm(payless, 1)  # T1 covered; T2/T3 still priced
        payless.explain(data.sql)
        assert payless.plan_cache.size >= 1
        # Buying into T2 (referenced by the cached template) must
        # invalidate: the optimum may have changed.
        payless.query("SELECT * FROM T2 WHERE K1 = 1")
        before = payless.plan_cache.invalidations
        explanation = payless.explain(data.sql)
        assert explanation.planning.cache_status == "miss"
        assert payless.plan_cache.invalidations == before + 1

    def test_clock_advance_invalidates(self):
        payless, data = build()
        warm(payless, 3)
        payless.query(data.sql)  # cached at the settled epochs
        payless.store.advance_clock(1)
        explanation = payless.explain(data.sql)
        assert explanation.planning.cache_status == "miss"

    def test_metrics_and_hit_rate(self):
        metrics = MetricsRegistry()
        payless, data = build(metrics=metrics)
        warm(payless, 3)
        payless.query(data.sql)
        payless.query(data.sql)
        snap = metrics.snapshot()
        assert snap["plan_cache_hits"] >= 1
        assert snap["plan_cache_misses"] >= 1
        assert 0.0 < snap["plan_cache_hit_rate"] < 1.0
        assert snap["plan_cache_hit_rate"] == payless.plan_cache.hit_rate


class TestKeying:
    def test_different_params_get_separate_entries(self):
        payless, __ = build()
        warm(payless, 3)
        template = "SELECT * FROM T1 WHERE K1 = ?"
        payless.query(template, (1,))
        payless.query(template, (2,))
        assert payless.plan_cache.hits == 0
        payless.query(template, (1,))
        assert payless.plan_cache.hits == 1

    def test_whitespace_variants_share_one_entry(self):
        payless, __ = build()
        warm(payless, 3)
        payless.query("SELECT * FROM T1 WHERE K1 = 1")
        hits = payless.plan_cache.hits
        payless.query("SELECT  *  FROM   T1  WHERE  K1  =  1")
        assert payless.plan_cache.hits == hits + 1

    def test_query_and_prepared_share_entries(self):
        payless, data = build()
        warm(payless, 3)
        payless.query(data.sql)
        prepared = PreparedQuery(payless, data.sql)
        prepared.execute()
        assert payless.plan_cache.hits == 1

    def test_unhashable_params_bypass_cache(self):
        payless, __ = build()
        statement = payless.plan_cache.parse_sql(
            "SELECT * FROM T1 WHERE K1 = ?"
        )
        assert (
            PlanCache.statement_key(statement, ([1, 2],), ()) is None
        )

    def test_fingerprint_separates_configurations(self):
        payless, data = build()
        statement = payless.plan_cache.parse_sql(data.sql)
        key_a = PlanCache.statement_key(statement, (), ("vectorized",))
        key_b = PlanCache.statement_key(statement, (), ("reference",))
        assert key_a != key_b


def _skewed_build(adaptive=None):
    data = make_join_graph(
        "chain", 2, tuples_per_transaction=5,
        domain_high=400, skew=15.0, rows=1000,
    )
    payless, __ = build_system("payless", data, adaptive=adaptive)
    return payless


def _plan_nodes(node):
    yield node
    for child in (getattr(node, "left", None), getattr(node, "right", None)):
        if child is not None:
            yield from _plan_nodes(child)


SKEWED_SQL = "SELECT * FROM T1, T2 WHERE T1.K1 = T2.K1 AND T1.V > 200"


class TestAdaptiveHygiene:
    """Mid-query re-planning must never pollute the template cache: the
    re-planned suffix is costed against one query's materialized prefix
    (a :class:`MaterializedNode`), which no other execution has."""

    def test_replanned_suffix_never_cached(self):
        payless = _skewed_build(adaptive=AdaptivePolicy())
        result = payless.query(SKEWED_SQL)
        assert result.stats.replans >= 1
        for entry in payless.plan_cache._entries.values():
            for node in _plan_nodes(entry.planning.plan):
                assert not isinstance(node, MaterializedNode)

    def test_repeat_query_still_hits_with_the_static_template(self):
        payless = _skewed_build(adaptive=AdaptivePolicy())
        static_cost = _skewed_build().explain(SKEWED_SQL).cost
        payless.query(SKEWED_SQL)  # cold: replans, purchases, goes stale
        payless.query(SKEWED_SQL)  # re-planned at settled epochs
        hits = payless.plan_cache.hits
        third = payless.explain(SKEWED_SQL)
        assert payless.plan_cache.hits == hits + 1
        assert third.planning.cache_status == "hit"
        # The cached template is the full statically-planned query (its
        # post-purchase re-plan), never a mid-flight suffix: it covers
        # every table and carries no materialized prefix.
        relations = {
            r for node in _plan_nodes(third.plan) for r in node.relations
        }
        assert relations == {"t1", "t2"}
        assert static_cost >= 0  # static planning itself stayed usable

    def test_adaptive_policies_get_distinct_fingerprints(self):
        on = _skewed_build(adaptive=AdaptivePolicy())
        off = _skewed_build()
        objective = PlanObjective.min_dollars()
        assert (
            on._planner_fingerprint(objective)
            != off._planner_fingerprint(objective)
        )
        assert (
            _skewed_build(
                adaptive=AdaptivePolicy(threshold=3.0)
            )._planner_fingerprint(objective)
            != on._planner_fingerprint(objective)
        )


class TestCapacity:
    def test_lru_eviction_at_small_capacity(self):
        payless, __ = build(plan_cache_size=2)
        warm(payless, 3)
        payless.query("SELECT * FROM T1")
        payless.query("SELECT * FROM T2")
        payless.query("SELECT * FROM T3")  # evicts the T1 entry
        assert payless.plan_cache.size == 2
        assert payless.plan_cache.evictions >= 1
        hits = payless.plan_cache.hits
        payless.query("SELECT * FROM T1")  # must re-plan
        assert payless.plan_cache.hits == hits

    def test_size_zero_disables_the_cache(self):
        payless, data = build(plan_cache_size=0)
        warm(payless, 3)
        assert not payless.plan_cache.enabled
        payless.query(data.sql)
        explanation = payless.explain(data.sql)
        assert explanation.planning.cache_status == "off"
        assert payless.plan_cache.size == 0
        assert payless.plan_cache.hits == 0

    def test_clear_empties_the_cache(self):
        payless, data = build()
        warm(payless, 3)
        payless.query(data.sql)
        assert payless.plan_cache.size > 0
        payless.plan_cache.clear()
        assert payless.plan_cache.size == 0


class TestPreparedQuerySpans:
    def test_one_plan_span_across_n_executes_at_fixed_epoch(self):
        payless, data = build(tracing=True)
        warm(payless, 3)  # executions below purchase nothing
        payless.tracer.keep = 32
        start = len(payless.tracer.traces)
        prepared = PreparedQuery(payless, data.sql)
        for __ in range(5):
            prepared.execute()
        traces = payless.tracer.traces[start:]
        assert len(traces) == 5
        plan_spans = sum(len(t.spans("plan")) for t in traces)
        assert plan_spans == 1  # planned once, four cache hits
        cache_events = [
            span.attrs.get("hit")
            for t in traces
            for span in t.spans("plan_cache")
        ]
        assert cache_events == [False, True, True, True, True]

    def test_executions_still_execute(self):
        """A cache hit skips planning, never execution."""
        payless, data = build()
        warm(payless, 3)
        prepared = PreparedQuery(payless, data.sql)
        first = prepared.execute()
        second = prepared.execute()
        assert prepared.executions == 2
        assert sorted(second.rows) == sorted(first.rows)
        assert second.stats.transactions == 0  # covered, not skipped


class TestLogicalPath:
    def test_execute_logical_uses_logical_key(self):
        payless, data = build()
        warm(payless, 3)
        logical = payless.compile(data.sql)
        payless.execute_logical(logical)
        assert payless.plan_cache.misses >= 1
        hits = payless.plan_cache.hits
        payless.execute_logical(payless.compile(data.sql))
        assert payless.plan_cache.hits == hits + 1
