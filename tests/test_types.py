"""Unit tests for the relational type system."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import AttributeType, comparable


class TestCoerce:
    def test_int_accepts_int(self):
        assert AttributeType.INT.coerce(42) == 42

    def test_int_accepts_integral_float(self):
        assert AttributeType.INT.coerce(42.0) == 42
        assert isinstance(AttributeType.INT.coerce(42.0), int)

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.coerce(4.2)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.coerce(True)

    def test_int_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.coerce("42")

    def test_date_behaves_like_int(self):
        assert AttributeType.DATE.coerce(20140601) == 20140601

    def test_float_accepts_int(self):
        value = AttributeType.FLOAT.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.FLOAT.coerce(False)

    def test_string_accepts_str(self):
        assert AttributeType.STRING.coerce("Seattle") == "Seattle"

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.STRING.coerce(5)

    def test_none_rejected_everywhere(self):
        for attribute_type in AttributeType:
            with pytest.raises(TypeMismatchError):
                attribute_type.coerce(None)


class TestClassification:
    def test_numeric_flags(self):
        assert AttributeType.INT.is_numeric
        assert AttributeType.FLOAT.is_numeric
        assert AttributeType.DATE.is_numeric
        assert not AttributeType.STRING.is_numeric

    def test_categorical_flags(self):
        assert AttributeType.STRING.is_categorical
        assert not AttributeType.INT.is_categorical

    def test_validates(self):
        assert AttributeType.INT.validates(7)
        assert not AttributeType.INT.validates(7.5)
        assert not AttributeType.INT.validates("7")
        assert AttributeType.STRING.validates("x")


class TestComparable:
    def test_same_types(self):
        assert comparable(AttributeType.STRING, AttributeType.STRING)

    def test_numeric_cross(self):
        assert comparable(AttributeType.INT, AttributeType.FLOAT)
        assert comparable(AttributeType.DATE, AttributeType.INT)

    def test_string_vs_numeric(self):
        assert not comparable(AttributeType.STRING, AttributeType.INT)
