"""The paper's worked examples, reproduced end-to-end.

* Figure 1 / Section 1: plan P1 (fetch all US June weather) costs 238
  transactions; plan P2 (bind join on Seattle's station id) costs 2.
  PayLess must choose P2 and be billed exactly 2 transactions.
* The intro's counter-scenario: with only 20 US stations, 15 of them in
  Seattle, P1 (7 transactions) beats P2 (16) and PayLess must switch.
"""

import pytest

from repro import (
    BindingPattern,
    DataMarket,
    Dataset,
    PayLess,
    PricingPolicy,
    Table,
)
from repro.core.plans import JoinNode, market_leaves
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T

JUNE_DAYS = 30
SEATTLE_SQL = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Seattle' AND Station.Country = 'United States' "
    "AND Weather.Country = 'United States' "
    "AND Date >= 1 AND Date <= 30 "
    "AND Station.StationID = Weather.StationID"
)


def build_market(station_cities):
    """A WHW-like market with the given (station id -> city) layout."""
    station_ids = sorted(station_cities)
    cities = sorted(set(station_cities.values()))
    station_schema = Schema(
        [
            Attribute(
                "Country", T.STRING, Domain.categorical(["United States"])
            ),
            Attribute(
                "StationID",
                T.INT,
                Domain.numeric(min(station_ids), max(station_ids)),
            ),
            Attribute("City", T.STRING, Domain.categorical(cities)),
        ]
    )
    weather_schema = Schema(
        [
            Attribute(
                "Country", T.STRING, Domain.categorical(["United States"])
            ),
            Attribute(
                "StationID",
                T.INT,
                Domain.numeric(min(station_ids), max(station_ids)),
            ),
            Attribute("Date", T.DATE, Domain.numeric(1, JUNE_DAYS)),
            Attribute("Temperature", T.FLOAT),
        ]
    )
    station_rows = [
        ("United States", sid, city) for sid, city in station_cities.items()
    ]
    weather_rows = [
        ("United States", sid, day, float(sid + day))
        for sid in station_ids
        for day in range(1, JUNE_DAYS + 1)
    ]
    dataset = Dataset("WHW", PricingPolicy(tuples_per_transaction=100))
    dataset.add_table(
        Table("Station", station_schema, station_rows),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather_rows),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    payless = PayLess.full(market)
    payless.register_dataset("WHW")
    return market, payless


class TestFigure1SeattleWins:
    """788 US stations, exactly one in Seattle: P2 (bind join) for 2 trans."""

    @pytest.fixture
    def setup(self):
        cities = {3817: "Seattle"}
        for i in range(787):
            cities[10000 + i] = f"City{i:04d}"
        return build_market(cities)

    def test_p1_would_cost_238(self, setup):
        market, __ = setup
        pricing = market.dataset("WHW").pricing
        # C2 fetches 788 stations x 30 days; C1 fetches 1 station record.
        assert pricing.transactions_for(788 * 30) == 237
        assert pricing.transactions_for(1) == 1

    def test_optimizer_picks_bind_join(self, setup):
        __, payless = setup
        planning = payless.explain(SEATTLE_SQL)
        root = planning.plan
        assert isinstance(root, JoinNode) and root.bind
        assert planning.cost == pytest.approx(2.0)

    def test_execution_bills_two_transactions(self, setup):
        __, payless = setup
        result = payless.query(SEATTLE_SQL)
        assert result.transactions == 2
        assert result.calls == 2
        assert len(result.rows) == JUNE_DAYS


class TestIntroCounterScenario:
    """20 US stations, 15 in Seattle: P1 (7 trans) beats P2 (16)."""

    @pytest.fixture
    def setup(self):
        cities = {i: "Seattle" for i in range(1, 16)}
        for i in range(16, 21):
            cities[i] = "Elsewhere"
        return build_market(cities)

    def test_optimizer_picks_direct_fetch(self, setup):
        __, payless = setup
        planning = payless.explain(SEATTLE_SQL)
        root = planning.plan
        assert isinstance(root, JoinNode) and not root.bind

    def test_execution_bills_seven_transactions(self, setup):
        __, payless = setup
        result = payless.query(SEATTLE_SQL)
        # 1 (station call) + ceil(20*30/100) = 7, the paper's arithmetic.
        assert result.transactions == 7
        assert len(result.rows) == 15 * JUNE_DAYS


class TestBindJoinActuallyBinds:
    def test_weather_calls_constrain_station_id(self):
        cities = {3817: "Seattle"}
        for i in range(49):
            cities[10000 + i] = f"City{i:04d}"
        market, payless = build_market(cities)
        payless.query(SEATTLE_SQL)
        weather_calls = [
            entry.request
            for entry in market.ledger
            if entry.request.table == "Weather"
        ]
        assert weather_calls
        for request in weather_calls:
            constrained = {a.lower() for a in request.constrained_attributes}
            assert "stationid" in constrained
