"""Parallel market fetch: billing invariance and simulated wall-clock.

Remainder calls within one table access are issued through a thread pool
of ``max_concurrent_calls`` workers.  Parallelism may only change
wall-clock: every observable money number — transactions, price, calls,
fetched records, the ledger — must be identical to serial execution
(an acceptance criterion, asserted here on a Figure-10-style session),
and the reported critical path must never exceed the serial sum.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.figures import BenchProfile, make_instances, make_workload
from repro.core.executor import _makespan
from repro.core.payless import PayLess
from repro.errors import ExecutionError, PlanningError
from repro.market.faults import FaultPolicy
from repro.market.latency import LatencyModel
from repro.market.rest import RestRequest
from repro.market.server import DataMarket
from repro.market.transport import TransportConfig
from repro.obs.metrics import MetricsRegistry
from repro.relational.query import AttributeConstraint
from repro.testing import registered_payless, tiny_weather_market
from repro.workloads.weather import WeatherConfig

SMALL = BenchProfile(
    weather_q=2,
    weather=WeatherConfig(
        countries=2, stations_per_country=6, cities_per_country=4, days=20
    ),
)


def build_payless(data, max_concurrent_calls: int) -> PayLess:
    market = DataMarket()
    for dataset in data.datasets:
        market.publish(dataset)
    payless = PayLess.full(
        market,
        local_db=data.local_database(),
        max_concurrent_calls=max_concurrent_calls,
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)
    return payless


class TestBillingInvariance:
    def test_fig10_weather_session_is_identical(self):
        """Acceptance criterion: parallel fetch changes no money number."""
        data = make_workload("real", SMALL)
        instances = make_instances("real", data, SMALL.weather_q, SMALL)
        serial = build_payless(data, max_concurrent_calls=1)
        parallel = build_payless(data, max_concurrent_calls=8)
        for instance in instances:
            a = serial.query(instance.sql, instance.params)
            b = parallel.query(instance.sql, instance.params)
            assert (a.transactions, a.price, a.calls, a.fetched_records) == (
                b.transactions,
                b.price,
                b.calls,
                b.fetched_records,
            )
            assert sorted(a.rows) == sorted(b.rows)
        assert (
            serial.market.ledger.total_transactions
            == parallel.market.ledger.total_transactions
        )
        assert serial.market.ledger.total_price == pytest.approx(
            parallel.market.ledger.total_price
        )
        assert (
            serial.market.ledger.total_calls
            == parallel.market.ledger.total_calls
        )
        assert (
            serial.market.ledger.total_records
            == parallel.market.ledger.total_records
        )


def latency_payless(max_concurrent_calls: int) -> PayLess:
    market = tiny_weather_market(days=30)
    market.latency = LatencyModel(round_trip_ms=100.0, per_transaction_ms=10.0)
    return registered_payless(market, max_concurrent_calls=max_concurrent_calls)


def fragmented_query(payless: PayLess):
    """Cover the middle of the Date axis, then ask for all of CountryA.

    The remainder decomposes into the two Date endpoints — two REST calls
    in one table access, which is what parallel fetch can overlap.
    """
    payless.query(
        "SELECT Temperature FROM Weather "
        "WHERE Country = 'CountryA' AND Date >= 2 AND Date <= 29"
    )
    return payless.query(
        "SELECT Temperature FROM Weather WHERE Country = 'CountryA'"
    )


class TestCriticalPath:
    def test_serial_critical_path_equals_serial_sum(self):
        result = fragmented_query(latency_payless(max_concurrent_calls=1))
        assert result.market_time_ms > 0
        assert result.market_time_critical_path_ms == pytest.approx(
            result.market_time_ms
        )

    def test_parallel_critical_path_is_shorter(self):
        result = fragmented_query(latency_payless(max_concurrent_calls=8))
        assert result.calls >= 2
        assert result.market_time_critical_path_ms > 0
        assert (
            result.market_time_critical_path_ms < result.market_time_ms
        )

    def test_parallelism_never_changes_the_bill(self):
        serial = fragmented_query(latency_payless(max_concurrent_calls=1))
        parallel = fragmented_query(latency_payless(max_concurrent_calls=8))
        assert serial.transactions == parallel.transactions
        assert serial.price == pytest.approx(parallel.price)
        assert serial.calls == parallel.calls
        assert serial.market_time_ms == pytest.approx(parallel.market_time_ms)
        assert sorted(serial.rows) == sorted(parallel.rows)


class TestMakespan:
    def test_empty(self):
        assert _makespan([], 4) == 0.0

    def test_single_worker_is_serial_sum(self):
        assert _makespan([4.0, 3.0, 2.0], 1) == pytest.approx(9.0)

    def test_list_scheduling_two_workers(self):
        # Greedy in-order assignment: lanes fill as [4, 3+2+1] -> 6?  No:
        # heap replays the pool -- [0,0] -> [0,4] -> [3,4] -> [4,5] -> [5,5].
        assert _makespan([4.0, 3.0, 2.0, 1.0], 2) == pytest.approx(5.0)

    def test_more_workers_than_calls(self):
        assert _makespan([7.0, 3.0], 16) == pytest.approx(7.0)

    def test_never_below_longest_call_or_above_sum(self):
        durations = [5.0, 1.0, 4.0, 2.0, 8.0, 3.0]
        for workers in range(1, 9):
            makespan = _makespan(durations, workers)
            assert makespan >= max(durations)
            assert makespan <= sum(durations) + 1e-9


class TestThreadSafety:
    def test_concurrent_gets_bill_every_call(self):
        market = tiny_weather_market()
        requests = [
            RestRequest(
                "WHW",
                "Weather",
                (AttributeConstraint("StationID", value=station),),
            )
            for station in (1, 2, 3, 4)
        ] * 8
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(market.get, requests))
        assert market.ledger.total_calls == len(requests)
        assert market.ledger.total_records == sum(
            len(response.rows) for response in responses
        )
        oracle = tiny_weather_market()
        for request in requests:
            oracle.get(request)
        assert market.ledger.total_transactions == oracle.ledger.total_transactions
        assert market.ledger.total_price == pytest.approx(
            oracle.ledger.total_price
        )


def _traced_payless(max_concurrent_calls: int, faulty: bool) -> PayLess:
    transport = (
        TransportConfig(
            faults=FaultPolicy.uniform(seed=7, rate=0.3), max_retries=8
        )
        if faulty
        else None
    )
    return registered_payless(
        tiny_weather_market(days=30),
        max_concurrent_calls=max_concurrent_calls,
        transport=transport,
        tracing=True,
        metrics=MetricsRegistry(),
    )


def _fragmented_trace(payless: PayLess):
    """Warm alternating Date stripes, then query the whole country.

    The final query's remainder decomposes into the stored stripes'
    complement — several REST calls inside ONE table access, exactly what
    the fetch pool overlaps."""
    for low in range(2, 30, 8):
        payless.query(
            "SELECT Temperature FROM Weather WHERE Country = 'CountryA' "
            f"AND Date >= {low} AND Date <= {low + 1}"
        )
    result = payless.query(
        "SELECT Temperature FROM Weather WHERE Country = 'CountryA'"
    )
    return result


def _call_signature(result):
    """Everything observable about the market_call spans, in adoption order."""
    return [
        (
            span.attrs.get("url"),
            span.attrs.get("rows"),
            span.attrs.get("transactions"),
            span.attrs.get("price"),
            span.attrs.get("attempts"),
            span.attrs.get("retries"),
            span.attrs.get("replayed"),
            span.attrs.get("failed"),
        )
        for span in result.trace.spans("market_call")
    ]


class TestTraceUnderConcurrency:
    """Race-free span recording under the full fetch pool.

    Worker threads create only *detached* spans (no shared state); the
    coordinator adopts them in request order once the pool drains.  The
    trace of a parallel run must therefore be structurally identical to
    the serial run's — same call spans, same order, same money numbers —
    and identical across repeated parallel runs, whatever the thread
    scheduling.  Faults are drawn per call key, not per arrival, so the
    invariant survives fault injection too.
    """

    @pytest.mark.parametrize("faulty", [False, True])
    def test_parallel_trace_is_deterministic_and_matches_serial(self, faulty):
        serial = _fragmented_trace(_traced_payless(1, faulty))
        assert len(_call_signature(serial)) >= 2
        for __ in range(5):  # stress: repeat under fresh thread pools
            parallel = _fragmented_trace(_traced_payless(8, faulty))
            assert _call_signature(parallel) == _call_signature(serial)

    @pytest.mark.parametrize("faulty", [False, True])
    def test_every_call_span_is_adopted_finished_and_attributed(self, faulty):
        result = _fragmented_trace(_traced_payless(8, faulty))
        trace = result.trace
        calls = trace.spans("market_call")
        assert calls
        # Every market_call span hangs off exactly one table_fetch parent.
        adopted = [
            child
            for fetch in trace.spans("table_fetch")
            for child in fetch.children
            if child.kind == "market_call"
        ]
        assert len(adopted) == len(calls)
        for span in calls:
            assert span.finished
            assert span.attrs["attempts"] >= 1
            assert span.attrs["transactions"] >= 0
            assert span.attrs["rows"] >= 0
        # Per fetch, the children's spent transactions sum to the parent's.
        for fetch in trace.spans("table_fetch"):
            children = [
                c for c in fetch.children if c.kind == "market_call"
            ]
            if children:
                assert sum(
                    c.attrs["transactions"] for c in children
                ) == fetch.attrs["transactions"]

    def test_pool_high_water_mark_reaches_the_calls_in_flight(self):
        payless = _traced_payless(8, faulty=False)
        result = _fragmented_trace(payless)
        high_water = result.stats.metrics.get("fetch_pool_high_water_max", 0)
        assert 1 <= high_water <= 8


class TestConfigValidation:
    def test_payless_rejects_nonpositive_limit(self):
        with pytest.raises(PlanningError):
            PayLess.full(tiny_weather_market(), max_concurrent_calls=0)

    def test_executor_rejects_nonpositive_limit(self):
        from repro.core.executor import Executor

        payless = registered_payless(tiny_weather_market())
        with pytest.raises(ExecutionError):
            Executor(payless.context, max_concurrent_calls=0)

    def test_default_limit_comes_from_context(self):
        payless = registered_payless(tiny_weather_market())
        from repro.core.executor import Executor

        executor = Executor(payless.context)
        assert executor.max_concurrent_calls == payless.context.max_concurrent_calls
