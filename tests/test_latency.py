"""Simulated REST latency: the Section 5 'dominated by calls' effect."""

import pytest

from repro import PayLess
from repro.errors import MarketError
from repro.market.latency import DEFAULT_LATENCY, INSTANT, LatencyModel


class TestModel:
    def test_affine(self):
        model = LatencyModel(round_trip_ms=100.0, per_transaction_ms=10.0)
        assert model.call_ms(0) == 100.0
        assert model.call_ms(5) == 150.0

    def test_negative_rejected(self):
        with pytest.raises(MarketError):
            LatencyModel(round_trip_ms=-1.0)
        with pytest.raises(MarketError):
            DEFAULT_LATENCY.call_ms(-1)

    def test_instant(self):
        assert INSTANT.call_ms(1000) == 0.0


class TestThroughTheStack:
    def test_query_reports_market_time(self, mini_weather_market):
        mini_weather_market.latency = LatencyModel(
            round_trip_ms=100.0, per_transaction_ms=10.0
        )
        payless = PayLess.full(mini_weather_market)
        payless.register_dataset("WHW")
        result = payless.query("SELECT * FROM Station")
        # One call (1 transaction): 100 + 10 ms.
        assert result.market_time_ms == pytest.approx(110.0)

    def test_cached_queries_take_no_market_time(self, mini_weather_market):
        mini_weather_market.latency = DEFAULT_LATENCY
        payless = PayLess.full(mini_weather_market)
        payless.register_dataset("WHW")
        payless.query("SELECT * FROM Station")
        repeat = payless.query("SELECT * FROM Station")
        assert repeat.market_time_ms == 0.0

    def test_ledger_accumulates_elapsed(self, mini_weather_market):
        mini_weather_market.latency = LatencyModel(
            round_trip_ms=50.0, per_transaction_ms=0.0
        )
        payless = PayLess.full(mini_weather_market)
        payless.register_dataset("WHW")
        result = payless.query(
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.StationID = Weather.StationID"
        )
        assert mini_weather_market.ledger.total_elapsed_ms == pytest.approx(
            50.0 * result.calls
        )

    def test_default_market_is_instant(self, mini_payless):
        result = mini_payless.query("SELECT * FROM Station")
        assert result.market_time_ms == 0.0
