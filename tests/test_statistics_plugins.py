"""Pluggable statistics: independence and uniform alternatives to ISOMER."""

import pytest

from repro import PayLess
from repro.errors import StatisticsError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace
from repro.stats.interface import STATISTIC_FACTORIES, make_statistic
from repro.stats.onedim import IndependenceHistogram, UniformStatistic


def space_2d(width=10):
    schema = Schema([Attribute("A", T.INT), Attribute("B", T.INT)])
    pattern = BindingPattern(
        table="R", modes={"A": AccessMode.FREE, "B": AccessMode.FREE}
    )
    return BoxSpace.from_table(
        "R",
        schema,
        pattern,
        BasicStatistics(
            0,
            {
                "a": Domain.numeric(0, width - 1),
                "b": Domain.numeric(0, width - 1),
            },
        ),
    )


class TestFactories:
    def test_registry(self):
        assert set(STATISTIC_FACTORIES) == {
            "isomer",
            "independence",
            "uniform",
        }

    def test_unknown_kind(self):
        with pytest.raises(StatisticsError):
            make_statistic("magic", space_2d(), 10)

    @pytest.mark.parametrize("kind", sorted(STATISTIC_FACTORIES))
    def test_protocol_shape(self, kind):
        statistic = make_statistic(kind, space_2d(), 100)
        assert statistic.estimate_full() == pytest.approx(100.0)
        statistic.observe(Box(((0, 5), (0, 10))), 30)
        assert statistic.estimate(Box(((0, 5), (0, 10)))) >= 0.0


class TestIndependence:
    def test_uniform_prior(self):
        statistic = IndependenceHistogram(space_2d(10), 100)
        assert statistic.estimate(Box(((0, 5), (0, 5)))) == pytest.approx(25.0)

    def test_learns_marginal_from_full_slab(self):
        statistic = IndependenceHistogram(space_2d(10), 100)
        # A slab covering all of B but half of A: exact marginal for A.
        statistic.observe(Box(((0, 5), (0, 10))), 80)
        assert statistic.estimate(Box(((0, 5), (0, 10)))) == pytest.approx(80.0)
        assert statistic.estimate(Box(((5, 10), (0, 10)))) == pytest.approx(20.0)

    def test_ignores_partial_feedback(self):
        statistic = IndependenceHistogram(space_2d(10), 100)
        statistic.observe(Box(((0, 5), (0, 5))), 77)  # partial on both dims
        # Still the uniform prior: the marginal histograms saw nothing.
        assert statistic.estimate(Box(((0, 5), (0, 5)))) == pytest.approx(25.0)

    def test_whole_table_feedback_corrects_cardinality(self):
        statistic = IndependenceHistogram(space_2d(10), 100)
        statistic.observe(Box(((0, 10), (0, 10))), 40)
        assert statistic.estimate_full() == pytest.approx(40.0)

    def test_cannot_capture_correlation(self):
        """The documented blind spot: diagonal data fools independence."""
        statistic = IndependenceHistogram(space_2d(10), 100)
        statistic.observe(Box(((0, 5), (0, 10))), 50)
        statistic.observe(Box(((0, 10), (0, 5))), 50)
        # True data might be entirely in the (A<5, B<5) quadrant, but
        # independence can only ever say 25.
        assert statistic.estimate(Box(((0, 5), (0, 5)))) == pytest.approx(25.0)


class TestUniform:
    def test_never_learns(self):
        statistic = UniformStatistic(space_2d(10), 100)
        statistic.observe(Box(((0, 5), (0, 10))), 0)
        assert statistic.estimate(Box(((0, 5), (0, 10)))) == pytest.approx(50.0)
        assert statistic.feedback_count == 1


class TestEndToEnd:
    @pytest.mark.parametrize("kind", sorted(STATISTIC_FACTORIES))
    def test_payless_correct_under_any_statistic(
        self, mini_weather_market, kind
    ):
        payless = PayLess.full(mini_weather_market, statistic=kind)
        payless.register_dataset("WHW")
        result = payless.query(
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.StationID = Weather.StationID"
        )
        assert len(result.rows) == 10  # station 3, all 10 days

    def test_statistics_affect_cost_not_answers(self, mini_weather_market):
        answers = {}
        for kind in sorted(STATISTIC_FACTORIES):
            payless = PayLess.full(mini_weather_market, statistic=kind)
            payless.register_dataset("WHW")
            result = payless.query(
                "SELECT * FROM Weather WHERE Date >= 2 AND Date <= 4"
            )
            answers[kind] = sorted(result.rows)
        assert len({repr(rows) for rows in answers.values()}) == 1
