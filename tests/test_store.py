"""Unit tests for the semantic store and consistency levels."""

import pytest

from repro.errors import ReproError
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.consistency import ConsistencyLevel, ConsistencyPolicy
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore


@pytest.fixture
def schema():
    return Schema([Attribute("K", T.INT), Attribute("V", T.FLOAT)])


@pytest.fixture
def space(schema):
    pattern = BindingPattern(table="R", modes={"K": AccessMode.FREE})
    statistics = BasicStatistics(100, {"k": Domain.numeric(0, 99)})
    return BoxSpace.from_table("R", schema, pattern, statistics)


def rows(low, high):
    return [(k, float(k)) for k in range(low, high)]


class TestRecordAndRemainder:
    def test_empty_store_remainder_is_query(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        query = Box(((10, 20),))
        assert store.remainder("R", query) == [query]

    def test_full_coverage_no_remainder(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        store.record("R", Box(((0, 100),)), rows(0, 100))
        assert store.remainder("R", Box(((5, 50),))) == []
        assert store.is_covered("R", Box(((5, 50),)))

    def test_partial_coverage(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        store.record("R", Box(((10, 20),)), rows(10, 20))
        remainder = store.remainder("R", Box(((0, 30),)))
        assert sorted(b.extents for b in remainder) == [
            ((0, 10),),
            ((20, 30),),
        ]

    def test_rows_deduplicated(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        new_first = store.record("R", Box(((0, 10),)), rows(0, 10))
        new_second = store.record("R", Box(((5, 15),)), rows(5, 15))
        assert new_first == 10
        assert new_second == 5
        assert store.table("R").cached_row_count == 15

    def test_rows_in_boxes(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        store.record("R", Box(((0, 50),)), rows(0, 50))
        fetched = store.rows_in_boxes("R", [Box(((10, 12),)), Box(((40, 41),))])
        assert sorted(row[0] for row in fetched) == [10, 11, 40]

    def test_unregistered_table(self, space, schema):
        store = SemanticStore()
        with pytest.raises(ReproError):
            store.remainder("R", Box(((0, 1),)))

    def test_double_registration(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        with pytest.raises(ReproError):
            store.register_table(space, schema)


class TestConsistency:
    def test_strong_disables_reuse(self, space, schema):
        store = SemanticStore(ConsistencyPolicy.strong())
        store.register_table(space, schema)
        store.record("R", Box(((0, 100),)), rows(0, 100))
        query = Box(((5, 10),))
        assert store.remainder("R", query) == [query]

    def test_x_week_expires(self, space, schema):
        store = SemanticStore(ConsistencyPolicy.weeks(2))
        store.register_table(space, schema)
        store.record("R", Box(((0, 100),)), rows(0, 100))
        assert store.is_covered("R", Box(((5, 10),)))
        store.advance_clock(3)
        assert not store.is_covered("R", Box(((5, 10),)))

    def test_weak_never_expires(self, space, schema):
        store = SemanticStore()
        store.register_table(space, schema)
        store.record("R", Box(((0, 100),)), rows(0, 100))
        store.advance_clock(1000)
        assert store.is_covered("R", Box(((5, 10),)))

    def test_clock_monotonic(self):
        store = SemanticStore()
        with pytest.raises(ReproError):
            store.advance_clock(-1)

    def test_x_week_needs_window(self):
        with pytest.raises(ValueError):
            ConsistencyPolicy(ConsistencyLevel.X_WEEK)

    def test_rewriting_enabled_flag(self):
        assert ConsistencyPolicy.weak().rewriting_enabled
        assert ConsistencyPolicy.weeks(1).rewriting_enabled
        assert not ConsistencyPolicy.strong().rewriting_enabled
