"""Unit tests for expression trees and row layouts."""

import pytest

from repro.errors import SchemaError
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
    RowLayout,
    conjunction,
)


@pytest.fixture
def layout():
    return RowLayout(
        [("s", "country"), ("s", "id"), ("w", "id"), ("w", "temp")]
    )


class TestRowLayout:
    def test_qualified_resolution(self, layout):
        assert layout.resolve("s", "id") == 1
        assert layout.resolve("w", "id") == 2

    def test_unqualified_unique(self, layout):
        assert layout.resolve(None, "country") == 0
        assert layout.resolve(None, "temp") == 3

    def test_unqualified_ambiguous(self, layout):
        with pytest.raises(SchemaError):
            layout.resolve(None, "id")

    def test_unknown(self, layout):
        with pytest.raises(SchemaError):
            layout.resolve("s", "nope")
        with pytest.raises(SchemaError):
            layout.resolve(None, "nope")

    def test_has(self, layout):
        assert layout.has("s", "country")
        assert not layout.has("x", "country")

    def test_concat(self, layout):
        other = RowLayout([("p", "rank")])
        combined = layout.concat(other)
        assert combined.resolve("p", "rank") == 4

    def test_for_table(self):
        layout = RowLayout.for_table("t", ["a", "b"])
        assert layout.resolve("t", "b") == 1


class TestEvaluation:
    ROW = ("US", 1, 1, 21.5)

    def test_literal(self, layout):
        assert Literal(7).bind(layout)(self.ROW) == 7

    def test_column(self, layout):
        assert ColumnRef("w", "temp").bind(layout)(self.ROW) == 21.5

    def test_comparison_ops(self, layout):
        temp = ColumnRef("w", "temp")
        cases = {
            "=": False, "!=": True, "<": True, "<=": True, ">": False,
            ">=": False,
        }
        for op, expected in cases.items():
            check = Comparison(op, temp, Literal(30)).bind(layout)
            assert check(self.ROW) is expected, op

    def test_invalid_operator(self, layout):
        with pytest.raises(SchemaError):
            Comparison("~", Literal(1), Literal(2))

    def test_and_or_not(self, layout):
        true = Comparison("=", Literal(1), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert And((true, true)).bind(layout)(self.ROW)
        assert not And((true, false)).bind(layout)(self.ROW)
        assert Or((false, true)).bind(layout)(self.ROW)
        assert not Or((false, false)).bind(layout)(self.ROW)
        assert Not(false).bind(layout)(self.ROW)

    def test_in_list(self, layout):
        check = InList(
            ColumnRef("s", "country"), frozenset({"US", "CA"})
        ).bind(layout)
        assert check(self.ROW)
        check = InList(ColumnRef("s", "country"), frozenset({"DE"})).bind(layout)
        assert not check(self.ROW)

    def test_column_join_comparison(self, layout):
        check = Comparison(
            "=", ColumnRef("s", "id"), ColumnRef("w", "id")
        ).bind(layout)
        assert check(self.ROW)

    def test_conjunction_helpers(self, layout):
        assert conjunction([]).bind(layout)(self.ROW) is True
        single = Comparison("=", Literal(1), Literal(1))
        assert conjunction([single]) is single

    def test_columns_collection(self):
        expr = And(
            (
                Comparison("=", ColumnRef("s", "a"), Literal(1)),
                Comparison("<", ColumnRef("w", "b"), ColumnRef("s", "c")),
            )
        )
        names = {(ref.table, ref.column) for ref in expr.columns()}
        assert names == {("s", "a"), ("w", "b"), ("s", "c")}
