"""Planner parity oracle: pruned+cached planning vs the exhaustive DP.

The acceptance criterion of the pruned planner: on every workload
session, the optimized arm (B&B pruning on, plan cache on) must choose
byte-identical plans and spend byte-identical dollars to the unpruned,
uncached oracle — per query instance, not just in aggregate.  The chaos
arm replays the same sessions under deterministic fault injection (the
CI chaos seeds) to check pruning composes with the money-safe transport.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig
from repro.workloads.synthetic import make_join_graph

#: Must match the seeds the CI chaos job replays.
CHAOS_SEEDS = (7, 23, 101)


def _run_arms(workload: str, q: int, transport_for=lambda: None):
    """Replay one session through both arms, asserting per-instance parity."""
    data = make_workload(workload)
    instances = make_instances(workload, data, q)
    optimized, __ = build_system(
        "payless", data, transport=transport_for()
    )
    oracle, __ = build_system(
        "payless", data, transport=transport_for(),
        prune=False, plan_cache_size=0,
    )
    assert instances, "session must not be empty"
    for instance in instances:
        a = optimized.query(instance.sql, instance.params)
        b = oracle.query(instance.sql, instance.params)
        assert a.plan.describe() == b.plan.describe(), instance.sql
        assert a.stats.transactions == b.stats.transactions, instance.sql
        assert a.stats.price == pytest.approx(b.stats.price), instance.sql
        assert a.stats.calls == b.stats.calls, instance.sql
        assert sorted(a.rows) == sorted(b.rows), instance.sql
    assert optimized.total_price == pytest.approx(oracle.total_price)
    assert optimized.total_transactions == oracle.total_transactions


class TestWorkloadSessions:
    def test_weather_session_parity(self):
        _run_arms("real", 2)

    def test_tpch_session_parity(self):
        _run_arms("tpch", 1)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_weather_session_parity_under_chaos(self, seed):
        _run_arms(
            "real",
            1,
            transport_for=lambda: TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.3),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tpch_session_parity_under_chaos(self, seed):
        _run_arms(
            "tpch",
            1,
            transport_for=lambda: TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.3),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
        )


class TestSyntheticGraphs:
    """Chosen-plan equality on chain/star/clique at n ≤ 8 (executed)."""

    @pytest.mark.parametrize(
        "shape,n",
        [("chain", 6), ("chain", 8), ("star", 6), ("star", 8), ("clique", 5)],
    )
    def test_executed_parity(self, shape, n):
        data = make_join_graph(shape, n)
        optimized, __ = build_system("payless", data)
        oracle, __ = build_system(
            "payless", data, prune=False, plan_cache_size=0
        )
        # Twice: cold, then against a warm store (and a cache hit on the
        # optimized arm — the hit must not change spend or rows either).
        for __ in range(2):
            a = optimized.query(data.sql)
            b = oracle.query(data.sql)
            assert a.plan.describe() == b.plan.describe()
            assert a.stats.transactions == b.stats.transactions
            assert a.stats.price == pytest.approx(b.stats.price)
            assert sorted(a.rows) == sorted(b.rows)
