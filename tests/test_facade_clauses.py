"""End-to-end coverage of the remaining SQL clauses through the facade."""

import pytest


class TestOrdering:
    def test_order_by_desc(self, mini_payless):
        result = mini_payless.query(
            "SELECT Date, Temperature FROM Weather "
            "WHERE StationID = 3 ORDER BY Temperature DESC"
        )
        temps = [row[1] for row in result.rows]
        assert temps == sorted(temps, reverse=True)

    def test_order_by_multiple_keys(self, mini_payless):
        result = mini_payless.query(
            "SELECT Country, StationID FROM Station "
            "ORDER BY Country DESC, StationID ASC"
        )
        assert result.rows[0][0] == "CountryB"
        station_ids = [r[1] for r in result.rows if r[0] == "CountryB"]
        assert station_ids == sorted(station_ids)

    def test_limit(self, mini_payless):
        result = mini_payless.query(
            "SELECT * FROM Weather ORDER BY Date LIMIT 3"
        )
        assert len(result.rows) == 3

    def test_limit_zero(self, mini_payless):
        result = mini_payless.query("SELECT * FROM Station LIMIT 0")
        assert result.rows == []


class TestDistinct:
    def test_select_distinct(self, mini_payless):
        result = mini_payless.query("SELECT DISTINCT Country FROM Weather")
        assert sorted(r[0] for r in result.rows) == ["CountryA", "CountryB"]

    def test_group_by_without_aggregate(self, mini_payless):
        result = mini_payless.query(
            "SELECT City FROM Station GROUP BY City"
        )
        assert len(result.rows) == 4


class TestResidualPredicates:
    def test_float_filter_applied_locally(self, mini_payless):
        result = mini_payless.query(
            "SELECT * FROM Weather WHERE Temperature >= 60.0"
        )
        assert all(row[3] >= 60.0 for row in result.rows)
        # Station 6 days 1-10 = temps 61..70, station 5 day 10 = 60.
        assert len(result.rows) == 11

    def test_not_equal_filter(self, mini_payless):
        result = mini_payless.query(
            "SELECT DISTINCT City FROM Station WHERE City != 'Alpha'"
        )
        assert sorted(r[0] for r in result.rows) == ["Beta", "Delta", "Gamma"]

    def test_between_on_date(self, mini_payless):
        result = mini_payless.query(
            "SELECT COUNT(*) FROM Weather WHERE Date BETWEEN 2 AND 4"
        )
        assert result.rows == [(18,)]  # 6 stations x 3 days


class TestAliases:
    def test_table_alias(self, mini_payless):
        result = mini_payless.query(
            "SELECT s.City FROM Station s WHERE s.Country = 'CountryB'"
        )
        assert {row[0] for row in result.rows} == {"Delta"}

    def test_column_alias(self, mini_payless):
        result = mini_payless.query(
            "SELECT COUNT(*) AS n FROM Station"
        )
        assert result.columns == ["n"]
        assert result.rows == [(6,)]


class TestOrganizationEdge:
    def test_unattributed_spend_reported(self, mini_payless):
        from repro.core.organization import Organization

        organization = Organization(mini_payless)
        organization.user("alice")
        # Spend outside any session:
        mini_payless.query("SELECT * FROM Station")
        assert "unattributed" in organization.spend_report()


class TestPersistenceWithPluginStatistic:
    def test_round_trip_without_isomer(self, mini_weather_market, tmp_path):
        from repro import PayLess
        from repro.core.persistence import load_state, save_state

        first = PayLess.full(mini_weather_market, statistic="uniform")
        first.register_dataset("WHW")
        first.query("SELECT * FROM Station")
        save_state(first, tmp_path / "state.json")

        second = PayLess.full(mini_weather_market, statistic="uniform")
        second.register_dataset("WHW")
        load_state(second, tmp_path / "state.json")
        assert second.query("SELECT * FROM Station").transactions == 0
