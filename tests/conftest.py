"""Shared fixtures: a small deterministic weather market and buyer setup,
plus the golden-file machinery for the EXPLAIN rendering tests."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import (
    BindingPattern,
    Database,
    DataMarket,
    Dataset,
    PayLess,
    PricingPolicy,
    Table,
)
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T

GOLDENS_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden renderings under tests/goldens/ instead "
        "of comparing against them",
    )


#: Wall-clock measurements in renderings (the EXPLAIN ANALYZE local-eval
#: line) are nondeterministic; the golden fixture scrubs them to fixed
#: placeholders before comparing *and* before writing.
_TIMING_SCRUBS = (
    (re.compile(r"\d+(?:\.\d+)? ms"), "<ms> ms"),
    (re.compile(r"[\d,]+(?:\.\d+)? rows/sec"), "<rate> rows/sec"),
)


def _scrub_timings(text: str) -> str:
    for pattern, placeholder in _TIMING_SCRUBS:
        text = pattern.sub(placeholder, text)
    return text


@pytest.fixture
def golden(request):
    """Compare a rendered string against ``tests/goldens/<name>.txt``.

    ``pytest --update-goldens`` rewrites the files instead of comparing,
    which is how a rendering change gets reviewed: the golden diff IS the
    review artifact.  Timing numbers are scrubbed on both sides so the
    goldens stay deterministic.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, actual: str) -> None:
        actual = _scrub_timings(actual)
        path = GOLDENS_DIR / f"{name}.txt"
        if update:
            GOLDENS_DIR.mkdir(exist_ok=True)
            path.write_text(actual + "\n")
            return
        assert path.exists(), (
            f"golden file {path} is missing; run "
            f"`pytest --update-goldens` and commit the result"
        )
        expected = path.read_text()[:-1]  # strip the trailing newline
        assert actual == expected, (
            f"rendering diverges from golden {path.name}; if the change is "
            f"intended, re-run with --update-goldens and review the diff\n"
            f"--- golden ---\n{expected}\n--- actual ---\n{actual}"
        )

    return check


@pytest.fixture
def mini_weather_market():
    """A tiny WHW-like market: 2 countries, 6 stations, 10 days.

    Station layout:
      CountryA: Alpha (ids 1, 2), Beta (id 3), Gamma (id 4)
      CountryB: Delta (ids 5, 6)
    Weather: one row per station per day 1..10, Temperature = sid*10 + day.
    """
    countries = ["CountryA", "CountryB"]
    cities = ["Alpha", "Beta", "Gamma", "Delta"]
    stations = [
        ("CountryA", 1, "Alpha"),
        ("CountryA", 2, "Alpha"),
        ("CountryA", 3, "Beta"),
        ("CountryA", 4, "Gamma"),
        ("CountryB", 5, "Delta"),
        ("CountryB", 6, "Delta"),
    ]
    weather = [
        (country, sid, day, float(sid * 10 + day))
        for country, sid, __ in stations
        for day in range(1, 11)
    ]
    station_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, 6)),
            Attribute("City", T.STRING, Domain.categorical(cities)),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, 6)),
            Attribute("Date", T.DATE, Domain.numeric(1, 10)),
            Attribute("Temperature", T.FLOAT),
        ]
    )
    dataset = Dataset("WHW", PricingPolicy(tuples_per_transaction=10))
    dataset.add_table(
        Table("Station", station_schema, stations),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


@pytest.fixture
def mini_payless(mini_weather_market):
    """A registered PayLess installation over the mini market."""
    payless = PayLess.full(mini_weather_market)
    payless.register_dataset("WHW")
    return payless


@pytest.fixture
def mini_payless_with_local(mini_weather_market):
    """Same, plus a local CityInfo table mapping cities to zones."""
    zipmap_schema = Schema(
        [
            Attribute("City", T.STRING),
            Attribute("Zone", T.INT),
        ]
    )
    local = Table(
        "CityInfo",
        zipmap_schema,
        [("Alpha", 1), ("Beta", 1), ("Gamma", 2), ("Delta", 3)],
    )
    database = Database([local])
    payless = PayLess.full(mini_weather_market, local_db=database)
    payless.register_dataset("WHW")
    return payless
