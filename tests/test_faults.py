"""Chaos suite for the money-safe transport.

The invariants that make fault injection safe to leave on:

* **at-most-once billing** — with idempotency keys, retries after a lost
  response replay for free, so the spend of a chaos run whose calls all
  eventually succeed is *bit-identical* to the fault-free run (the
  Figure 10 series doesn't move);
* **waste is accounted, not hidden** — a charge whose data never arrived
  moves to ``ledger.wasted_on_failures`` instead of inflating the spend;
* **the store is never poisoned** — only completed fetches are recorded,
  so a failed query's retry pays only for what is actually missing;
* **determinism** — the same seed replays the same faults, retries, and
  bill, even under the parallel fetch pool.

``CHAOS_SEEDS`` matches the seeds the CI chaos job runs.
"""

import pytest

from repro.errors import (
    MarketError,
    MarketUnavailableError,
    RetryExhaustedError,
    TransportError,
)
from repro.market.faults import FaultKind, FaultPolicy
from repro.market.rest import RestRequest
from repro.market.transport import (
    BreakerState,
    CircuitBreaker,
    MarketTransport,
    TransportConfig,
)
from repro.relational.query import AttributeConstraint
from repro.testing import oracle_evaluate, registered_payless, tiny_weather_market

CHAOS_SEEDS = (7, 23, 101)

JOIN_SQL = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Alpha' AND Station.StationID = Weather.StationID"
)
SESSION = (
    JOIN_SQL,
    "SELECT * FROM Station",
    "SELECT Temperature FROM Weather WHERE Country = 'CountryA'",
)


def weather_request(station: int = 1) -> RestRequest:
    return RestRequest(
        "WHW", "Weather", (AttributeConstraint("StationID", value=station),)
    )


class TestFaultPolicy:
    def test_outcome_is_deterministic(self):
        policy = FaultPolicy.uniform(seed=7, rate=0.8)
        draws = [policy.outcome("key", attempt) for attempt in range(1, 10)]
        again = [policy.outcome("key", attempt) for attempt in range(1, 10)]
        assert draws == again
        assert draws != [policy.outcome("other", a) for a in range(1, 10)]

    def test_consecutive_fault_cap_forces_success(self):
        policy = FaultPolicy(drop_rate=1.0, max_consecutive_faults=3)
        assert policy.outcome("key", 3) is FaultKind.DROPPED_RESPONSE
        assert policy.outcome("key", 4) is FaultKind.OK

    def test_rates_validated(self):
        with pytest.raises(MarketError):
            FaultPolicy(timeout_rate=0.6, drop_rate=0.6)
        with pytest.raises(MarketError):
            FaultPolicy(error_rate=-0.1)
        with pytest.raises(MarketError):
            FaultPolicy.uniform(seed=0, rate=1.5)

    def test_uniform_splits_rate(self):
        policy = FaultPolicy.uniform(seed=0, rate=0.4)
        assert policy.timeout_rate == pytest.approx(0.1)
        assert policy.drop_rate == pytest.approx(0.1)
        assert policy.duplicate_rate == pytest.approx(0.1)

    def test_config_validated(self):
        with pytest.raises(MarketError):
            TransportConfig(max_retries=-1)
        with pytest.raises(MarketError):
            TransportConfig(jitter=2.0)
        with pytest.raises(MarketError):
            TransportConfig(breaker_failure_threshold=0)


class TestAtMostOnceBilling:
    def test_dropped_response_retry_is_free(self):
        """The dangerous fault: billed server-side, response lost."""
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(drop_rate=1.0, max_consecutive_faults=2),
                max_retries=4,
            ),
        )
        result = transport.fetch(weather_request())
        assert result.attempts == 3  # two drops, then the forced success
        assert result.replayed
        # Billed exactly once; the two lost responses replayed for free.
        assert market.ledger.total_calls == 1
        assert market.replay_count == 2
        clean = tiny_weather_market()
        clean.get(weather_request())
        assert market.ledger.total_transactions == clean.ledger.total_transactions
        assert market.ledger.total_price == pytest.approx(
            clean.ledger.total_price
        )
        assert not market.ledger.wasted_on_failures

    def test_naive_client_double_bills(self):
        """Without keys every retry of a dropped response pays again."""
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(drop_rate=1.0, max_consecutive_faults=2),
                max_retries=4,
                idempotency=False,
            ),
        )
        result = transport.fetch(weather_request())
        assert result.attempts == 3
        clean = tiny_weather_market()
        clean.get(weather_request())
        assert market.ledger.total_calls == 3
        assert (
            market.ledger.total_transactions
            == 3 * clean.ledger.total_transactions
        )

    def test_duplicate_delivery_is_free_with_keys(self):
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(duplicate_rate=1.0), max_retries=0
            ),
        )
        scope = transport.new_scope()
        transport.fetch(weather_request(), scope)
        assert market.ledger.total_calls == 1  # second delivery replayed
        assert market.replay_count == 1
        assert scope.replays == 1

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_fig10_transactions_identical_faults_on_vs_off(self, seed):
        """Acceptance criterion: when every call eventually succeeds, the
        chaos run's spend is bit-identical to the fault-free run."""
        faulty = registered_payless(
            tiny_weather_market(),
            transport=TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.5),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
        )
        clean = registered_payless(tiny_weather_market())
        faults_seen = 0
        for sql in SESSION:
            a = faulty.query(sql)
            b = clean.query(sql)
            assert a.stats.transactions == b.stats.transactions
            assert a.stats.price == pytest.approx(b.stats.price)
            assert a.stats.calls == b.stats.calls
            assert a.stats.wasted_transactions == 0
            assert sorted(a.rows) == sorted(b.rows)
            faults_seen += a.stats.faults_injected
        assert faults_seen > 0, "rate 0.5 must actually inject something"
        spent = faulty.market.ledger.spent
        assert spent.transactions == clean.market.ledger.total_transactions
        assert spent.price == pytest.approx(clean.market.ledger.total_price)
        assert not faulty.market.ledger.wasted_on_failures


class TestWasteAccounting:
    def test_terminal_failure_moves_charge_to_wasted(self):
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(drop_rate=1.0, max_consecutive_faults=None),
                max_retries=1,
                breaker_failure_threshold=100,
            ),
        )
        scope = transport.new_scope()
        with pytest.raises(RetryExhaustedError) as excinfo:
            transport.fetch(weather_request(), scope)
        assert excinfo.value.attempts == 2
        assert excinfo.value.elapsed_ms > 0
        # The drop billed once; that charge is waste, not spend.
        assert market.ledger.total_transactions == 0
        assert not market.ledger.spent
        assert market.ledger.wasted_on_failures.transactions == 1
        assert scope.wasted_transactions == 1
        assert scope.wasted_price == pytest.approx(
            market.ledger.wasted_on_failures.price
        )

    def test_pure_transport_faults_cost_nothing(self):
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(
                    timeout_rate=1.0, max_consecutive_faults=None
                ),
                max_retries=2,
                breaker_failure_threshold=100,
            ),
        )
        with pytest.raises(RetryExhaustedError):
            transport.fetch(weather_request())
        assert market.ledger.total_calls == 0
        assert not market.ledger.wasted_on_failures

    def test_non_transient_market_errors_are_not_retried(self):
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(faults=FaultPolicy(seed=0), max_retries=5),
        )
        bad = RestRequest("WHW", "NoSuchTable", ())
        with pytest.raises(MarketError) as excinfo:
            transport.fetch(bad)
        assert not isinstance(excinfo.value, TransportError)

    def test_retry_budget_exhaustion(self):
        market = tiny_weather_market()
        transport = MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(
                    timeout_rate=1.0, max_consecutive_faults=None
                ),
                max_retries=100,
                retry_budget=3,
                breaker_failure_threshold=1000,
            ),
        )
        scope = transport.new_scope()
        with pytest.raises(MarketUnavailableError, match="retry budget"):
            transport.fetch(weather_request(), scope)
        assert scope.retries == 3


class TestCircuitBreaker:
    def test_unit_transitions(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=1000.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)
        breaker.on_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.on_failure(1.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(500.0)  # still cooling down
        assert breaker.allow(1001.0)  # half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(1001.0)  # only one probe at a time
        breaker.on_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.on_failure(0.0)
        assert breaker.allow(200.0)
        breaker.on_failure(200.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(250.0)

    def _failing_transport(self, market):
        return MarketTransport(
            market,
            TransportConfig(
                faults=FaultPolicy(
                    timeout_rate=1.0, max_consecutive_faults=None
                ),
                max_retries=0,
                breaker_failure_threshold=2,
                breaker_cooldown_ms=1000.0,
            ),
        )

    def test_open_circuit_fails_fast_without_contacting_market(self):
        market = tiny_weather_market()
        transport = self._failing_transport(market)
        for __ in range(2):
            with pytest.raises(RetryExhaustedError):
                transport.fetch(weather_request())
        assert transport.breaker_for("WHW").state is BreakerState.OPEN
        with pytest.raises(MarketUnavailableError, match="circuit open"):
            transport.fetch(weather_request())
        assert market.ledger.total_calls == 0

    def test_probe_after_cooldown_closes_circuit(self):
        market = tiny_weather_market()
        transport = self._failing_transport(market)
        for __ in range(2):
            with pytest.raises(RetryExhaustedError):
                transport.fetch(weather_request())
        transport.advance_clock(1000.0)
        transport.faults = FaultPolicy(seed=0)  # network healed
        result = transport.fetch(weather_request())
        assert result.attempts == 1
        assert transport.breaker_for("WHW").state is BreakerState.CLOSED

    def test_failed_probe_reopens_circuit(self):
        market = tiny_weather_market()
        transport = self._failing_transport(market)
        for __ in range(2):
            with pytest.raises(RetryExhaustedError):
                transport.fetch(weather_request())
        transport.advance_clock(1000.0)
        with pytest.raises(RetryExhaustedError):
            transport.fetch(weather_request())
        assert transport.breaker_for("WHW").state is BreakerState.OPEN


class TestGracefulDegradation:
    #: timeout_rate=0.5 at this seed fails exactly one of JOIN_SQL's three
    #: calls — the mixed outcome both tests below rely on.
    MIXED = dict(seed=0, timeout_rate=0.5, max_consecutive_faults=None)

    def _payless(self, partial_results: bool):
        return registered_payless(
            tiny_weather_market(),
            transport=TransportConfig(
                faults=FaultPolicy(**self.MIXED),
                max_retries=0,
                breaker_failure_threshold=10_000,
                partial_results=partial_results,
            ),
        )

    def test_default_raises_market_unavailable(self):
        payless = self._payless(partial_results=False)
        with pytest.raises(MarketUnavailableError) as excinfo:
            payless.query(JOIN_SQL)
        assert len(excinfo.value.failed) == 1
        assert payless.queries_executed == 0  # no half-recorded query

    def test_partial_results_returns_arrived_rows(self):
        payless = self._payless(partial_results=True)
        result = payless.query(JOIN_SQL)
        assert not result.stats.complete
        assert result.stats.failed_calls == 1
        assert result.stats.calls >= 1  # the siblings that did arrive
        oracle = sorted(oracle_evaluate(payless, JOIN_SQL).rows)
        got = sorted(result.rows)
        assert 0 < len(got) < len(oracle)
        assert all(row in oracle for row in got)

    @pytest.mark.parametrize("partial_results", [False, True])
    def test_store_never_poisoned(self, partial_results):
        """After a failed/partial query, healing the network and retrying
        pays only for the regions that never arrived and matches the
        oracle — failed boxes were never recorded as covered."""
        payless = self._payless(partial_results)
        if partial_results:
            payless.query(JOIN_SQL)
        else:
            with pytest.raises(MarketUnavailableError):
                payless.query(JOIN_SQL)
        spent_before = payless.market.ledger.spent.transactions
        payless.context.transport.faults = None
        retry = payless.query(JOIN_SQL)
        assert sorted(retry.rows) == sorted(
            oracle_evaluate(payless, JOIN_SQL).rows
        )
        # The retry bought the one failed region, nothing twice.
        assert retry.stats.transactions == 1
        assert (
            payless.market.ledger.spent.transactions
            == spent_before + retry.stats.transactions
        )


class TestDeterministicReplay:
    QUERIES = (
        "SELECT Temperature FROM Weather "
        "WHERE Country = 'CountryA' AND Date >= 2 AND Date <= 29",
        "SELECT Temperature FROM Weather WHERE Country = 'CountryA'",
        JOIN_SQL,
    )

    @staticmethod
    def _install(seed: int):
        return registered_payless(
            tiny_weather_market(days=30),
            transport=TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.4),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
            max_concurrent_calls=8,
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_seed_replays_bit_identically_under_parallel_fetch(
        self, seed
    ):
        first, second = self._install(seed), self._install(seed)
        for sql in self.QUERIES:
            a = first.query(sql)
            b = second.query(sql)
            assert (
                a.stats.transactions,
                a.stats.calls,
                a.stats.retries,
                a.stats.faults_injected,
                a.stats.replays,
                a.stats.wasted_transactions,
            ) == (
                b.stats.transactions,
                b.stats.calls,
                b.stats.retries,
                b.stats.faults_injected,
                b.stats.replays,
                b.stats.wasted_transactions,
            )
            assert a.stats.price == pytest.approx(b.stats.price)
            assert sorted(a.rows) == sorted(b.rows)
        assert (
            first.market.ledger.total_transactions
            == second.market.ledger.total_transactions
        )


class TestQueryStatsApi:
    def test_stats_carries_everything(self):
        payless = registered_payless(tiny_weather_market())
        result = payless.query("SELECT * FROM Station")
        stats = result.stats
        assert stats.transactions > 0
        assert stats.calls > 0
        assert stats.complete
        assert stats.retries == 0
        assert stats.failed_fetches == ()

    def test_old_attributes_forward_with_deprecation(self):
        payless = registered_payless(tiny_weather_market())
        result = payless.query("SELECT * FROM Station")
        with pytest.warns(DeprecationWarning, match="stats.transactions"):
            assert result.transactions == result.stats.transactions
        with pytest.warns(DeprecationWarning, match="stats.price"):
            assert result.price == result.stats.price

    def test_top_level_exports(self):
        import repro

        for name in (
            "PayLess",
            "DataMarket",
            "QueryResult",
            "QueryStats",
            "FaultPolicy",
            "TransportConfig",
            "TransportError",
            "RetryExhaustedError",
            "MarketUnavailableError",
        ):
            assert hasattr(repro, name), name
        assert issubclass(repro.RetryExhaustedError, repro.TransportError)
        assert issubclass(repro.TransportError, repro.MarketError)
