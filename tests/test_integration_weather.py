"""Integration: the paper's Q1-Q5 templates on generated data vs an oracle.

Runs every Table 1 template through the full stack (parser → optimizer →
rewriter → market → executor → local engine) and checks the result equals
evaluating the same query over full local copies of the market tables.
"""

import pytest

from repro.bench.harness import build_system
from repro.relational.database import Database
from repro.relational.engine import evaluate
from repro.relational.table import Table
from repro.workloads.weather import (
    TEMPLATES,
    WeatherConfig,
    WeatherInstanceGenerator,
    generate_weather_workload,
)


@pytest.fixture(scope="module")
def setup():
    data = generate_weather_workload(
        WeatherConfig(
            countries=2,
            stations_per_country=6,
            cities_per_country=4,
            days=15,
            zip_codes_per_city=2,
            max_rank=20,
            tuples_per_transaction=10,
        )
    )
    payless, __ = build_system("payless", data)
    generator = WeatherInstanceGenerator(data, seed=23)
    return data, payless, generator


def oracle(payless, sql, params):
    database = Database()
    logical = payless.compile(sql, params)
    for name in logical.tables:
        if payless.context.is_market(name):
            __, market_table = payless.market.find_table(name)
            clone = Table(name, market_table.schema)
            clone.extend(market_table.table.rows)
            database.add(clone)
        else:
            database.add(payless.local_db.table(name))
    return evaluate(database, logical)


@pytest.mark.parametrize("template", sorted(TEMPLATES))
def test_template_matches_oracle(setup, template):
    __, payless, generator = setup
    for __round in range(3):
        instance = generator.instance(template)
        result = payless.query(instance.sql, instance.params)
        expected = oracle(payless, instance.sql, instance.params)
        got = sorted(result.rows, key=repr)
        want = sorted(expected.rows, key=repr)
        if template in ("Q2", "Q3"):
            # Aggregates: compare group keys and approximate values.
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g[:-1] == w[:-1]
                assert g[-1] == pytest.approx(w[-1])
        else:
            assert got == want


def test_session_cheaper_than_download(setup):
    data, payless, generator = setup
    for instance in generator.session(3):
        payless.query(instance.sql, instance.params)
    download_bound = sum(
        -(-len(mt.table) // 10)
        for ds in data.datasets
        for mt in ds
    )
    assert payless.total_transactions <= download_bound * 2


def test_spend_flattens_once_everything_cached(setup):
    """After enough queries the store covers the hot regions: a second
    replay of the same session must be free."""
    data, payless, generator = setup
    session = generator.session(2)
    for instance in session:
        payless.query(instance.sql, instance.params)
    replay_cost = sum(
        payless.query(i.sql, i.params).transactions for i in session
    )
    assert replay_cost == 0
