"""Explicit JOIN ... ON syntax (sugar over comma-join + WHERE)."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlparser.parser import parse
from repro.testing import assert_matches_oracle, registered_payless, tiny_weather_market


@pytest.fixture
def payless():
    return registered_payless(tiny_weather_market())


class TestParsing:
    def test_join_on_parses(self):
        statement = parse(
            "SELECT * FROM Station JOIN Weather "
            "ON Station.StationID = Weather.StationID"
        )
        assert [t.name for t in statement.tables] == ["Station", "Weather"]
        assert statement.where is not None

    def test_inner_join_keyword(self):
        statement = parse(
            "SELECT * FROM A INNER JOIN B ON A.x = B.y"
        )
        assert [t.name for t in statement.tables] == ["A", "B"]

    def test_join_on_merges_with_where(self):
        statement = parse(
            "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.z = 1"
        )
        from repro.sqlparser import ast

        assert isinstance(statement.where, ast.AndExpr)
        assert len(statement.where.operands) == 2

    def test_multiple_joins(self):
        statement = parse(
            "SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y"
        )
        assert [t.name for t in statement.tables] == ["A", "B", "C"]

    def test_compound_on_condition(self):
        statement = parse(
            "SELECT * FROM A JOIN B ON A.x = B.x AND A.y = B.y"
        )
        from repro.sqlparser import ast

        assert isinstance(statement.where, ast.AndExpr)

    def test_join_without_on_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM A JOIN B")

    def test_mixed_comma_and_join(self):
        statement = parse(
            "SELECT * FROM A, B JOIN C ON B.x = C.x"
        )
        assert [t.name for t in statement.tables] == ["A", "B", "C"]


class TestEndToEnd:
    def test_join_on_equivalent_to_comma_form(self, payless):
        join_form = payless.query(
            "SELECT Temperature FROM Station JOIN Weather "
            "ON Station.StationID = Weather.StationID "
            "WHERE City = 'Alpha'"
        )
        comma_form = payless.query(
            "SELECT Temperature FROM Station, Weather "
            "WHERE Station.StationID = Weather.StationID AND City = 'Alpha'"
        )
        assert sorted(join_form.rows) == sorted(comma_form.rows)

    def test_join_on_matches_oracle(self, payless):
        assert_matches_oracle(
            payless,
            "SELECT City, AVG(Temperature) FROM Station JOIN Weather "
            "ON Station.StationID = Weather.StationID GROUP BY City",
        )

    def test_join_with_alias(self, payless):
        result = payless.query(
            "SELECT w.Temperature FROM Station s JOIN Weather w "
            "ON s.StationID = w.StationID WHERE s.City = 'Beta'"
        )
        assert len(result.rows) == 10
