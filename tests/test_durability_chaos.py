"""Kill-mid-purchase chaos: crash at every WAL stage, recover, audit money.

The durable backend's claim is *at-most-once billing under kill-at-any-
byte*: whatever byte the buyer process dies at, recovery must (a) never
re-buy a box the crashed run already paid for, (b) never lose a purchase
that was billed, and (c) leave a store that answers every query
byte-identically to an uncrashed oracle.  These tests kill a run at every
WAL stage — before the record is written (``pre``), mid-frame (``torn``),
and after the frame but before the caller is acknowledged (``post``) —
for both intent and purchase records, under several crash-site seeds, and
audit the market's ledger against a fault-free oracle afterwards.
"""

from __future__ import annotations

import pytest

from repro import (
    BindingPattern,
    DataMarket,
    Dataset,
    PayLess,
    PricingPolicy,
    QueryOptions,
    Table,
    TransportConfig,
)
from repro.durable.backend import DurabilityConfig
from repro.durable.wal import SimulatedCrash, iter_records
from repro.market.faults import FaultPolicy
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T

#: Crash-site seeds: each picks a different append to die at.
SEEDS = (7, 23, 101)

#: The audited workload: overlapping ranges (rewrite remainders), a second
#: table, and a repeat (must be free) — every WAL record type appears.
QUERIES = (
    "SELECT StationID, Date, Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= 3 AND Date <= 5",
    "SELECT StationID, City FROM Station WHERE Country = 'CountryA'",
    "SELECT StationID, Date, Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= 4 AND Date <= 7",
    "SELECT StationID, Date, Temperature FROM Weather "
    "WHERE Country = 'CountryB' AND Date >= 1 AND Date <= 2",
)


def make_market() -> DataMarket:
    countries = ["CountryA", "CountryB"]
    cities = ["Alpha", "Beta", "Gamma", "Delta"]
    stations = [
        ("CountryA", 1, "Alpha"),
        ("CountryA", 2, "Alpha"),
        ("CountryA", 3, "Beta"),
        ("CountryA", 4, "Gamma"),
        ("CountryB", 5, "Delta"),
        ("CountryB", 6, "Delta"),
    ]
    weather = [
        (country, sid, day, float(sid * 10 + day))
        for country, sid, __ in stations
        for day in range(1, 11)
    ]
    station_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, 6)),
            Attribute("City", T.STRING, Domain.categorical(cities)),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, 6)),
            Attribute("Date", T.DATE, Domain.numeric(1, 10)),
            Attribute("Temperature", T.FLOAT),
        ]
    )
    dataset = Dataset("WHW", PricingPolicy(tuples_per_transaction=10))
    dataset.add_table(
        Table("Station", station_schema, stations),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


def build_durable(
    market: DataMarket, state_dir, faults: FaultPolicy | None = None
) -> PayLess:
    options = QueryOptions(
        durability=DurabilityConfig(state_dir=state_dir),
        transport=TransportConfig(faults=faults) if faults else None,
    )
    payless = PayLess.full(market, options=options)
    payless.register_dataset("WHW")
    payless.recover()
    return payless


def oracle_run() -> tuple[list[list[tuple]], DataMarket]:
    """The uncrashed, fault-free, in-memory reference run."""
    market = make_market()
    payless = PayLess.full(market)
    payless.register_dataset("WHW")
    rows = [sorted(payless.query(sql).relation.rows) for sql in QUERIES]
    return rows, market


class CrashAt:
    """Arm a WAL crash at the ``ordinal``-th append of record type ``kind``.

    ``stage`` picks the byte to die at: ``pre`` writes nothing of the
    frame, ``torn`` writes half of it, ``post`` writes all of it but
    raises before the caller is acknowledged.
    """

    CUTS = ("pre", "torn", "post")

    def __init__(self, kind: str, ordinal: int, stage: str):
        self.kind = kind
        self.ordinal = ordinal
        self.stage = stage
        self.seen = 0
        self.fired = False

    def __call__(self, payload: dict, frame: bytes) -> int | None:
        if self.fired or payload.get("t") != self.kind:
            return None
        self.seen += 1
        if self.seen < self.ordinal:
            return None
        self.fired = True
        if self.stage == "pre":
            return 0
        if self.stage == "torn":
            return len(frame) // 2
        return len(frame)


def run_workload_until_crash(payless: PayLess) -> list | None:
    """Run QUERIES; on SimulatedCrash, abandon the WAL (the kill) and
    return None.  Without a crash, return the per-query sorted rows."""
    rows = []
    try:
        for sql in QUERIES:
            rows.append(sorted(payless.query(sql).relation.rows))
    except SimulatedCrash:
        payless.durability.abandon()
        return None
    return rows


def assert_at_most_once_billing(market: DataMarket) -> None:
    """No idempotency key is billed by more than one ledger entry."""
    seen: dict[str, int] = {}
    for entry in market.ledger:
        if entry.idempotency_key is None:
            continue
        seen[entry.idempotency_key] = seen.get(entry.idempotency_key, 0) + 1
    doubled = {key: n for key, n in seen.items() if n > 1}
    assert not doubled, f"keys billed more than once: {doubled}"


def assert_bill_matches_ledger(payless: PayLess, market: DataMarket) -> None:
    """The buyer's durable bill agrees with the market's ledger."""
    bill = payless.durability.bill
    spent = market.ledger.spent
    wasted = market.ledger.wasted_on_failures
    assert bill.spent_transactions == spent.transactions
    assert bill.spent_price == pytest.approx(spent.price)
    assert bill.wasted_transactions == wasted.transactions
    assert bill.wasted_price == pytest.approx(wasted.price)


class TestStageCrashMatrix:
    """Kill at every stage of both money-bearing record types, at crash
    sites chosen by each seed, then recover *against the same market*
    (the billed-but-unacknowledged charge must be adopted, not re-billed).
    """

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("stage", CrashAt.CUTS)
    @pytest.mark.parametrize("kind", ("in", "buy"))
    def test_crash_recover_audit(self, tmp_path, seed, stage, kind):
        oracle_rows, oracle_market = oracle_run()
        market = make_market()
        state_dir = tmp_path / f"state-{kind}-{stage}-{seed}"

        crashed = build_durable(market, state_dir)
        hook = CrashAt(kind, ordinal=(seed % 3) + 1, stage=stage)
        crashed.durability.wal.crash_hook = hook
        survived = run_workload_until_crash(crashed)
        assert survived is None and hook.fired, "the workload must crash"

        recovered = build_durable(market, state_dir)
        assert recovered.durability.pending_intents == []
        rows = [
            sorted(recovered.query(sql).relation.rows) for sql in QUERIES
        ]
        assert rows == oracle_rows

        # The money audit: exactly the oracle's spend, nothing double-
        # billed, nothing lost, and the durable bill agrees with the
        # market's own ledger.
        spent = market.ledger.spent
        oracle_spent = oracle_market.ledger.spent
        assert spent.transactions == oracle_spent.transactions
        assert spent.price == pytest.approx(oracle_spent.price)
        assert not market.ledger.wasted_on_failures
        assert_at_most_once_billing(market)
        assert_bill_matches_ledger(recovered, market)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_billed_but_unlogged_purchase_is_adopted(self, tmp_path, seed):
        """The narrowest window: the market billed the call, the crash hit
        before the purchase record became durable.  Recovery must re-issue
        the intent's key and adopt the charge via the idempotency cache —
        the market's replay counter is the proof nothing was re-billed."""
        oracle_rows, oracle_market = oracle_run()
        market = make_market()
        state_dir = tmp_path / f"adopt-{seed}"

        crashed = build_durable(market, state_dir)
        hook = CrashAt("buy", ordinal=(seed % 3) + 1, stage="torn")
        crashed.durability.wal.crash_hook = hook
        assert run_workload_until_crash(crashed) is None
        billed_before = market.ledger.spent.transactions
        replays_before = market.replay_count

        recovered = build_durable(market, state_dir)
        report = recovered.durability
        assert market.replay_count > replays_before, (
            "recovery must adopt the orphaned charge via idempotency "
            "replay, not issue a fresh billed call"
        )
        assert market.ledger.spent.transactions == billed_before
        rows = [
            sorted(recovered.query(sql).relation.rows) for sql in QUERIES
        ]
        assert rows == oracle_rows
        assert (
            market.ledger.spent.transactions
            == oracle_market.ledger.spent.transactions
        )
        assert report.pending_intents == []


class TestFaultySeeds:
    """Crashes layered on transient market faults: retries, idempotency
    replays, and a kill mid-purchase all in one run."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_under_fault_injection(self, tmp_path, seed):
        oracle_rows, __ = oracle_run()
        market = make_market()
        faults = FaultPolicy.uniform(seed=seed, rate=0.08)
        state_dir = tmp_path / f"faulty-{seed}"

        crashed = build_durable(market, state_dir, faults=faults)
        hook = CrashAt("buy", ordinal=2, stage="torn")
        crashed.durability.wal.crash_hook = hook
        assert run_workload_until_crash(crashed) is None

        recovered = build_durable(market, state_dir, faults=faults)
        assert recovered.durability.pending_intents == []
        rows = [
            sorted(recovered.query(sql).relation.rows) for sql in QUERIES
        ]
        # Faults change the billing series (wasted charges), never the
        # answers; the oracle comparison is on results only.
        assert rows == oracle_rows
        assert_at_most_once_billing(market)
        assert_bill_matches_ledger(recovered, market)


class TestTruncatedPrefixSweep:
    """Recovery from *every* sampled truncation point of a real WAL: each
    prefix must recover cleanly into a fresh market and still produce the
    oracle's answers after re-running the workload."""

    def _workload_wal(self, tmp_path) -> bytes:
        market = make_market()
        payless = build_durable(market, tmp_path / "full-run")
        for sql in QUERIES:
            payless.query(sql)
        payless.durability.abandon()
        segment = tmp_path / "full-run" / "wal-00000001.log"
        return segment.read_bytes()

    def test_every_sampled_prefix_recovers(self, tmp_path):
        oracle_rows, oracle_market = oracle_run()
        data = self._workload_wal(tmp_path)
        records, valid = iter_records(data)
        assert valid == len(data) and len(records) >= len(QUERIES)

        # Frame boundaries plus intra-frame cuts around each boundary —
        # the byte positions where recovery behaviour can change.
        boundaries = [0]
        offset = 0
        from repro.durable.wal import encode_record

        for record in records:
            offset += len(encode_record(record))
            boundaries.append(offset)
        cuts = set(boundaries)
        for boundary in boundaries[1:]:
            cuts.add(boundary - 3)  # torn tail of the preceding frame
            cuts.add(boundary + 2)  # torn header of the following frame
        cuts = sorted(c for c in cuts if 0 <= c <= len(data))

        for cut in cuts:
            market = make_market()
            state_dir = tmp_path / f"cut-{cut}"
            state_dir.mkdir()
            (state_dir / "wal-00000001.log").write_bytes(data[:cut])
            payless = build_durable(market, state_dir)
            assert payless.durability.pending_intents == []
            rows = [
                sorted(payless.query(sql).relation.rows) for sql in QUERIES
            ]
            assert rows == oracle_rows, f"divergence at cut {cut}"
            # A prefix can only make the fresh market bill *less* than the
            # oracle (replayed purchases cost nothing), never more.
            assert (
                market.ledger.spent.transactions
                <= oracle_market.ledger.spent.transactions
            ), f"overspend at cut {cut}"
            assert_at_most_once_billing(market)
