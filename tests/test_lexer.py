"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import TokenType


def kinds(sql):
    return [token.type for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_preserved(self):
        tokens = tokenize("Station")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "Station"

    def test_qualified_name_is_three_tokens(self):
        assert kinds("a.b")[:3] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]

    def test_eof_always_last(self):
        assert kinds("")[-1] is TokenType.EOF


class TestLiterals:
    def test_integer(self):
        assert values("42") == [42]

    def test_float(self):
        assert values("4.25") == [4.25]

    def test_string(self):
        assert values("'Seattle'") == ["Seattle"]

    def test_string_with_escaped_quote(self):
        assert values("'O''Hare'") == ["O'Hare"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_negative_after_operator(self):
        assert values("x = -5") == ["x", "=", -5]

    def test_minus_after_identifier_is_subtraction(self):
        # After an identifier '-' is the arithmetic operator, not a sign.
        assert kinds("x -5")[:3] == [
            TokenType.IDENTIFIER,
            TokenType.MINUS,
            TokenType.NUMBER,
        ]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "!="])
    def test_operator(self, op):
        assert values(f"a {op} b") == ["a", op, "b"]

    def test_angle_bracket_inequality(self):
        assert values("a <> b") == ["a", "!=", "b"]


class TestMisc:
    def test_parameter(self):
        assert kinds("?")[0] is TokenType.PARAMETER

    def test_star_comma_parens(self):
        assert kinds("*,()")[:4] == [
            TokenType.STAR,
            TokenType.COMMA,
            TokenType.LPAREN,
            TokenType.RPAREN,
        ]

    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_position_reported(self):
        with pytest.raises(SqlSyntaxError) as error:
            tokenize("a @ b")
        assert error.value.position == 2

    def test_whitespace_variants(self):
        assert values("a\t\nb") == ["a", "b"]
