"""Deprecation lint: the library must not call its own deprecated API.

The old scattered ``PayLess(...)`` keywords (``transport=``,
``engine=``, ``max_concurrent_calls=``, ``prune_bounding_boxes=``) and
``options=OptimizerOptions(...)`` survive for callers behind
``DeprecationWarning`` forwarders — but every internal construction
site must use :class:`~repro.core.objectives.QueryOptions`.  CI runs
this file as the deprecation-lint step.
"""

from __future__ import annotations

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Keyword arguments of ``PayLess(...)`` that only exist for backward
#: compatibility.  ``options=`` itself is fine — unless the value is a
#: literal ``OptimizerOptions(...)`` construction (checked separately).
DEPRECATED_KWARGS = frozenset(
    ("transport", "engine", "max_concurrent_calls", "prune_bounding_boxes")
)


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _payless_calls(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _callee_name(node) in (
            "PayLess",
            "full",
            "minimizing_calls",
            "without_sqr",
            "without_theorems",
        ):
            yield node


def _violations() -> list[str]:
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for call in _payless_calls(tree):
            for keyword in call.keywords:
                where = f"{path.relative_to(SRC.parent)}:{call.lineno}"
                if keyword.arg in DEPRECATED_KWARGS:
                    problems.append(
                        f"{where}: deprecated PayLess kwarg "
                        f"{keyword.arg!r} — fold it into QueryOptions"
                    )
                elif (
                    keyword.arg == "options"
                    and isinstance(keyword.value, ast.Call)
                    and _callee_name(keyword.value) == "OptimizerOptions"
                ):
                    problems.append(
                        f"{where}: PayLess(options=OptimizerOptions(...)) is "
                        "deprecated — construct a QueryOptions"
                    )
    return problems


def test_internal_code_avoids_deprecated_payless_kwargs():
    problems = _violations()
    assert not problems, "\n".join(problems)


def test_lint_actually_detects_violations():
    # Guard the guard: a synthetic violation must be caught.
    tree = ast.parse("PayLess(market, engine='reference')")
    calls = list(_payless_calls(tree))
    assert calls and any(k.arg == "engine" for k in calls[0].keywords)
