"""Unit tests for semantic query rewriting, incl. the Section 4.2 example."""

import pytest

from repro.core.rewriter import SemanticRewriter
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.consistency import ConsistencyPolicy
from repro.semstore.space import BoxSpace
from repro.semstore.store import SemanticStore
from repro.stats.catalog import Catalog


def build(policy=None, cardinality=297):
    """A 1-d table R(A[0,100]) with the Figure 6 coverage state."""
    schema = Schema([Attribute("A", T.INT), Attribute("V", T.FLOAT)])
    pattern = BindingPattern(table="R", modes={"A": AccessMode.FREE})
    statistics = BasicStatistics(cardinality, {"a": Domain.numeric(0, 100)})
    store = SemanticStore(policy)
    catalog = Catalog()
    space = BoxSpace.from_table("R", schema, pattern, statistics)
    entry = catalog.register("R", schema, space, statistics)
    store.register_table(entry.space, schema)
    return store, catalog, entry


def seed_figure6(store, entry):
    """Store V1=[10,20) (28 tuples) and V2=[30,60) (91 tuples); teach the
    histogram the exact counts of every region of Figure 6."""
    # Rows need valid A values inside the boxes for the store's points.
    rows_v1 = [(10 + i % 10, float(i)) for i in range(28)]
    rows_v2 = [(30 + i % 30, float(i + 100)) for i in range(91)]
    store.record("R", Box(((10, 20),)), rows_v1)
    store.record("R", Box(((30, 60),)), rows_v2)
    entry.histogram.observe(Box(((10, 20),)), 28)
    entry.histogram.observe(Box(((30, 60),)), 91)
    entry.histogram.observe(Box(((0, 10),)), 21)
    entry.histogram.observe(Box(((20, 30),)), 34)
    entry.histogram.observe(Box(((60, 101),)), 123)


class TestFigure6Example:
    def test_remainder_beats_naive_decomposition(self):
        store, catalog, entry = build()
        seed_figure6(store, entry)
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite("R", [AttributeConstraint("A", low=0, high=101)], 100)
        # The paper's Rem2: {[0,30): 1 transaction, [60,101): 2} = 3 total,
        # beating the naive Rem1 (4) by letting [0,30) overlap stored V1.
        assert result.estimated_transactions == 3
        boxes = sorted(q.box.extents for q in result.remainder)
        assert boxes == [((0, 30),), ((60, 101),)]
        assert result.used_rewriting

    def test_direct_fetch_when_store_empty(self):
        store, catalog, entry = build()
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=0, high=101)], 100
        )
        assert len(result.remainder) == 1
        assert result.remainder[0].box == Box(((0, 101),))
        # 297 estimated tuples -> 3 transactions.
        assert result.estimated_transactions == 3

    def test_fully_covered_is_free(self):
        store, catalog, entry = build()
        rows = [(k, float(k)) for k in range(0, 101)]
        store.record("R", Box(((0, 101),)), rows)
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=5, high=50)], 100
        )
        assert result.fully_covered
        assert result.estimated_transactions == 0
        assert result.remainder == []
        assert result.is_free

    def test_disabled_rewriter_fetches_direct(self):
        store, catalog, entry = build()
        seed_figure6(store, entry)
        rewriter = SemanticRewriter(store, catalog, enabled=False)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=0, high=101)], 100
        )
        assert not result.used_rewriting
        assert len(result.remainder) == 1

    def test_strong_consistency_forces_direct(self):
        store, catalog, entry = build(policy=ConsistencyPolicy.strong())
        seed_figure6(store, entry)
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=0, high=101)], 100
        )
        assert not result.used_rewriting
        assert result.estimated_transactions >= 3

    def test_empty_request_region(self):
        store, catalog, entry = build()
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=500, high=600)], 100
        )
        assert result.fully_covered and result.is_free

    def test_point_set_decomposes_into_calls(self):
        store, catalog, entry = build()
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", values=frozenset({3, 50}))], 100
        )
        assert len(result.request_boxes) == 2

    def test_instrumentation_counts_exposed(self):
        store, catalog, entry = build()
        seed_figure6(store, entry)
        rewriter = SemanticRewriter(store, catalog)
        result = rewriter.rewrite(
            "R", [AttributeConstraint("A", low=0, high=101)], 100
        )
        assert result.enumerated_boxes >= result.kept_boxes >= 1
