"""The public test-helper module must itself behave."""

import pytest

from repro.testing import (
    assert_matches_oracle,
    oracle_evaluate,
    registered_payless,
    tiny_weather_market,
)


class TestTinyMarket:
    def test_default_shape(self):
        market = tiny_weather_market()
        __, station = market.find_table("Station")
        __, weather = market.find_table("Weather")
        assert len(station.table) == 4
        assert len(weather.table) == 40

    def test_custom_stations(self):
        market = tiny_weather_market(
            stations=(("X", 7, "Solo"),), days=3
        )
        __, weather = market.find_table("Weather")
        assert len(weather.table) == 3
        assert weather.table.rows[0] == ("X", 7, 1, 71.0)


class TestOracle:
    def test_oracle_matches_plain_scan(self):
        payless = registered_payless(tiny_weather_market())
        relation = oracle_evaluate(payless, "SELECT * FROM Station")
        assert len(relation.rows) == 4

    def test_assert_matches_oracle_passes(self):
        payless = registered_payless(tiny_weather_market())
        assert_matches_oracle(
            payless,
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.StationID = Weather.StationID",
        )

    def test_assert_matches_oracle_catches_divergence(self):
        payless = registered_payless(tiny_weather_market())
        result = payless.query("SELECT * FROM Station")
        # Sabotage a cached row in place to force a divergence on the
        # repeat (keeps the row/point lists aligned with the point index).
        store = payless.store.table("Station")
        sabotaged = ("bogus",) + store._rows[-1][1:]  # noqa: SLF001
        store._rows[-1] = sabotaged  # noqa: SLF001
        with pytest.raises(AssertionError):
            assert_matches_oracle(payless, "SELECT * FROM Station")
