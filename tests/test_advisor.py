"""The hindsight advisor: per-table spend vs the bulk-download bound."""

import pytest

from repro.core.advisor import advise, report
from repro.testing import registered_payless, tiny_weather_market


@pytest.fixture
def payless():
    return registered_payless(tiny_weather_market())


class TestAdvise:
    def test_cold_start(self, payless):
        advice = {a.table: a for a in advise(payless)}
        assert set(advice) == {"Station", "Weather"}
        assert advice["Weather"].spent_transactions == 0
        assert advice["Weather"].download_cost == 4  # 40 rows at t=10
        assert advice["Weather"].coverage == 0.0
        assert "keep paying" in advice["Weather"].recommendation

    def test_partial_session(self, payless):
        payless.query("SELECT * FROM Weather WHERE Country = 'CountryA'")
        advice = {a.table: a for a in advise(payless)}
        weather = advice["Weather"]
        assert weather.spent_transactions == 3  # 30 rows at t=10
        assert 0.5 < weather.coverage < 1.0
        assert not weather.crossed_break_even

    def test_fully_cached(self, payless):
        payless.query("SELECT * FROM Weather")
        advice = {a.table: a for a in advise(payless)}
        assert advice["Weather"].coverage == 1.0
        assert "free" in advice["Weather"].recommendation

    def test_break_even_crossed_by_fragmented_fetching(self, payless):
        # Many tiny queries: each day of each country separately, paying
        # one transaction per call, exceeding the 4-transaction download.
        for country in ("CountryA", "CountryB"):
            for day in range(1, 11):
                payless.query(
                    "SELECT * FROM Weather WHERE Country = ? AND Date = ?",
                    (country, day),
                )
        advice = {a.table: a for a in advise(payless)}
        weather = advice["Weather"]
        assert weather.crossed_break_even
        assert weather.coverage == 1.0  # but it's all cached now

    def test_spend_bounded_after_coverage(self, payless):
        """The advisor's core claim: coverage caps future spend."""
        for country in ("CountryA", "CountryB"):
            payless.query(
                "SELECT * FROM Weather WHERE Country = ?", (country,)
            )
        before = payless.total_transactions
        payless.query("SELECT * FROM Weather")
        payless.query("SELECT * FROM Weather WHERE Date <= 5")
        assert payless.total_transactions == before


class TestReport:
    def test_report_renders(self, payless):
        payless.query("SELECT * FROM Station")
        text = report(payless)
        assert "Station" in text and "Weather" in text
        assert "spent" in text and "download" in text
