"""Differential trace tests: the same workload, traced under two regimes.

Each test replays a deterministic workload session (the weather workload
and the TPC-H multi-join workload) and compares the traces of two runs
that must relate in a known way:

* **store-cold vs store-warm** — replaying the session warms the
  semantic store, so the total purchased rows recorded in ``table_fetch``
  spans must strictly shrink pass over pass and reach zero;
* **first issue vs repeat** — repeat queries must show memo hits in the
  rewriter's ``memo`` events;
* **ledger vs spans** — every dollar the market billed must be
  attributable to exactly one ``table_fetch`` span (and the spend/waste
  split must agree with the ledger's);
* **faults off vs faults on** — with fault injection at the chaos seeds
  (7, 23, 101) the answers and *spent* money stay identical, and the
  extra waste shows up in the spans that caused it.
"""

import pytest

from repro.bench.figures import BenchProfile, make_instances, make_workload
from repro.bench.harness import build_system
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig
from repro.obs.metrics import MetricsRegistry
from repro.workloads.weather import WeatherConfig

SMALL = BenchProfile(
    weather_q=2,
    tpch_q=1,
    weather=WeatherConfig(
        countries=2, stations_per_country=4, cities_per_country=3, days=15
    ),
    tpch_scale=0.5,
    tuples_per_transaction=20,
)

CHAOS_SEEDS = (7, 23, 101)


def run_passes(workload, passes=2, transport=None, system="payless"):
    """Replay the session ``passes`` times through ONE installation.

    Returns the installation and one list of :class:`QueryResult` per
    pass; tracing is on, so every result carries its span tree.
    """
    data = make_workload(workload, SMALL)
    q = SMALL.weather_q if workload == "real" else SMALL.tpch_q
    instances = make_instances(workload, data, q, SMALL)
    payless, __ = build_system(
        system, data, transport=transport, tracing=True,
        metrics=MetricsRegistry(),
    )
    payless.tracer.keep = passes * len(instances) + 4
    results = []
    for __ in range(passes):
        results.append(
            [payless.query(i.sql, i.params) for i in instances]
        )
    return payless, results


def canonical_rows(result):
    """Rows sorted and with floats rounded: different plans aggregate in
    different orders, so float sums differ in the last couple of ulps."""
    return sorted(
        (
            tuple(
                round(value, 4) if isinstance(value, float) else value
                for value in row
            )
            for row in result.rows
        ),
        key=repr,
    )


def fetch_spans(result):
    return result.trace.spans("table_fetch")


def purchased_rows(results):
    return sum(
        span.attrs.get("purchased_rows", 0)
        for result in results
        for span in fetch_spans(result)
    )


def span_sum(results, attr):
    return sum(
        span.attrs.get(attr, 0)
        for result in results
        for span in fetch_spans(result)
    )


class TestColdWarmWeather:
    WORKLOAD = "real"

    def test_warm_purchased_rows_strictly_shrink_to_zero(self):
        __, (cold, warm, settled) = run_passes(self.WORKLOAD, passes=3)
        assert purchased_rows(cold) > 0
        assert purchased_rows(warm) < purchased_rows(cold)
        # Once every plan shape's region is stored, nothing is bought.
        assert purchased_rows(settled) == 0
        assert span_sum(settled, "transactions") == 0

    def test_repeat_queries_hit_the_memo(self):
        __, (cold, warm) = run_passes(self.WORKLOAD, passes=2)
        warm_hits = sum(
            1
            for result in warm
            for event in result.trace.spans("memo")
            if event.attrs.get("hit")
        )
        assert warm_hits > 0
        # The registry agrees with the events.
        metrics = warm[-1].stats.metrics
        assert metrics["memo_hits"] > 0
        assert 0.0 < metrics["memo_hit_rate"] <= 1.0

    def test_every_ledger_dollar_has_exactly_one_fetch_span(self):
        payless, passes = run_passes(self.WORKLOAD, passes=2)
        results = [result for one_pass in passes for result in one_pass]
        ledger = payless.market.ledger
        # Attribution: the ledger's billed totals equal the sums recorded
        # across table_fetch spans — each billed entry was bracketed by
        # exactly one span's ledger checkpoint, so nothing is counted
        # twice and nothing is dropped.
        assert span_sum(results, "billed_transactions") == (
            ledger.total_transactions
        )
        assert span_sum(results, "billed_price") == pytest.approx(
            ledger.total_price
        )
        assert span_sum(results, "calls") == ledger.total_calls
        # Per query, the spans' spent transactions equal the query's bill.
        for result in results:
            assert span_sum([result], "transactions") == (
                result.stats.transactions
            )

    def test_optimizer_traces_cheaper_than_naive_plans(self):
        """Differential across systems: full PayLess vs rewriting disabled.

        Both replay the identical session; the naive arm's spans must show
        at least as many purchased rows and transactions."""
        __, smart_passes = run_passes(self.WORKLOAD, passes=2)
        __, naive_passes = run_passes(
            self.WORKLOAD, passes=2, system="payless_nosqr"
        )
        smart = [r for one_pass in smart_passes for r in one_pass]
        naive = [r for one_pass in naive_passes for r in one_pass]
        assert span_sum(smart, "transactions") <= span_sum(
            naive, "transactions"
        )
        assert purchased_rows(smart) <= purchased_rows(naive)
        # And answers agree query by query.
        for a, b in zip(smart, naive):
            assert canonical_rows(a) == canonical_rows(b)


class TestColdWarmTpch(TestColdWarmWeather):
    """The same differential invariants over the TPC-H multi-join session."""

    WORKLOAD = "tpch"


class TestFaultSeeds:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faults_change_waste_not_answers_or_spend(self, seed):
        transport = TransportConfig(
            faults=FaultPolicy.uniform(seed=seed, rate=0.2), max_retries=6
        )
        __, (clean,) = run_passes("real", passes=1)
        faulty_payless, (faulty,) = run_passes(
            "real", passes=1, transport=transport
        )
        assert len(clean) == len(faulty)
        for a, b in zip(clean, faulty):
            assert canonical_rows(a) == canonical_rows(b)
            # Spent money is fault-invariant (at-most-once billing).
            assert a.stats.transactions == b.stats.transactions
        # Waste, if any, is attributed to the spans that caused it.
        ledger = faulty_payless.market.ledger
        assert span_sum(faulty, "wasted_transactions") == (
            ledger.wasted_on_failures.transactions
        )
        assert span_sum(faulty, "wasted_price") == pytest.approx(
            ledger.wasted_on_failures.price
        )
        # billed = spent + wasted, span-side and ledger-side alike.
        assert span_sum(faulty, "billed_transactions") == (
            ledger.total_transactions
        )
        assert span_sum(faulty, "billed_transactions") - span_sum(
            faulty, "wasted_transactions"
        ) == ledger.spent.transactions

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_call_spans_record_retries(self, seed):
        transport = TransportConfig(
            faults=FaultPolicy.uniform(seed=seed, rate=0.3), max_retries=8
        )
        __, (results,) = run_passes("real", passes=1, transport=transport)
        calls = [
            span
            for result in results
            for span in result.trace.spans("market_call")
        ]
        assert calls, "fault run issued no market calls"
        retried = [span for span in calls if span.attrs.get("retries", 0)]
        total_injected = sum(r.stats.faults_injected for r in results)
        if total_injected:
            assert retried, "faults were injected but no span shows retries"
        for span in calls:
            assert span.finished
            assert span.attrs["attempts"] >= 1
            assert span.attrs["retries"] == span.attrs["attempts"] - 1
