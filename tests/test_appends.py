"""Append-only datasets and their interplay with consistency levels.

Section 4.3 of the paper: datasets grow by periodic append; under *weak*
consistency PayLess keeps answering from its store (possibly missing newly
appended rows), *strong* always sees the latest data, and *X-week* sees
appends once the stored results age out of the window.
"""

import pytest

from repro import ConsistencyPolicy, DataMarket, PayLess
from repro.errors import MarketError

SQL = "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 10"
NEW_ROWS = [("CountryA", 1, 10, 99.0), ("CountryA", 2, 10, 98.0)]


def weather_table(market):
    __, market_table = market.find_table("Weather")
    return market_table


class TestSellerAppend:
    def test_append_grows_table(self, mini_weather_market):
        table = weather_table(mini_weather_market)
        before = len(table.table)
        assert table.append(NEW_ROWS) == 2
        assert len(table.table) == before + 2

    def test_append_outside_domain_rejected(self, mini_weather_market):
        table = weather_table(mini_weather_market)
        with pytest.raises(MarketError):
            table.append([("CountryZ", 1, 5, 1.0)])  # unpublished country
        with pytest.raises(MarketError):
            table.append([("CountryA", 1, 999, 1.0)])  # date off-domain

    def test_appended_rows_are_sold(self, mini_weather_market):
        from repro.market.rest import RestRequest, point

        table = weather_table(mini_weather_market)
        table.append(NEW_ROWS)
        response = mini_weather_market.get(
            RestRequest(
                "WHW",
                "Weather",
                (point("Country", "CountryA"), point("Date", 10)),
            )
        )
        values = {row[3] for row in response.rows}
        assert {99.0, 98.0} <= values


class TestConsistencyVsAppends:
    def _fresh(self, market, policy):
        payless = PayLess.full(market, consistency=policy)
        payless.register_dataset("WHW")
        return payless

    def test_weak_misses_appends_but_stays_free(self, mini_weather_market):
        payless = self._fresh(mini_weather_market, ConsistencyPolicy.weak())
        first = payless.query(SQL)
        weather_table(mini_weather_market).append(NEW_ROWS)
        second = payless.query(SQL)
        assert second.transactions == 0          # free...
        assert len(second.rows) == len(first.rows)  # ...but stale

    def test_strong_sees_appends_immediately(self, mini_weather_market):
        payless = self._fresh(mini_weather_market, ConsistencyPolicy.strong())
        first = payless.query(SQL)
        weather_table(mini_weather_market).append(NEW_ROWS)
        second = payless.query(SQL)
        assert len(second.rows) == len(first.rows) + 2

    def test_x_week_sees_appends_after_window(self, mini_weather_market):
        payless = self._fresh(mini_weather_market, ConsistencyPolicy.weeks(2))
        first = payless.query(SQL)
        weather_table(mini_weather_market).append(NEW_ROWS)
        within_window = payless.query(SQL)
        assert len(within_window.rows) == len(first.rows)  # still stale
        payless.store.advance_clock(3)
        refreshed = payless.query(SQL)
        assert len(refreshed.rows) == len(first.rows) + 2
        assert refreshed.transactions > 0  # had to re-buy the region
