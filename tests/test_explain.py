"""EXPLAIN / EXPLAIN ANALYZE: golden renderings and zero-cost guarantees.

The renderings are compared against committed golden files (regenerate
with ``pytest --update-goldens``); the scenarios mirror the paper's
Figure 7 — a query window partially covered by stored views, so the
EXPLAIN output shows the rewriter's coverage verdict and the exact
remainder boxes it would buy.  Beyond the text itself, the tests pin the
two contracts EXPLAIN makes: plain EXPLAIN never touches the market (zero
calls, zero billing, store unchanged), and EXPLAIN ANALYZE of a repeated
query shows the store paying off (cache-served rows, cheaper dollars,
per-node est-vs-actual lines).
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.testing import registered_payless, tiny_weather_market

JOIN_SQL = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Alpha' AND Station.StationID = Weather.StationID"
)

#: The Figure 7 analogue: a 2-d window (Country × Date) over Weather ...
FIG7_SQL = (
    "SELECT Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= 2 AND Date <= 9"
)

#: ... partially covered by previously-bought views (Figure 7's V1/V2):
#: the left and right ends of the Date range, leaving a middle remainder.
FIG7_VIEWS = (
    "SELECT Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= 2 AND Date <= 4",
    "SELECT Temperature FROM Weather "
    "WHERE Country = 'CountryA' AND Date >= 8 AND Date <= 9",
)


def fresh_payless(tracing=False):
    return registered_payless(
        tiny_weather_market(), tracing=tracing, metrics=MetricsRegistry()
    )


class TestGoldenRenderings:
    def test_explain_cold_join(self, golden):
        payless = fresh_payless()
        golden("explain_cold_join", str(payless.explain(JOIN_SQL)))

    def test_explain_fig7_partial_coverage(self, golden):
        """The Figure 7 shape: stored views at both ends, remainder between."""
        payless = fresh_payless()
        for view_sql in FIG7_VIEWS:
            payless.query(view_sql)
        golden("explain_fig7_partial", str(payless.explain(FIG7_SQL)))

    def test_explain_analyze_fig7_cold(self, golden):
        payless = fresh_payless()
        golden("explain_analyze_fig7_cold", str(payless.explain_analyze(FIG7_SQL)))

    def test_explain_analyze_fig7_warm(self, golden):
        """The repeat run: everything served from the store, nothing bought."""
        payless = fresh_payless()
        payless.query(FIG7_SQL)
        golden("explain_analyze_fig7_warm", str(payless.explain_analyze(FIG7_SQL)))

    def test_explain_analyze_join_warm(self, golden):
        payless = fresh_payless()
        payless.query(JOIN_SQL)
        golden("explain_analyze_join_warm", str(payless.explain_analyze(JOIN_SQL)))


class TestExplainIsFree:
    def test_explain_makes_no_market_call_and_bills_nothing(self):
        payless = fresh_payless()
        ledger = payless.market.ledger
        for sql in (JOIN_SQL, FIG7_SQL, *FIG7_VIEWS):
            explanation = payless.explain(sql)
            assert explanation.plan is not None
            assert explanation.cost >= 0
        assert ledger.total_calls == 0
        assert ledger.total_transactions == 0
        assert ledger.total_price == 0.0
        assert payless.total_transactions == 0

    def test_explain_leaves_the_store_cold(self):
        """Explaining must not warm the store: the later real query pays."""
        payless = fresh_payless()
        payless.explain(FIG7_SQL)
        result = payless.query(FIG7_SQL)
        assert result.stats.transactions > 0


class TestExplainAnalyzeAcceptance:
    """The acceptance scenario: ANALYZE a Figure 7 query twice."""

    def _cache_served(self, explanation):
        return sum(
            span.attrs.get("cache_served_rows", 0)
            for span in explanation.trace.spans("table_fetch")
        )

    def test_repeat_is_cheaper_and_cache_served(self):
        payless = fresh_payless()
        first = payless.explain_analyze(FIG7_SQL)
        second = payless.explain_analyze(FIG7_SQL)

        assert first.stats.price > 0
        assert second.stats.price < first.stats.price
        assert self._cache_served(first) == 0
        assert self._cache_served(second) > 0

        # Per-node est-vs-actual annotations on the cold run's rendering.
        rendering = first.render()
        assert "actual:" in rendering
        assert "est →" in rendering
        assert "purchased" in rendering
        # The warm run's rendering shows rows coming from the store.
        assert "$0" in second.render()

    def test_analyze_restores_the_tracer(self):
        """ANALYZE flips tracing on for exactly one query."""
        payless = fresh_payless(tracing=False)
        payless.explain_analyze(FIG7_SQL)
        assert payless.tracer.enabled is False
        result = payless.query(JOIN_SQL)
        assert result.trace is None

        traced = fresh_payless(tracing=True)
        traced.explain_analyze(FIG7_SQL)
        assert traced.tracer.enabled is True

    def test_analyze_join_annotates_every_market_access(self):
        payless = fresh_payless()
        explanation = payless.explain_analyze(JOIN_SQL)
        rendering = explanation.render()
        # Both market tables appear with their own actuals block (the join
        # may bind one side, which still yields one table_fetch span).
        fetch_spans = [
            span
            for span in explanation.trace.spans("table_fetch")
            if span.attrs.get("source") in ("access", "bound")
        ]
        node_actuals = sum(
            1
            for line in rendering.splitlines()
            if line.strip().startswith("actual:")
        )
        assert len(fetch_spans) == node_actuals
        assert {s.attrs["table"] for s in fetch_spans} == {"Station", "Weather"}


class TestGoldenMachinery:
    def test_missing_golden_fails_with_hint(self, request, golden):
        if request.config.getoption("--update-goldens"):
            pytest.skip("update mode writes instead of comparing")
        with pytest.raises(AssertionError, match="--update-goldens"):
            golden("does_not_exist", "anything")
