"""Batch (multi-query) optimization tests."""

import pytest

from repro import PayLess
from repro.core.batch import execute_batch, plan_batch_order

BROAD = ("SELECT * FROM Weather WHERE Country = 'CountryA'", ())
NARROW_1 = (
    "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 3",
    (),
)
NARROW_2 = (
    "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date >= 7",
    (),
)


class TestOrdering:
    def test_containing_query_goes_first(self, mini_payless):
        compiled = [
            mini_payless.compile(*NARROW_1),
            mini_payless.compile(*BROAD),
            mini_payless.compile(*NARROW_2),
        ]
        order = plan_batch_order(mini_payless, compiled)
        assert order[0] == 1  # the broad query dominates both narrow ones

    def test_order_is_a_permutation(self, mini_payless):
        compiled = [mini_payless.compile(*q) for q in (NARROW_1, NARROW_2)]
        order = plan_batch_order(mini_payless, compiled)
        assert sorted(order) == [0, 1]


class TestExecution:
    def test_results_in_submission_order(self, mini_payless):
        batch = [NARROW_1, BROAD, NARROW_2]
        outcome = execute_batch(mini_payless, batch)
        assert len(outcome.results) == 3
        # NARROW_1 covers 4 stations x 3 days = 12 rows.
        assert len(outcome.results[0].rows) == 12
        # BROAD covers 4 stations x 10 days.
        assert len(outcome.results[1].rows) == 40

    def test_narrow_queries_ride_free(self, mini_payless):
        outcome = execute_batch(mini_payless, [NARROW_1, BROAD, NARROW_2])
        # The broad query executes first (4 transactions at t=10), the
        # narrow ones are then fully covered.
        broad_cost = outcome.results[1].transactions
        assert outcome.total_transactions == broad_cost
        assert outcome.results[0].transactions == 0
        assert outcome.results[2].transactions == 0

    def test_batch_not_worse_than_submission_order(self, mini_weather_market):
        batch = [NARROW_1, NARROW_2, BROAD]

        batched = PayLess.full(mini_weather_market)
        batched.register_dataset("WHW")
        clever = execute_batch(batched, batch)

        naive = PayLess.full(mini_weather_market)
        naive.register_dataset("WHW")
        naive_total = sum(
            naive.query(sql, params).transactions for sql, params in batch
        )
        assert clever.total_transactions <= naive_total
