"""Workload generator tests: schemas, sizes, skew, template validity."""

import pytest

from repro.workloads.tpch import (
    TEMPLATES as TPCH_TEMPLATES,
    TpchConfig,
    TpchInstanceGenerator,
    generate_tpch_workload,
)
from repro.workloads.weather import (
    TEMPLATES as WEATHER_TEMPLATES,
    WeatherConfig,
    WeatherInstanceGenerator,
    generate_weather_workload,
)
from repro.workloads.zipfian import ZipfSampler, skewed_choice


class TestZipf:
    def test_rank_one_most_frequent(self):
        import random

        sampler = ZipfSampler(10, 1.0, random.Random(1))
        counts = [0] * 10
        for __ in range(5000):
            counts[sampler.sample()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[9]

    def test_uniform_when_z_none(self):
        import random

        rng = random.Random(2)
        values = [skewed_choice(range(5), None, rng) for __ in range(1000)]
        counts = [values.count(i) for i in range(5)]
        assert max(counts) < 2 * min(counts)

    def test_invalid_args(self):
        import random

        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0, random.Random(1))


class TestWeatherGenerator:
    def test_sizes(self):
        config = WeatherConfig(countries=3, stations_per_country=5, days=7)
        data = generate_weather_workload(config)
        assert len(data.station_rows) == 15
        assert len(data.weather_rows) == 15 * 7
        assert len(data.zipmap_rows) == 3 * 20 * 3  # cities x zips

    def test_deterministic(self):
        a = generate_weather_workload(WeatherConfig(seed=5))
        b = generate_weather_workload(WeatherConfig(seed=5))
        assert a.station_rows == b.station_rows
        assert a.weather_rows[:100] == b.weather_rows[:100]

    def test_referential_integrity(self):
        data = generate_weather_workload(WeatherConfig())
        station_ids = {row[1] for row in data.station_rows}
        assert {row[1] for row in data.weather_rows} <= station_ids
        cities = {c for group in data.cities.values() for c in group}
        assert {row[1] for row in data.zipmap_rows} <= cities
        zip_codes = {row[0] for row in data.zipmap_rows}
        assert {row[0] for row in data.pollution_rows} <= zip_codes

    def test_market_tables_published(self):
        data = generate_weather_workload(WeatherConfig())
        assert data.market_dataset_whw.table_names() == ["Station", "Weather"]
        assert data.market_dataset_ehr.table_names() == ["Pollution"]
        assert data.local_database().table("ZipMap") is data.zipmap


class TestWeatherInstances:
    def test_all_templates_instantiable(self):
        data = generate_weather_workload(WeatherConfig())
        generator = WeatherInstanceGenerator(data, seed=3)
        for template in WEATHER_TEMPLATES:
            instance = generator.instance(template)
            assert instance.sql == WEATHER_TEMPLATES[template]
            assert instance.params

    def test_session_shape(self):
        data = generate_weather_workload(WeatherConfig())
        generator = WeatherInstanceGenerator(data, seed=3)
        session = generator.session(4)
        assert len(session) == 4 * len(WEATHER_TEMPLATES)
        templates = {q.template for q in session}
        assert templates == set(WEATHER_TEMPLATES)

    def test_instances_return_rows(self, tmp_path):
        """Validity: every sampled instance yields non-empty results."""
        from repro.bench.harness import build_system

        data = generate_weather_workload(
            WeatherConfig(countries=2, stations_per_country=8, days=20)
        )
        payless, __ = build_system("payless", data)
        generator = WeatherInstanceGenerator(data, seed=9)
        for template in ("Q1", "Q3", "Q4"):
            instance = generator.instance(template)
            result = payless.query(instance.sql, instance.params)
            assert result.rows, template


class TestTpchGenerator:
    def test_scaling(self):
        small = generate_tpch_workload(TpchConfig(scale=0.5))
        large = generate_tpch_workload(TpchConfig(scale=1.0))
        assert len(small.rows["orders"]) == 1500
        assert len(large.rows["orders"]) == 3000
        assert len(large.rows["lineitem"]) > len(small.rows["lineitem"])

    def test_referential_integrity(self):
        data = generate_tpch_workload(TpchConfig(scale=0.2))
        order_keys = {row[0] for row in data.rows["orders"]}
        assert {row[0] for row in data.rows["lineitem"]} <= order_keys
        customer_keys = {row[0] for row in data.rows["customer"]}
        assert {row[1] for row in data.rows["orders"]} <= customer_keys
        part_keys = {row[0] for row in data.rows["part"]}
        assert {row[0] for row in data.rows["partsupp"]} <= part_keys

    def test_skew_changes_distribution(self):
        uniform = generate_tpch_workload(TpchConfig(scale=1.0, zipf=None))
        skewed = generate_tpch_workload(TpchConfig(scale=1.0, zipf=1.0))

        def top_share(rows, index):
            from collections import Counter

            counts = Counter(row[index] for row in rows)
            return counts.most_common(1)[0][1] / len(rows)

        # The hottest customer gets a much bigger share under zipf=1.
        assert top_share(skewed.rows["orders"], 1) > 2 * top_share(
            uniform.rows["orders"], 1
        )

    def test_nation_region_local(self):
        data = generate_tpch_workload(TpchConfig(scale=0.1))
        local = data.local_database()
        assert len(local.table("Nation")) == 25
        assert len(local.table("Region")) == 5
        assert "Nation" not in data.dataset
        assert "Lineitem" in data.dataset


class TestTpchInstances:
    def test_all_templates_instantiable(self):
        data = generate_tpch_workload(TpchConfig(scale=0.2))
        generator = TpchInstanceGenerator(data, seed=3)
        for template in TPCH_TEMPLATES:
            instance = generator.instance(template)
            assert instance.params is not None

    def test_templates_compile_and_run(self):
        from repro.bench.harness import build_system

        data = generate_tpch_workload(TpchConfig(scale=0.1))
        payless, __ = build_system("payless", data)
        generator = TpchInstanceGenerator(data, seed=3)
        for template in TPCH_TEMPLATES:
            instance = generator.instance(template)
            payless.query(instance.sql, instance.params)  # must not raise
