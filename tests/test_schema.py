"""Unit tests for schemas and domains."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T


class TestDomain:
    def test_numeric_domain(self):
        domain = Domain.numeric(1, 10)
        assert domain.is_numeric
        assert domain.width == 9
        assert domain.contains(1) and domain.contains(10)
        assert not domain.contains(0) and not domain.contains(11)

    def test_empty_numeric_domain_rejected(self):
        with pytest.raises(SchemaError):
            Domain.numeric(5, 1)

    def test_categorical_domain(self):
        domain = Domain.categorical(["a", "b", "c"])
        assert domain.size == 3
        assert domain.contains("a")
        assert not domain.contains("z")

    def test_categorical_size_derived(self):
        assert Domain.categorical({"x", "y"}).size == 2


class TestAttribute:
    def test_valid_name(self):
        Attribute("Station_ID", T.INT)

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Attribute("bad name!", T.INT)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", T.INT)


class TestSchema:
    def _schema(self):
        return Schema(
            [
                Attribute("Country", T.STRING),
                Attribute("StationID", T.INT),
                Attribute("Date", T.DATE),
            ]
        )

    def test_position_case_insensitive(self):
        schema = self._schema()
        assert schema.position("country") == 0
        assert schema.position("STATIONID") == 1

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            self._schema().position("Nope")

    def test_contains(self):
        schema = self._schema()
        assert "Date" in schema
        assert "date" in schema
        assert "Temperature" not in schema

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("A", T.INT), Attribute("a", T.STRING)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_project_preserves_order(self):
        schema = self._schema().project(["Date", "Country"])
        assert schema.names == ("Date", "Country")

    def test_of_shorthand(self):
        schema = Schema.of(A=T.INT, B=T.STRING)
        assert schema.names == ("A", "B")

    def test_equality_and_hash(self):
        assert self._schema() == self._schema()
        assert hash(self._schema()) == hash(self._schema())
