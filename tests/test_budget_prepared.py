"""Prepared queries, budget enforcement, and subscription invoicing."""

import pytest

from repro.core.budget import (
    BudgetedPayLess,
    BudgetExceededError,
    BudgetMode,
    BudgetPolicy,
)
from repro.core.prepared import PreparedQuery
from repro.errors import ReproError, SqlAnalysisError
from repro.market.subscription import Subscription

TEMPLATE = (
    "SELECT AVG(Temperature) FROM Weather "
    "WHERE Country = ? AND Date >= ? AND Date <= ?"
)


class TestPreparedQuery:
    def test_parse_once_run_many(self, mini_payless):
        prepared = PreparedQuery(mini_payless, TEMPLATE)
        assert prepared.parameter_count == 3
        first = prepared.execute(("CountryA", 1, 5))
        second = prepared.execute(("CountryA", 6, 10))
        third = prepared.execute(("CountryA", 1, 10))  # covered by 1+2
        assert first.transactions > 0
        assert third.transactions == 0
        assert prepared.executions == 3
        assert prepared.total_transactions == (
            first.transactions + second.transactions
        )

    def test_wrong_arity(self, mini_payless):
        prepared = PreparedQuery(mini_payless, TEMPLATE)
        with pytest.raises(SqlAnalysisError):
            prepared.execute(("CountryA",))

    def test_explain_does_not_spend(self, mini_payless):
        prepared = PreparedQuery(mini_payless, TEMPLATE)
        planning = prepared.explain(("CountryB", 1, 10))
        assert planning.cost > 0
        assert mini_payless.total_transactions == 0

    def test_repr(self, mini_payless):
        prepared = PreparedQuery(mini_payless, TEMPLATE)
        assert "3 params" in repr(prepared)


class TestBudget:
    def test_hard_budget_rejects(self, mini_payless):
        budgeted = BudgetedPayLess(
            mini_payless, BudgetPolicy(limit_transactions=1)
        )
        with pytest.raises(BudgetExceededError):
            budgeted.query("SELECT * FROM Weather")  # ≈6 transactions
        assert budgeted.report.rejected_queries == 1
        assert mini_payless.total_transactions == 0

    def test_within_budget_executes(self, mini_payless):
        budgeted = BudgetedPayLess(
            mini_payless, BudgetPolicy(limit_transactions=100)
        )
        result = budgeted.query("SELECT * FROM Station")
        assert result.transactions >= 1
        assert budgeted.report.spent_transactions == result.transactions
        assert budgeted.report.remaining == 100 - result.transactions

    def test_advisory_mode_executes_and_logs(self, mini_payless):
        budgeted = BudgetedPayLess(
            mini_payless,
            BudgetPolicy(limit_transactions=1, mode=BudgetMode.ADVISORY),
        )
        result = budgeted.query("SELECT * FROM Weather")
        assert result.transactions > 1
        assert budgeted.report.advisory_breaches == 1

    def test_covered_queries_free_under_tight_budget(self, mini_payless):
        generous = BudgetedPayLess(
            mini_payless, BudgetPolicy(limit_transactions=100)
        )
        generous.query("SELECT * FROM Weather")
        tight = BudgetedPayLess(
            mini_payless, BudgetPolicy(limit_transactions=0)
        )
        # Fully covered → estimate 0 → allowed even with a zero budget.
        result = tight.query("SELECT * FROM Weather")
        assert result.transactions == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError):
            BudgetPolicy(limit_transactions=-1)


class TestSubscription:
    def test_paper_example(self):
        """USD 12 per 100 transactions; 4400 records at t=100 = 44 trans."""
        plan = Subscription(transactions_per_block=100, block_price=12.0)
        assert plan.blocks_for(44) == 1
        assert plan.invoice(44) == 12.0
        assert plan.invoice(101) == 24.0

    def test_utilization(self):
        plan = Subscription(transactions_per_block=100, block_price=12.0)
        assert plan.utilization(44) == pytest.approx(0.44)
        assert plan.utilization(0) == 0.0
        assert plan.utilization(200) == pytest.approx(1.0)

    def test_invoice_ledger(self, mini_payless):
        mini_payless.query("SELECT * FROM Weather")  # 6 transactions at t=10
        plan = Subscription(transactions_per_block=5, block_price=1.0)
        ledger = mini_payless.market.ledger
        assert plan.invoice_ledger(ledger) == pytest.approx(2.0)
        assert plan.invoice_ledger(ledger, dataset="WHW") == pytest.approx(2.0)
        assert plan.invoice_ledger(ledger, dataset="Nope") == 0.0

    def test_invalid_plans(self):
        from repro.errors import MarketError

        with pytest.raises(MarketError):
            Subscription(transactions_per_block=0)
        with pytest.raises(MarketError):
            Subscription(block_price=-1.0)
        with pytest.raises(MarketError):
            Subscription().blocks_for(-5)
