"""Money-latency Pareto planning: frontier enumeration, objective
selection, typed infeasibility, plan-cache isolation, and service tiers.

The canonical fixture is an eight-station weather market where a
selective ``City = 'Alpha'`` filter keeps four stations: the bind join
fetches fewer rows (cheaper) through many round-trip-dominated calls
(slower), while the direct fetch buys more rows (pricier) in fewer calls
(faster) — a genuine two-point money-latency frontier:
``($17, 725 ms)`` and ``($9, 975 ms)``.
"""

from __future__ import annotations

import pytest

from repro.core.objectives import SERVICE_TIERS, PlanObjective, QueryOptions
from repro.core.prepared import PreparedQuery
from repro.errors import InfeasibleObjectiveError, MarketError
from repro.obs.metrics import MetricsRegistry
from repro.serve import QueryScheduler, ServeConfig
from repro.testing import registered_payless, tiny_weather_market

#: Four Alpha stations (selective filter) + four Beta stations.
STATIONS = tuple(
    ("CountryA", i, "Alpha" if i <= 4 else "Beta") for i in range(1, 9)
)
SQL = (
    "SELECT Weather.Temperature FROM Station JOIN Weather "
    "ON Station.StationID = Weather.StationID "
    "WHERE Station.City = 'Alpha'"
)
#: The fixture's full-query frontier: (direct fetch, bind join).
FAST_POINT = (17.0, 725.0)
CHEAP_POINT = (9.0, 975.0)


def _payless(**kwargs):
    market = tiny_weather_market(stations=STATIONS, days=20)
    return registered_payless(market, **kwargs)


class TestFrontier:
    def test_two_point_frontier(self):
        explanation = _payless().explain(SQL, objective="min_latency")
        assert explanation.planning.frontier == (FAST_POINT, CHEAP_POINT)

    def test_frontier_is_non_dominated(self):
        points = _payless().explain(SQL, objective="min_latency").planning.frontier
        for i, (cost_a, lat_a) in enumerate(points):
            for j, (cost_b, lat_b) in enumerate(points):
                if i == j:
                    continue
                dominated = (
                    cost_b <= cost_a
                    and lat_b <= lat_a
                    and (cost_b < cost_a or lat_b < lat_a)
                )
                assert not dominated, f"point {i} dominated by point {j}"

    def test_min_dollars_path_skips_enumeration(self):
        planning = _payless().explain(SQL).planning
        assert planning.objective.is_default
        assert len(planning.frontier) == 1
        assert planning.cost == CHEAP_POINT[0]

    def test_frontier_identical_with_and_without_pruning(self):
        pruned = _payless().explain(SQL, objective="min_latency").planning
        oracle = (
            _payless(options=QueryOptions(prune=False))
            .explain(SQL, objective="min_latency")
            .planning
        )
        assert pruned.frontier == oracle.frontier
        assert pruned.plan.describe() == oracle.plan.describe()
        assert pruned.pruned_plans > 0  # pruning actually fired
        assert oracle.pruned_plans == 0

    def test_frontier_size_metric_observed(self):
        registry = MetricsRegistry()
        payless = _payless(metrics=registry)
        payless.explain(SQL, objective="min_latency")
        snapshot = registry.snapshot()
        assert snapshot.get("plan_frontier_size_count", 0) >= 1


class TestObjectiveSelection:
    def test_min_latency_picks_the_fast_point(self):
        planning = _payless().explain(SQL, objective="min_latency").planning
        assert (planning.cost, planning.latency_ms) == FAST_POINT
        assert "fastest" in planning.objective_note

    def test_latency_bound_picks_cheapest_feasible(self):
        planning = _payless().explain(
            SQL, objective="dollars_under_latency_ms:800"
        ).planning
        assert (planning.cost, planning.latency_ms) == FAST_POINT
        loose = _payless().explain(
            SQL, objective="dollars_under_latency_ms:1000"
        ).planning
        assert (loose.cost, loose.latency_ms) == CHEAP_POINT

    def test_dollar_budget_picks_fastest_affordable(self):
        planning = _payless().explain(
            SQL, objective="latency_under_dollars:10"
        ).planning
        assert (planning.cost, planning.latency_ms) == CHEAP_POINT
        rich = _payless().explain(
            SQL, objective="latency_under_dollars:20"
        ).planning
        assert (rich.cost, rich.latency_ms) == FAST_POINT

    def test_weighted_blend_tilts_with_the_weight(self):
        # Cheap latency weight: 17+7.25 vs 9+9.75 → the cheap point wins.
        light = _payless().explain(SQL, objective="weighted:0.01").planning
        assert (light.cost, light.latency_ms) == CHEAP_POINT
        # Dollar-priced milliseconds: 17+725 vs 9+975 → the fast point wins.
        heavy = _payless().explain(SQL, objective="weighted:1.0").planning
        assert (heavy.cost, heavy.latency_ms) == FAST_POINT

    def test_objective_accepts_tier_and_objective_objects(self):
        payless = _payless()
        via_str = payless.explain(SQL, objective="realtime").planning
        via_tier = payless.explain(
            SQL, objective=SERVICE_TIERS["realtime"]
        ).planning
        via_object = payless.explain(
            SQL, objective=PlanObjective.min_latency()
        ).planning
        assert (
            via_str.plan.describe()
            == via_tier.plan.describe()
            == via_object.plan.describe()
        )

    def test_query_execution_honors_the_objective(self):
        fast = _payless().query(SQL, objective="min_latency")
        cheap = _payless().query(SQL)
        assert fast.stats.price == FAST_POINT[0]
        assert cheap.stats.price == CHEAP_POINT[0]
        assert sorted(fast.rows) == sorted(cheap.rows)


class TestInfeasibility:
    def test_unmeetable_latency_bound_raises_typed_error(self):
        with pytest.raises(InfeasibleObjectiveError) as excinfo:
            _payless().explain(SQL, objective="dollars_under_latency_ms:1")
        error = excinfo.value
        assert error.objective.kind == "dollars_under_latency_ms"
        assert error.frontier == (FAST_POINT, CHEAP_POINT)

    def test_unmeetable_dollar_budget_raises_typed_error(self):
        with pytest.raises(InfeasibleObjectiveError) as excinfo:
            _payless().query(SQL, objective="latency_under_dollars:0.5")
        assert excinfo.value.frontier  # carries the frontier for diagnosis

    def test_infeasible_objective_buys_nothing(self):
        payless = _payless()
        with pytest.raises(InfeasibleObjectiveError):
            payless.query(SQL, objective="dollars_under_latency_ms:1")
        assert payless.total_price == 0.0
        assert payless.total_transactions == 0

    def test_infeasibility_metric_counted(self):
        registry = MetricsRegistry()
        payless = _payless(metrics=registry)
        with pytest.raises(InfeasibleObjectiveError):
            payless.explain(SQL, objective="dollars_under_latency_ms:1")
        assert registry.snapshot().get("plan_objective_infeasible", 0) >= 1


class TestPlanCacheIsolation:
    """Two objectives over one template never share a cache entry."""

    def test_objectives_get_separate_entries(self):
        payless = _payless()
        cheap = payless.explain(SQL)
        fast = payless.explain(SQL, objective="min_latency")
        assert cheap.planning.cache_status == "miss"
        assert fast.planning.cache_status == "miss"  # not served cheap's plan
        assert cheap.plan.describe() != fast.plan.describe()
        # Repeats hit their own entries and keep their own plans.
        assert payless.explain(SQL).planning.cache_status == "hit"
        repeat_fast = payless.explain(SQL, objective="min_latency")
        assert repeat_fast.planning.cache_status == "hit"
        assert repeat_fast.plan.describe() == fast.plan.describe()

    def test_bounds_are_part_of_the_identity(self):
        payless = _payless()
        tight = payless.explain(SQL, objective="dollars_under_latency_ms:800")
        loose = payless.explain(SQL, objective="dollars_under_latency_ms:1000")
        assert tight.planning.cache_status == "miss"
        assert loose.planning.cache_status == "miss"
        assert tight.plan.describe() != loose.plan.describe()


class TestPreparedQueries:
    def test_prepared_query_pins_an_objective(self):
        payless = _payless()
        prepared = PreparedQuery(payless, SQL, objective="min_latency")
        result = prepared.execute(())
        assert result.stats.price == FAST_POINT[0]

    def test_per_execute_override(self):
        payless = _payless()
        prepared = PreparedQuery(payless, SQL)
        planning = prepared.explain((), objective="min_latency")
        assert (planning.cost, planning.latency_ms) == FAST_POINT


class TestServiceTiers:
    def test_session_tier_steers_planning(self):
        payless = _payless()
        fast_plan = payless.explain(SQL, objective="min_latency").plan.describe()
        config = ServeConfig(workers=1, coalesce=False)
        with QueryScheduler(payless, config) as scheduler:
            ticket = scheduler.session("trader", tier="realtime").submit(SQL)
            result = ticket.result(timeout=30.0)
        assert result.plan.describe() == fast_plan
        assert result.stats.price == FAST_POINT[0]

    def test_default_tier_inherited_by_new_sessions(self):
        payless = _payless()
        config = ServeConfig(
            workers=1, coalesce=False,
            default_tier=SERVICE_TIERS["realtime"],
        )
        with QueryScheduler(payless, config) as scheduler:
            session = scheduler.session("anyone")
            assert session.tier is SERVICE_TIERS["realtime"]
            explicit = scheduler.session("saver", tier="economy")
            assert explicit.tier is SERVICE_TIERS["economy"]

    def test_tier_conflict_rejected(self):
        payless = _payless()
        with QueryScheduler(payless, ServeConfig(workers=1)) as scheduler:
            scheduler.session("alice", tier="realtime")
            with pytest.raises(MarketError):
                scheduler.session("alice", tier="economy")
            # Tier-less re-fetch returns the existing session unchanged.
            assert scheduler.session("alice").tier is SERVICE_TIERS["realtime"]


class TestExplainRendering:
    def test_default_objective_renders_no_frontier_block(self):
        text = _payless().explain(SQL).render()
        assert "pareto frontier" not in text
        assert "objective:" not in text

    def test_non_default_objective_renders_frontier_and_choice(self):
        text = _payless().explain(SQL, objective="min_latency").render()
        assert "objective: min_latency" in text
        assert "pareto frontier: 2 point(s)" in text
        assert "($17, 725 ms)" in text
        assert "chosen: ($17, 725 ms)" in text

    def test_explain_analyze_reports_est_vs_actual_latency(self):
        text = _payless().explain_analyze(SQL, objective="min_latency").render()
        assert "latency: est 725 ms" in text
        assert "actual" in text
