"""Unit tests for the textbook estimation helpers."""

import pytest

from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T
from repro.semstore.boxes import Box
from repro.semstore.space import BoxSpace
from repro.stats.catalog import Catalog
from repro.stats.estimator import (
    estimate_box,
    estimate_boxes,
    estimate_constraints,
    estimate_distinct,
    transactions_for_estimate,
)


@pytest.fixture
def statistics():
    schema = Schema([Attribute("A", T.INT), Attribute("C", T.STRING)])
    pattern = BindingPattern(
        table="R", modes={"A": AccessMode.FREE, "C": AccessMode.FREE}
    )
    published = BasicStatistics(
        1000,
        {
            "a": Domain.numeric(0, 99),
            "c": Domain.categorical(["x", "y", "z", "w"]),
        },
    )
    space = BoxSpace.from_table("R", schema, pattern, published)
    return Catalog().register("R", schema, space, published)


class TestBoxEstimates:
    def test_full_box(self, statistics):
        assert estimate_box(statistics, statistics.space.full_box) == 1000

    def test_constraints(self, statistics):
        estimate = estimate_constraints(
            statistics, [AttributeConstraint("A", low=0, high=50)]
        )
        assert estimate == pytest.approx(500.0)

    def test_point_set_constraints(self, statistics):
        estimate = estimate_constraints(
            statistics,
            [AttributeConstraint("C", values=frozenset({"x", "y"}))],
        )
        assert estimate == pytest.approx(500.0)

    def test_disjoint_boxes_sum(self, statistics):
        boxes = [
            Box(((0, 10), (0, 4))),
            Box(((90, 100), (0, 4))),
        ]
        assert estimate_boxes(statistics, boxes) == pytest.approx(200.0)


class TestDistinct:
    def test_zero_tuples(self, statistics):
        assert estimate_distinct(statistics, "A", 0) == 0.0

    def test_capped_by_domain(self, statistics):
        assert estimate_distinct(statistics, "C", 1e9) == pytest.approx(4.0)

    def test_capped_by_tuples(self, statistics):
        assert estimate_distinct(statistics, "A", 2) <= 2.0

    def test_monotone_in_tuples(self, statistics):
        small = estimate_distinct(statistics, "A", 10)
        large = estimate_distinct(statistics, "A", 100)
        assert small < large

    def test_unknown_attribute(self, statistics):
        from repro.errors import StatisticsError

        with pytest.raises(StatisticsError):
            statistics.domain_size("Nope")


class TestTransactions:
    def test_zero(self):
        assert transactions_for_estimate(0.0, 100) == 0

    def test_fractional_rounds_up(self):
        assert transactions_for_estimate(0.3, 100) == 1
        assert transactions_for_estimate(100.5, 100) == 2

    def test_exact_page(self):
        assert transactions_for_estimate(200.0, 100) == 2


class TestCatalog:
    def test_duplicate_registration(self, statistics):
        from repro.errors import StatisticsError
        from repro.stats.catalog import Catalog

        catalog = Catalog()
        catalog.register(
            "R",
            statistics.schema,
            statistics.space,
            BasicStatistics(1, {}),
        )
        with pytest.raises(StatisticsError):
            catalog.register(
                "R",
                statistics.schema,
                statistics.space,
                BasicStatistics(1, {}),
            )

    def test_unknown_lookup(self):
        from repro.errors import StatisticsError
        from repro.stats.catalog import Catalog

        with pytest.raises(StatisticsError):
            Catalog().statistics("ghost")
