"""Pareto planner parity: pruning must never change what is planned.

Two guarantees, each checked against the ``prune=False`` exhaustive
oracle:

* under the default ``min_dollars`` objective the planner takes the
  paper's single-objective path and chooses byte-identical plans;
* under any Pareto objective, branch-and-bound pruning enumerates the
  *same frontier* (same points, same order) and selects the same plan.

The chaos arm replays the weather and TPC-H workload sessions under
deterministic fault injection (the CI chaos seeds) with a latency-aware
objective, checking Pareto planning composes with the money-safe
transport exactly as the single-objective planner does.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system
from repro.core.objectives import PlanObjective
from repro.market.faults import FaultPolicy
from repro.market.transport import TransportConfig
from repro.workloads.synthetic import make_join_graph

#: Must match the seeds the CI chaos job replays.
CHAOS_SEEDS = (7, 23, 101)

SHAPES_AND_SIZES = [
    (shape, n)
    for shape in ("chain", "star", "clique")
    for n in range(2, 9)
    # The exhaustive oracle on dense cliques is exponential; planning-only
    # parity keeps even n=8 affordable, but cap the executed run below.
]


def _arms(data, objective=None):
    optimized, __ = build_system("payless", data, objective=objective)
    oracle, __ = build_system(
        "payless", data, prune=False, plan_cache_size=0, objective=objective
    )
    return optimized, oracle


class TestMinDollarsParity:
    """The paper's objective: the Pareto machinery must stay out of the way."""

    @pytest.mark.parametrize("shape,n", SHAPES_AND_SIZES)
    def test_planned_parity(self, shape, n):
        data = make_join_graph(shape, n)
        optimized, oracle = _arms(data)
        a = optimized.explain(data.sql).planning
        b = oracle.explain(data.sql).planning
        assert a.plan.describe() == b.plan.describe(), (shape, n)
        assert a.cost == b.cost
        assert a.objective.is_default and b.objective.is_default


class TestParetoFrontierParity:
    """Pruned and exhaustive Pareto enumeration agree point for point."""

    @pytest.mark.parametrize("shape,n", SHAPES_AND_SIZES)
    def test_frontier_parity(self, shape, n):
        data = make_join_graph(shape, n)
        objective = PlanObjective.min_latency()
        optimized, oracle = _arms(data, objective)
        a = optimized.explain(data.sql).planning
        b = oracle.explain(data.sql).planning
        assert a.frontier == b.frontier, (shape, n)
        assert a.plan.describe() == b.plan.describe(), (shape, n)
        assert (a.cost, a.latency_ms) == (b.cost, b.latency_ms)
        assert b.pruned_plans == 0

    @pytest.mark.parametrize("domain_high", [16, 32, 64])
    def test_frontier_parity_on_wider_domains(self, domain_high):
        # Wider key domains change selectivities and bind-call counts,
        # reshaping the frontier; parity must hold regardless.
        data = make_join_graph("chain", 5, domain_high=domain_high)
        optimized, oracle = _arms(data, PlanObjective.min_latency())
        a = optimized.explain(data.sql).planning
        b = oracle.explain(data.sql).planning
        assert a.frontier == b.frontier, domain_high
        assert a.plan.describe() == b.plan.describe()

    @pytest.mark.parametrize(
        "shape,n", [("chain", 6), ("star", 6), ("clique", 5)]
    )
    def test_executed_parity(self, shape, n):
        data = make_join_graph(shape, n)
        objective = PlanObjective.min_latency()
        optimized, oracle = _arms(data, objective)
        for __ in range(2):  # cold, then warm store + plan-cache hit
            a = optimized.query(data.sql)
            b = oracle.query(data.sql)
            assert a.plan.describe() == b.plan.describe()
            assert a.stats.transactions == b.stats.transactions
            assert a.stats.price == pytest.approx(b.stats.price)
            assert sorted(a.rows) == sorted(b.rows)


class TestWorkloadSessions:
    def _run(self, workload, q, objective, transport_for=lambda: None):
        data = make_workload(workload)
        instances = make_instances(workload, data, q)
        optimized, __ = build_system(
            "payless", data, transport=transport_for(), objective=objective
        )
        oracle, __ = build_system(
            "payless", data, transport=transport_for(),
            prune=False, plan_cache_size=0, objective=objective,
        )
        assert instances
        for instance in instances:
            a = optimized.query(instance.sql, instance.params)
            b = oracle.query(instance.sql, instance.params)
            assert a.plan.describe() == b.plan.describe(), instance.sql
            assert a.stats.transactions == b.stats.transactions, instance.sql
            assert a.stats.price == pytest.approx(b.stats.price)
            assert sorted(a.rows) == sorted(b.rows), instance.sql
        assert optimized.total_price == pytest.approx(oracle.total_price)

    def test_weather_session_parity_min_latency(self):
        self._run("real", 2, PlanObjective.min_latency())

    def test_tpch_session_parity_min_latency(self):
        self._run("tpch", 1, PlanObjective.min_latency())

    def test_weather_session_parity_weighted(self):
        self._run("real", 1, PlanObjective.weighted())

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_weather_session_parity_under_chaos(self, seed):
        self._run(
            "real",
            1,
            PlanObjective.min_latency(),
            transport_for=lambda: TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.3),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tpch_session_parity_under_chaos(self, seed):
        self._run(
            "tpch",
            1,
            PlanObjective.min_latency(),
            transport_for=lambda: TransportConfig(
                faults=FaultPolicy.uniform(seed=seed, rate=0.3),
                retry_budget=None,
                breaker_failure_threshold=10_000,
            ),
        )
