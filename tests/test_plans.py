"""Unit tests for plan trees: pricing, leaves, describe output."""

from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    LocalScanNode,
    MarketAccessNode,
    market_leaves,
    plan_price,
)


def access(table, cost, bind=()):
    return MarketAccessNode(
        relations=frozenset([table.lower()]),
        cost=cost,
        estimated_rows=10.0,
        table=table,
        bind_attributes=tuple(bind),
        estimated_bindings=float(len(bind) or 1),
    )


def block(*tables):
    return LocalBlockNode(
        relations=frozenset(t.lower() for t in tables),
        cost=0.0,
        estimated_rows=5.0,
        tables=tuple(tables),
    )


def join(left, right, bind=False, cartesian=False):
    return JoinNode(
        relations=left.relations | right.relations,
        cost=left.cost + right.cost,
        estimated_rows=left.estimated_rows * right.estimated_rows,
        left=left,
        right=right,
        bind=bind,
        cartesian=cartesian,
    )


class TestPlanPrice:
    def test_only_market_leaves_count(self):
        plan = join(block("Zip"), access("Weather", 7.0))
        assert plan_price(plan) == 7.0

    def test_nested_sum(self):
        plan = join(
            join(block("Zip"), access("Station", 1.0)),
            access("Weather", 2.0),
            bind=True,
        )
        assert plan_price(plan) == 3.0
        assert [leaf.table for leaf in market_leaves(plan)] == [
            "Station",
            "Weather",
        ]

    def test_leaf_iteration_order_left_to_right(self):
        plan = join(access("A", 1.0), access("B", 2.0))
        assert [leaf.table for leaf in plan.leaves()] == ["A", "B"]


class TestDescribe:
    def test_bind_join_symbol(self):
        plan = join(access("S", 1.0), access("W", 1.0, bind=("StationID",)), bind=True)
        text = plan.describe()
        assert "−→⋈" in text
        assert "bind(StationID)" in text

    def test_cartesian_symbol(self):
        plan = join(access("A", 1.0), access("B", 1.0), cartesian=True)
        assert "×" in plan.describe()

    def test_block_lists_covered_tables(self):
        node = LocalBlockNode(
            relations=frozenset({"zip", "station"}),
            cost=0.0,
            estimated_rows=3.0,
            tables=("Zip", "Station"),
            covered_market_tables=("Station",),
        )
        assert "covered market: Station" in node.describe()

    def test_local_scan(self):
        node = LocalScanNode(
            relations=frozenset({"zip"}),
            cost=0.0,
            estimated_rows=4.0,
            table="Zip",
        )
        assert "LocalScan(Zip)" in node.describe()

    def test_indentation(self):
        plan = join(access("A", 1.0), access("B", 1.0))
        lines = plan.describe().splitlines()
        assert lines[1].startswith("  ")
