"""Save/load of the buyer-side state: the store must survive restarts."""

import pytest

from repro import PayLess
from repro.core.persistence import load_state, save_state
from repro.errors import ReproError

SQL = "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 6"


def fresh(market):
    payless = PayLess.full(market)
    payless.register_dataset("WHW")
    return payless


class TestRoundTrip:
    def test_restart_does_not_rebuy(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        initial = first.query(SQL)
        assert initial.transactions > 0
        save_state(first, tmp_path / "state.json")

        # Simulated restart: new process, fresh registration, old state.
        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        repeat = second.query(SQL)
        assert repeat.transactions == 0
        assert sorted(repeat.rows) == sorted(initial.rows)

    def test_bill_resumes(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        assert second.total_transactions == first.total_transactions
        assert second.queries_executed == first.queries_executed

    def test_histogram_restored(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        h1 = first.catalog.statistics("Weather").histogram
        h2 = second.catalog.statistics("Weather").histogram
        assert h2.feedback_count == h1.feedback_count
        assert h2.estimate_full() == pytest.approx(h1.estimate_full())

    def test_clock_restored(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.store.advance_clock(5)
        save_state(first, tmp_path / "state.json")
        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        assert second.store.clock == 5


class TestErrors:
    def test_load_without_registration(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        bare = PayLess.full(mini_weather_market)  # nothing registered
        with pytest.raises(ReproError):
            load_state(bare, tmp_path / "state.json")

    def test_version_mismatch(self, mini_weather_market, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"version": 999}')
        payless = fresh(mini_weather_market)
        with pytest.raises(ReproError):
            load_state(payless, path)
