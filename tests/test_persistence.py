"""Save/load of the buyer-side state: the store must survive restarts."""

import json

import pytest

from repro import PayLess, QueryOptions
from repro.core.persistence import load_state, save_state
from repro.errors import ReproError

SQL = "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 6"


def fresh(market):
    payless = PayLess.full(market)
    payless.register_dataset("WHW")
    return payless


class TestRoundTrip:
    def test_restart_does_not_rebuy(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        initial = first.query(SQL)
        assert initial.transactions > 0
        save_state(first, tmp_path / "state.json")

        # Simulated restart: new process, fresh registration, old state.
        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        repeat = second.query(SQL)
        assert repeat.transactions == 0
        assert sorted(repeat.rows) == sorted(initial.rows)

    def test_bill_resumes(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        assert second.total_transactions == first.total_transactions
        assert second.queries_executed == first.queries_executed

    def test_histogram_restored(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        h1 = first.catalog.statistics("Weather").histogram
        h2 = second.catalog.statistics("Weather").histogram
        assert h2.feedback_count == h1.feedback_count
        assert h2.estimate_full() == pytest.approx(h1.estimate_full())

    def test_clock_restored(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.store.advance_clock(5)
        save_state(first, tmp_path / "state.json")
        second = fresh(mini_weather_market)
        load_state(second, tmp_path / "state.json")
        assert second.store.clock == 5


class TestLegacyMigration:
    """v1 files (and v2 files with legacy quirks) keep loading — into both
    plain installations and WAL-backed ones."""

    def _as_v1(self, path):
        """Rewrite a saved v2 file into the v1 shape: version 1, no
        wasted/coalesced buckets."""
        state = json.loads(path.read_text())
        state["version"] = 1
        for bucket in (
            "wasted_transactions",
            "wasted_price",
            "coalesced_fetches",
            "coalesced_transactions",
            "coalesced_price",
        ):
            state["totals"].pop(bucket, None)
        path.write_text(json.dumps(state))

    def test_v1_file_loads_with_zero_buckets(
        self, mini_weather_market, tmp_path
    ):
        first = fresh(mini_weather_market)
        initial = first.query(SQL)
        path = tmp_path / "state.json"
        save_state(first, path)
        self._as_v1(path)

        second = fresh(mini_weather_market)
        load_state(second, path)
        assert second.total_transactions == first.total_transactions
        assert second.total_wasted_transactions == 0
        assert second.total_coalesced_price == 0.0
        repeat = second.query(SQL)
        assert repeat.transactions == 0
        assert sorted(repeat.rows) == sorted(initial.rows)

    def test_v1_non_feedback_histogram_entry(
        self, mini_weather_market, tmp_path
    ):
        # v1 writers stored ``null`` for tables whose statistic was not a
        # FeedbackHistogram; the store still restores, the histogram just
        # re-learns from scratch.
        first = fresh(mini_weather_market)
        first.query(SQL)
        path = tmp_path / "state.json"
        save_state(first, path)
        state = json.loads(path.read_text())
        state["version"] = 1
        for table_state in state["tables"].values():
            table_state["histogram"] = None
        path.write_text(json.dumps(state))

        second = fresh(mini_weather_market)
        load_state(second, path)
        assert second.query(SQL).transactions == 0
        histogram = second.catalog.statistics("Weather").histogram
        assert histogram.feedback_count == 0

    def test_v1_unregistered_table_errors_on_wal_backend(
        self, mini_weather_market, tmp_path
    ):
        first = fresh(mini_weather_market)
        first.query(SQL)
        path = tmp_path / "state.json"
        save_state(first, path)
        self._as_v1(path)

        bare = PayLess.full(
            mini_weather_market,
            options=QueryOptions(durability=tmp_path / "state"),
        )
        bare.recover()
        with pytest.raises(ReproError, match="unregistered table"):
            load_state(bare, path)

    def test_load_state_on_wal_backend_warns_then_recovers_without_json(
        self, mini_weather_market, tmp_path
    ):
        legacy = fresh(mini_weather_market)
        initial = legacy.query(SQL)
        path = tmp_path / "state.json"
        save_state(legacy, path)
        self._as_v1(path)

        state_dir = tmp_path / "state"
        imported = PayLess.full(
            mini_weather_market, options=QueryOptions(durability=state_dir)
        )
        imported.register_dataset("WHW")
        imported.recover()
        with pytest.warns(UserWarning, match="WAL-backed"):
            load_state(imported, path)
        assert imported.query(SQL).transactions == 0
        imported.close()
        path.unlink()  # the JSON is gone; the WAL state dir carries on

        survivor = PayLess.full(
            mini_weather_market, options=QueryOptions(durability=state_dir)
        )
        survivor.register_dataset("WHW")
        report = survivor.recover()
        assert report.snapshot_loaded
        repeat = survivor.query(SQL)
        assert repeat.transactions == 0
        assert sorted(repeat.rows) == sorted(initial.rows)
        assert survivor.total_transactions == legacy.total_transactions


class TestErrors:
    def test_load_without_registration(self, mini_weather_market, tmp_path):
        first = fresh(mini_weather_market)
        first.query(SQL)
        save_state(first, tmp_path / "state.json")

        bare = PayLess.full(mini_weather_market)  # nothing registered
        with pytest.raises(ReproError):
            load_state(bare, tmp_path / "state.json")

    def test_version_mismatch(self, mini_weather_market, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"version": 999}')
        payless = fresh(mini_weather_market)
        with pytest.raises(ReproError):
            load_state(payless, path)
