"""Unit + property tests for the integer box algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semstore.boxes import (
    Box,
    BoxError,
    bounding_box,
    covers_fully,
    merge_adjacent,
    remainder_decomposition,
    subtract_all,
    union_volume,
)


def box(*extents):
    return Box(tuple(extents))


class TestBasics:
    def test_degenerate_rejected(self):
        with pytest.raises(BoxError):
            box((5, 5))

    def test_volume(self):
        assert box((0, 10), (0, 5)).volume() == 50

    def test_contains_box(self):
        assert box((0, 10)).contains_box(box((2, 5)))
        assert not box((0, 10)).contains_box(box((5, 11)))

    def test_contains_point(self):
        b = box((0, 10), (5, 6))
        assert b.contains_point((0, 5))
        assert b.contains_point((9, 5))
        assert not b.contains_point((10, 5))

    def test_dimension_mismatch(self):
        with pytest.raises(BoxError):
            box((0, 1)).intersect(box((0, 1), (0, 1)))

    def test_intersect(self):
        assert box((0, 10)).intersect(box((5, 20))) == box((5, 10))
        assert box((0, 5)).intersect(box((5, 10))) is None

    def test_subtract_disjoint(self):
        assert box((0, 5)).subtract(box((7, 9))) == [box((0, 5))]

    def test_subtract_fully_covered(self):
        assert box((2, 4)).subtract(box((0, 10))) == []

    def test_subtract_middle_1d(self):
        pieces = box((0, 10)).subtract(box((3, 6)))
        assert sorted(p.extents for p in pieces) == [((0, 3),), ((6, 10),)]

    def test_subtract_corner_2d(self):
        pieces = box((0, 10), (0, 10)).subtract(box((5, 10), (5, 10)))
        total = sum(p.volume() for p in pieces)
        assert total == 100 - 25
        # Pieces are pairwise disjoint.
        for i, a in enumerate(pieces):
            for b in pieces[i + 1:]:
                assert a.intersect(b) is None


class TestDecomposition:
    def test_figure6_remainder(self):
        # Q = [0,101), V1 = [10,20), V2 = [30,60)  (Figure 6 of the paper).
        remainder = remainder_decomposition(
            box((0, 101)), [box((10, 20)), box((30, 60))]
        )
        assert sorted(b.extents for b in remainder) == [
            ((0, 10),),
            ((20, 30),),
            ((60, 101),),
        ]

    def test_covers_fully(self):
        assert covers_fully(box((0, 10)), [box((0, 6)), box((6, 10))])
        assert not covers_fully(box((0, 10)), [box((0, 6)), box((7, 10))])

    def test_merge_adjacent(self):
        merged = merge_adjacent([box((0, 5)), box((5, 10))])
        assert merged == [box((0, 10))]

    def test_merge_requires_equal_other_extents(self):
        boxes = [box((0, 5), (0, 1)), box((5, 10), (0, 2))]
        assert len(merge_adjacent(boxes)) == 2

    def test_union_volume_overlapping(self):
        assert union_volume([box((0, 10)), box((5, 15))]) == 15

    def test_bounding_box(self):
        enclosing = bounding_box([box((0, 2), (5, 6)), box((8, 9), (1, 3))])
        assert enclosing == box((0, 9), (1, 6))

    def test_bounding_box_empty(self):
        with pytest.raises(BoxError):
            bounding_box([])


# ------------------------------------------------------------- property tests

extent_strategy = st.tuples(
    st.integers(0, 30), st.integers(1, 31)
).map(lambda pair: (min(pair), max(pair[0] + 1, pair[1])))


def boxes_strategy(dimensions):
    return st.builds(
        lambda extents: Box(tuple(extents)),
        st.lists(extent_strategy, min_size=dimensions, max_size=dimensions),
    )


@st.composite
def query_and_covers(draw, dimensions=2, max_covers=4):
    query = draw(boxes_strategy(dimensions))
    covers = draw(st.lists(boxes_strategy(dimensions), max_size=max_covers))
    return query, covers


def brute_force_points(box_):
    """All grid points of a (small) box."""
    import itertools

    return set(
        itertools.product(*[range(low, high) for low, high in box_.extents])
    )


@settings(max_examples=200, deadline=None)
@given(query_and_covers())
def test_remainder_is_exact_and_disjoint(case):
    """remainder(Q, V) contains exactly the points of Q not covered by V."""
    query, covers = case
    remainder = remainder_decomposition(query, covers)
    # Disjointness.
    for i, a in enumerate(remainder):
        for b in remainder[i + 1:]:
            assert a.intersect(b) is None
    # Exactness (point-level, brute force).
    expected = brute_force_points(query)
    for cover in covers:
        expected -= brute_force_points(cover)
    actual = set()
    for piece in remainder:
        points = brute_force_points(piece)
        assert points <= brute_force_points(query)
        actual |= points
    assert actual == expected


@settings(max_examples=200, deadline=None)
@given(query_and_covers())
def test_subtract_all_volume_identity(case):
    query, covers = case
    pieces = subtract_all(query, [c for c in covers])
    clipped = [query.intersect(c) for c in covers]
    clipped = [c for c in clipped if c is not None]
    assert sum(p.volume() for p in pieces) == query.volume() - union_volume(
        clipped
    )


@settings(max_examples=200, deadline=None)
@given(query_and_covers())
def test_merge_preserves_region(case):
    query, covers = case
    pieces = subtract_all(query, covers)
    merged = merge_adjacent(pieces)
    assert sum(p.volume() for p in merged) == sum(p.volume() for p in pieces)
    for i, a in enumerate(merged):
        for b in merged[i + 1:]:
            assert a.intersect(b) is None
    assert len(merged) <= len(pieces)


@settings(max_examples=200, deadline=None)
@given(query_and_covers())
def test_covers_fully_matches_empty_remainder(case):
    query, covers = case
    assert covers_fully(query, covers) == (
        not remainder_decomposition(query, covers)
    )
