"""Unit tests for the row-store table."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType as T


@pytest.fixture
def table():
    schema = Schema(
        [
            Attribute("City", T.STRING),
            Attribute("Pop", T.INT),
        ]
    )
    return Table("Cities", schema, [("Seattle", 750), ("Boston", 690)])


class TestAppend:
    def test_append_and_len(self, table):
        table.append(("Austin", 980))
        assert len(table) == 3

    def test_wrong_width(self, table):
        with pytest.raises(TypeMismatchError):
            table.append(("OnlyCity",))

    def test_wrong_type(self, table):
        with pytest.raises(TypeMismatchError):
            table.append(("Austin", "many"))

    def test_coercion_applied(self, table):
        table.append(("Austin", 980.0))
        assert table.rows[-1] == ("Austin", 980)

    def test_empty_name_rejected(self, table):
        with pytest.raises(SchemaError):
            Table("", table.schema)


class TestAccessors:
    def test_column(self, table):
        assert table.column("City") == ["Seattle", "Boston"]

    def test_distinct(self, table):
        table.append(("Seattle", 1))
        assert table.distinct("City") == {"Seattle", "Boston"}

    def test_select(self, table):
        big = table.select(lambda row: row[1] > 700)
        assert big == [("Seattle", 750)]

    def test_getter(self, table):
        get_pop = table.getter("Pop")
        assert [get_pop(row) for row in table] == [750, 690]

    def test_iteration_order(self, table):
        assert list(table) == [("Seattle", 750), ("Boston", 690)]
