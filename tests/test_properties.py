"""End-to-end property tests: PayLess must be correct and never overpay.

Hypothesis drives randomized query workloads against the mini weather
market and checks the system's core invariants:

* **Correctness** — results always equal an oracle evaluation over full
  local copies of the market tables, whatever the plan or store state;
* **Frugality** — re-issuing any query is free; cumulative spend never
  exceeds what fetching each query region directly every time would cost;
* **Consistency** — the billing ledger agrees with the per-query deltas.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PayLess
from repro.core.plans import JoinNode, MarketAccessNode
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.relational.engine import evaluate
from repro.relational.table import Table

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

COUNTRIES = ["CountryA", "CountryB"]
CITIES = ["Alpha", "Beta", "Gamma", "Delta"]


@st.composite
def weather_queries(draw):
    """A random conjunctive query over the mini weather schema."""
    table_choice = draw(st.sampled_from(["weather", "station", "join"]))
    predicates = []
    params = []
    if table_choice in ("weather", "join"):
        if draw(st.booleans()):
            low = draw(st.integers(1, 10))
            high = draw(st.integers(low, 10))
            predicates.append("Weather.Date >= ? AND Weather.Date <= ?")
            params.extend([low, high])
        if draw(st.booleans()):
            predicates.append("Weather.Country = ?")
            params.append(draw(st.sampled_from(COUNTRIES)))
    if table_choice in ("station", "join"):
        kind = draw(st.sampled_from(["none", "point", "set"]))
        if kind == "point":
            predicates.append("Station.City = ?")
            params.append(draw(st.sampled_from(CITIES)))
        elif kind == "set":
            chosen = draw(
                st.lists(st.sampled_from(CITIES), min_size=2, max_size=3,
                         unique=True)
            )
            inner = ", ".join("?" for __ in chosen)
            predicates.append(f"Station.City IN ({inner})")
            params.extend(chosen)
    if table_choice == "weather":
        sql = "SELECT * FROM Weather"
    elif table_choice == "station":
        sql = "SELECT * FROM Station"
    else:
        sql = "SELECT Temperature FROM Station, Weather"
        predicates.append("Station.StationID = Weather.StationID")
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql, tuple(params)


def oracle(payless, market, sql, params):
    database = Database()
    logical = payless.compile(sql, params)
    for name in logical.tables:
        if payless.context.is_market(name):
            __, market_table = market.find_table(name)
            clone = Table(name, market_table.schema)
            clone.extend(market_table.table.rows)
            database.add(clone)
        else:
            database.add(payless.local_db.table(name))
    return evaluate(database, logical)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(queries=st.lists(weather_queries(), min_size=1, max_size=5))
def test_random_sessions_match_oracle_and_never_repay(
    mini_weather_market, queries
):
    payless = PayLess.full(mini_weather_market)
    payless.register_dataset("WHW")
    ledger_start = mini_weather_market.ledger.total_transactions

    spent = 0
    for sql, params in queries:
        result = payless.query(sql, params)
        expected = oracle(payless, mini_weather_market, sql, params)
        assert sorted(result.rows, key=repr) == sorted(
            expected.rows, key=repr
        ), sql
        assert result.transactions >= 0
        spent += result.transactions

        # A repeat may legally switch plan shape (bind join → direct) and
        # buy tuples outside the first plan's region — possibly even more
        # than the first run paid (the direct region is a superset of the
        # bound one).  What must hold: answers stay correct, and the cost
        # reaches zero once every plan shape's region is stored — two
        # repeats suffice, since there are only the bound and unbound
        # region variants per table and each run covers the one it chose.
        repeat = payless.query(sql, params)
        assert sorted(repeat.rows, key=repr) == sorted(
            expected.rows, key=repr
        )
        spent += repeat.transactions
        settled = payless.query(sql, params)
        assert settled.transactions == 0, f"third issue of {sql} not free"
        assert sorted(settled.rows, key=repr) == sorted(
            expected.rows, key=repr
        )

    # Ledger agreement.
    assert (
        mini_weather_market.ledger.total_transactions - ledger_start == spent
    )
    assert payless.total_transactions == spent


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=weather_queries())
def test_single_query_never_beats_direct_region_price(
    mini_weather_market, query
):
    """On a cold store, PayLess pays at most the direct region price."""
    sql, params = query
    payless = PayLess.full(mini_weather_market)
    payless.register_dataset("WHW")
    result = payless.query(sql, params)

    # Direct price: fetch each table's full request region in one go.
    logical = payless.compile(sql, params)
    direct = 0
    for table in logical.tables:
        if not payless.context.is_market(table):
            continue
        statistics = payless.catalog.statistics(table)
        boxes = statistics.space.boxes_for_constraints(
            logical.constraints_for(table)
        )
        __, market_table = mini_weather_market.find_table(table)
        schema = market_table.schema
        for box in boxes:
            rows = sum(
                1
                for row in market_table.table
                if statistics.space.row_point(row, schema) is not None
                and box.contains_point(
                    statistics.space.row_point(row, schema)
                )
            )
            direct += -(-rows // 10)  # ceil at t=10
    assert result.transactions <= direct


def plan_market_accesses(plan):
    """Every MarketAccessNode of a plan tree, in plan (execution) order."""
    if isinstance(plan, MarketAccessNode):
        return [plan]
    if isinstance(plan, JoinNode):
        return plan_market_accesses(plan.left) + plan_market_accesses(
            plan.right
        )
    return []  # LocalBlockNode and friends have no market access children


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=weather_queries())
def test_trace_spans_nest_and_account_for_the_whole_bill(
    mini_weather_market, query
):
    """Structural trace invariants, on cold and warm issues of any query:

    * spans nest — every child's interval lies within its parent's;
    * every MarketAccessNode yields exactly one ``table_fetch`` span;
    * the ``table_fetch`` spans' transactions sum to the query's bill.
    """
    sql, params = query
    payless = PayLess.full(
        mini_weather_market, tracing=True, metrics=MetricsRegistry()
    )
    payless.register_dataset("WHW")
    for __ in range(2):  # cold issue, then a store-warm repeat
        result = payless.query(sql, params)
        trace = result.trace
        assert trace is not None
        assert trace.root.kind == "query"

        for span in trace.spans():
            assert span.finished, span
            assert span.end_ms >= span.start_ms
            for child in span.children:
                assert child.start_ms >= span.start_ms
                assert child.end_ms <= span.end_ms

        accesses = plan_market_accesses(result.plan)
        access_spans = [
            span
            for span in trace.spans("table_fetch")
            if span.attrs.get("source") in ("access", "bound")
        ]
        assert len(access_spans) == len(accesses)
        assert sorted(
            span.attrs["table"].lower() for span in access_spans
        ) == sorted(node.table.lower() for node in accesses)

        total = sum(
            span.attrs.get("transactions", 0)
            for span in trace.spans("table_fetch")
        )
        assert total == result.stats.transactions
