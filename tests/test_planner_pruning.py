"""Planner pruning: B&B correctness, enumeration-count formulas, knobs.

Three layers of protection around the pruned optimizer:

* the ``plan_space_*`` formulas must equal the *actually enumerated*
  candidate counts from the unpruned oracle (zero-price tables
  included) — the formulas and the DP document each other;
* pruned-vs-unpruned planning must choose byte-identical plans at
  identical cost on every tested join graph (the tentpole invariant;
  the bench re-checks it at larger n);
* the new ``OptimizerOptions`` knobs must reject nonsense loudly.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_system
from repro.core.optimizer import (
    Optimizer,
    OptimizerOptions,
    plan_space_baseline,
    plan_space_payless,
)
from repro.errors import PlanningError
from repro.obs.metrics import MetricsRegistry
from repro.workloads.synthetic import make_join_graph


def build(shape: str, n: int, metrics: MetricsRegistry | None = None):
    """A registered installation over one synthetic join graph."""
    data = make_join_graph(shape, n)
    payless, __ = build_system("payless", data, metrics=metrics)
    return payless, data


def oracle_count(payless, sql: str) -> int:
    """Candidates the exhaustive (unpruned) left-deep DP enumerates."""
    logical = payless.compile(sql)
    result = Optimizer(
        payless.context, OptimizerOptions(prune=False)
    ).optimize(logical)
    assert result.pruned_plans == 0
    return result.evaluated_plans


class TestFormulaMatchesEnumeration:
    """plan_space_*() must equal what the DP actually enumerates."""

    @pytest.mark.parametrize("n", range(2, 9))
    def test_payless_chain(self, n):
        payless, data = build("chain", n)
        assert oracle_count(payless, data.sql) == plan_space_payless(n)

    @pytest.mark.parametrize("n", range(2, 9))
    @pytest.mark.parametrize("m", [1, 2])
    def test_payless_chain_with_zero_price_tables(self, n, m):
        if m >= n:
            pytest.skip("needs at least one priced table")
        payless, data = build("chain", n)
        # Buying table T1..Tm whole makes them zero-price (Theorem 2):
        # their request region is fully covered by the store.
        for i in range(1, m + 1):
            payless.query(f"SELECT * FROM T{i}")
        assert oracle_count(payless, data.sql) == plan_space_payless(
            n, zero_price=m
        )

    @pytest.mark.parametrize("n", range(2, 8))
    def test_baseline_chain(self, n):
        payless, data = build("chain", n)
        logical = payless.compile(data.sql)
        result = Optimizer(
            payless.context,
            OptimizerOptions(prune=False, use_theorems=False, use_sqr=False),
        ).optimize(logical)
        assert result.evaluated_plans == plan_space_baseline(n)


class TestPrunedPlanIdentity:
    """B&B + dominance pruning must never change the chosen plan."""

    @pytest.mark.parametrize(
        "shape,n",
        [
            ("chain", 4),
            ("chain", 6),
            ("chain", 8),
            ("star", 4),
            ("star", 6),
            ("star", 8),
            ("clique", 4),
            ("clique", 5),
        ],
    )
    def test_same_plan_and_cost(self, shape, n):
        payless, data = build(shape, n)
        logical = payless.compile(data.sql)
        pruned = Optimizer(
            payless.context, OptimizerOptions(prune=True)
        ).optimize(logical)
        oracle = Optimizer(
            payless.context, OptimizerOptions(prune=False)
        ).optimize(logical)
        assert pruned.plan.describe() == oracle.plan.describe()
        assert pruned.cost == oracle.cost
        assert pruned.pruned_plans > 0  # pruning actually did something
        assert oracle.pruned_plans == 0

    def test_plan_identity_survives_priming(self):
        """Same invariant after the store holds partial coverage."""
        payless, data = build("chain", 6)
        payless.query("SELECT * FROM T2")
        payless.query("SELECT * FROM T5 WHERE K4 = 1")
        logical = payless.compile(data.sql)
        pruned = Optimizer(
            payless.context, OptimizerOptions(prune=True)
        ).optimize(logical)
        oracle = Optimizer(
            payless.context, OptimizerOptions(prune=False)
        ).optimize(logical)
        assert pruned.plan.describe() == oracle.plan.describe()
        assert pruned.cost == oracle.cost

    def test_no_bnb_fallbacks_on_synthetic_graphs(self):
        """The greedy seed's bound never starves the full-key entry here."""
        metrics = MetricsRegistry()
        for shape in ("chain", "star", "clique"):
            payless, data = build(shape, 5, metrics=metrics)
            payless.query(data.sql)
        assert metrics.snapshot().get("plan_bnb_fallbacks", 0.0) == 0.0


class TestPlannerMetrics:
    def test_candidate_counters_match_planning_result(self):
        metrics = MetricsRegistry()
        payless, data = build("chain", 5, metrics=metrics)
        result = payless.query(data.sql)
        snap = metrics.snapshot()
        assert snap["plan_candidates"] == result.stats.evaluated_plans
        assert snap["plan_candidates_pruned"] > 0
        assert snap["planning_us_count"] == 1
        assert snap["planning_us_sum"] > 0

    def test_explain_reports_kept_and_pruned(self):
        payless, data = build("chain", 4)
        explanation = payless.explain(data.sql)
        planning = explanation.planning
        assert planning.kept_plans == (
            planning.evaluated_plans - planning.pruned_plans
        )
        line = str(explanation).splitlines()[-2]
        assert line.startswith("planner: ")
        assert f"{planning.pruned_plans} pruned" in line


class TestOptimizerOptionsValidation:
    def test_defaults_are_valid(self):
        options = OptimizerOptions()
        assert options.prune is True
        assert options.plan_cache_size == 256

    @pytest.mark.parametrize("bad", ["yes", 1, None])
    def test_prune_must_be_bool(self, bad):
        with pytest.raises(PlanningError, match="prune"):
            OptimizerOptions(prune=bad)

    @pytest.mark.parametrize("bad", [-1, True, 2.5, "many"])
    def test_plan_cache_size_rejects_nonsense(self, bad):
        with pytest.raises(PlanningError, match="plan_cache_size"):
            OptimizerOptions(plan_cache_size=bad)

    def test_plan_cache_size_zero_disables(self):
        assert OptimizerOptions(plan_cache_size=0).plan_cache_size == 0

    @pytest.mark.parametrize("bad", [-2, True, "lots"])
    def test_max_bind_attrs_rejects_nonsense(self, bad):
        with pytest.raises(PlanningError, match="max_bind_attrs"):
            OptimizerOptions(max_bind_attrs=bad)
