"""Unit tests for the DP optimizer (Algorithm 2 and Theorems 1-3)."""

import pytest

from repro.core.optimizer import (
    Optimizer,
    OptimizerOptions,
    plan_space_baseline,
    plan_space_payless,
)
from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    MarketAccessNode,
    market_leaves,
    plan_price,
)
from repro.errors import PlanningError


def optimize(payless, sql, params=(), **options):
    query = payless.compile(sql, params)
    optimizer = Optimizer(
        payless.context, OptimizerOptions(**options) if options else payless.options
    )
    return optimizer.optimize(query), query


class TestSingleTable:
    def test_selection_pushed(self, mini_payless):
        planning, __ = optimize(
            mini_payless,
            "SELECT * FROM Weather WHERE Country = 'CountryA' AND Date <= 3",
        )
        leaf = market_leaves(planning.plan)[0]
        assert leaf.table == "Weather"
        # 4 stations x 3 days = 12 rows estimated ≈ 2 transactions at t=10.
        assert planning.cost >= 1

    def test_unknown_table_rejected(self, mini_payless):
        with pytest.raises(Exception):
            optimize(mini_payless, "SELECT * FROM Mystery")


class TestBindJoinChoice:
    def test_bind_join_wins_for_selective_city(self, mini_payless):
        planning, __ = optimize(
            mini_payless,
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.Country = 'CountryA' "
            "AND Station.StationID = Weather.StationID",
        )
        root = planning.plan
        assert isinstance(root, JoinNode) and root.bind
        right = root.right
        assert isinstance(right, MarketAccessNode)
        assert right.bind_attributes == ("StationID",)

    def test_direct_wins_when_bindings_expensive(self, mini_weather_market):
        # Query touching most stations: binding each id costs one call each
        # (6 calls/transactions at t=10) vs one full fetch of the region.
        from repro import PayLess

        payless = PayLess.full(mini_weather_market)
        payless.register_dataset("WHW")
        planning, __ = optimize(
            payless,
            "SELECT Temperature FROM Station, Weather "
            "WHERE Station.StationID = Weather.StationID",
        )
        root = planning.plan
        assert isinstance(root, JoinNode)
        # All 60 weather rows: 6 transactions direct; bind join would cost
        # 6 stations x ceil(10/10) = 6 too — either is acceptable, but the
        # plan must be feasible and priced.
        assert planning.cost >= 6


class TestTheorem2ZeroPrice:
    def test_covered_relation_moves_to_block(self, mini_payless):
        sql = (
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.Country = 'CountryA' "
            "AND Station.StationID = Weather.StationID"
        )
        # Prime the store with all Station rows.
        mini_payless.query("SELECT * FROM Station")
        planning, __ = optimize(mini_payless, sql)
        block_nodes = [
            node
            for node in _walk(planning.plan)
            if isinstance(node, LocalBlockNode)
        ]
        assert block_nodes and "Station" in block_nodes[0].covered_market_tables

    def test_local_tables_in_block(self, mini_payless_with_local):
        planning, __ = optimize(
            mini_payless_with_local,
            "SELECT Temperature FROM CityInfo, Station, Weather "
            "WHERE CityInfo.Zone = 2 AND CityInfo.City = Station.City "
            "AND Station.StationID = Weather.StationID",
        )
        blocks = [
            node
            for node in _walk(planning.plan)
            if isinstance(node, LocalBlockNode)
        ]
        assert blocks and blocks[0].tables == ("CityInfo",)


class TestTheorem3Partition:
    def test_disconnected_relations_cartesian(self, mini_payless):
        planning, __ = optimize(
            mini_payless,
            "SELECT * FROM Station, Weather "
            "WHERE City = 'Beta' AND Weather.Date = 1",
        )
        roots = [n for n in _walk(planning.plan) if isinstance(n, JoinNode)]
        assert any(node.cartesian for node in roots)


class TestObjectives:
    def test_min_calls_prefers_fewer_calls(self, mini_weather_market):
        from repro import PayLess

        # City Alpha has two stations: bind join = 1 + 2 calls; direct
        # country fetch = 2 calls. Minimizing-calls must pick direct.
        payless = PayLess.minimizing_calls(mini_weather_market)
        payless.register_dataset("WHW")
        planning, __ = optimize(
            payless,
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Alpha' AND Station.Country = 'CountryA' "
            "AND Weather.Country = 'CountryA' "
            "AND Station.StationID = Weather.StationID",
            objective="calls",
            use_sqr=False,
        )
        root = planning.plan
        assert isinstance(root, JoinNode)
        assert not root.bind

    def test_invalid_objective(self):
        with pytest.raises(PlanningError):
            OptimizerOptions(objective="latency")


class TestBushyEnumeration:
    def test_disable_all_explores_more_plans(self, mini_payless):
        sql = (
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.Country = 'CountryA' "
            "AND Station.StationID = Weather.StationID"
        )
        with_theorems, __ = optimize(
            mini_payless, sql, use_sqr=False, use_theorems=True
        )
        without, __ = optimize(
            mini_payless, sql, use_sqr=False, use_theorems=False
        )
        assert without.evaluated_plans >= with_theorems.evaluated_plans

    def test_bushy_plan_feasible_and_comparable(self, mini_payless):
        sql = (
            "SELECT Temperature FROM Station, Weather "
            "WHERE City = 'Beta' AND Station.Country = 'CountryA' "
            "AND Station.StationID = Weather.StationID"
        )
        with_theorems, __ = optimize(
            mini_payless, sql, use_sqr=False, use_theorems=True
        )
        bushy, __ = optimize(mini_payless, sql, use_sqr=False, use_theorems=False)
        # Theorem 1: restricting to left-deep loses nothing.
        assert with_theorems.cost <= bushy.cost + 1e-9


class TestPlanSpaceFormulas:
    def test_baseline_close_to_paper_approximation(self):
        # The paper's "≈ 6^n − 5^n" uses the untightened binding bound
        # (the closed-form view, not the exact enumerated count).
        for n in range(5, 12):
            exact = plan_space_baseline(n, tightened=False, enumerated=False)
            approx = 6 ** n - 5 ** n
            assert exact == pytest.approx(approx, rel=0.35)

    def test_tightened_no_larger_than_untightened(self):
        for n in range(3, 12):
            assert plan_space_baseline(
                n, enumerated=False
            ) <= plan_space_baseline(n, tightened=False, enumerated=False)

    def test_payless_polynomial(self):
        for n in range(3, 12):
            exact = plan_space_payless(n)
            approx = 2 ** n + (2 / 3) * n ** 3
            assert exact == pytest.approx(approx, rel=1.2)

    def test_payless_much_smaller(self):
        # Exact enumerated counts: left-deep + Theorems 1-3 vs bushy.
        assert plan_space_payless(8) < plan_space_baseline(8) / 10
        # The paper's closed forms are even further apart.
        assert plan_space_payless(8, enumerated=False) < (
            plan_space_baseline(8, enumerated=False) / 100
        )

    def test_zero_price_relations_shrink_space(self):
        assert plan_space_payless(8, zero_price=3) < plan_space_payless(8)


def _walk(node):
    yield node
    if isinstance(node, JoinNode):
        yield from _walk(node.left)
        yield from _walk(node.right)
