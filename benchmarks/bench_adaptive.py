"""Adaptive re-optimization: dollars saved on misestimates, free when idle.

Three acceptance gates guard mid-query re-planning:

* **savings** — on correlated-skew join graphs whose value column piles
  onto the low end of its domain (so a range constraint is badly
  misestimated by the uniform prior), running with
  ``AdaptivePolicy()`` must cut total market transactions by at least
  ``SAVINGS_GATE`` versus the static plan while returning byte-identical
  rows;
* **overhead** — on a uniform chain whose estimates are exact (so the
  divergence check never trips), adaptive execution must cost at most
  ``OVERHEAD_GATE``x the static wall-clock and bill exactly the same
  transactions;
* **isomer** — the ``FeedbackHistogram.estimate`` hot loop (run once per
  candidate box per planning pass, so it multiplies into every re-plan)
  must beat the pre-optimization baseline committed below.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--smoke|--ci]

Default mode writes ``benchmarks/results/adaptive.txt`` and appends a
trajectory entry to ``BENCH_adaptive.json`` at the repo root.  ``--ci``
runs all gates without touching the committed files; ``--smoke`` runs
the smallest scenario and skips the gates.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import DataMarket, PayLess  # noqa: E402
from repro.core.objectives import AdaptivePolicy, QueryOptions  # noqa: E402
from repro.semstore.boxes import Box  # noqa: E402
from repro.semstore.space import BoxSpace, Dimension  # noqa: E402
from repro.stats.isomer import FeedbackHistogram  # noqa: E402
from repro.workloads.synthetic import make_join_graph  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "adaptive.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_adaptive.json"

#: Adaptive must save at least this fraction of static transactions.
SAVINGS_GATE = 0.20
#: ...and cost at most this wall-clock factor when it never trips.
OVERHEAD_GATE = 1.10

#: Correlated-skew scenarios: the V column piles onto the low end of
#: [1, domain_high] (power-law, sharper as skew grows), so ``V > 200``
#: keeps far fewer rows than the uniform estimate expects.  The static
#: planner therefore prices bind joins off an inflated prefix and buys
#: whole tables; adaptive notices the tiny prefix after the first fetch
#: and re-plans the remaining joins as cheap bind joins.
SAVINGS_SCENARIOS = (
    {"label": "chain2", "n": 2, "domain_high": 400, "skew": 15.0,
     "rows": 1000, "tpt": 5},
    {"label": "chain3", "n": 3, "domain_high": 400, "skew": 15.0,
     "rows": 1000, "tpt": 10},
)
SMOKE_SCENARIOS = (SAVINGS_SCENARIOS[0],)

#: Uniform chain for the no-trip overhead arm: tables are exact small
#: cross products, so every join estimate is exact and the divergence
#: check never fires.
OVERHEAD_CHAIN_N = 7
OVERHEAD_ROUNDS = 5

#: FeedbackHistogram microbench shape: disjoint refined stripes probed
#: by wide boxes, the regime Algorithm 1 produces during re-planning.
ISOMER_BOXES = 500
ISOMER_PROBES = 200
#: Pre-optimization baselines, measured on this benchmark before the
#: cached-volume / running-totals / allocation-free-overlap rewrite of
#: ``FeedbackHistogram`` (see stats/isomer.py): 273.1 us per estimate,
#: 165.4 us per observe at 500 refined boxes.
ISOMER_BASELINE_ESTIMATE_US = 273.1
ISOMER_BASELINE_OBSERVE_US = 165.4


def _scenario_sql(n: int) -> str:
    tables = ", ".join(f"T{i}" for i in range(1, n + 1))
    joins = " AND ".join(
        f"T{i}.K{i} = T{i + 1}.K{i}" for i in range(1, n)
    )
    where = f"{joins} AND T1.V > 200" if joins else "T1.V > 200"
    return f"SELECT * FROM {tables} WHERE {where}"


def _run_once(data, sql: str, adaptive: AdaptivePolicy | None):
    market = DataMarket()
    for dataset in data.datasets:
        market.publish(dataset)
    payless = PayLess(
        market,
        local_db=data.local_database(),
        options=QueryOptions(adaptive=adaptive),
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)
    start = time.perf_counter()
    result = payless.query(sql)
    wall_ms = (time.perf_counter() - start) * 1000.0
    return result, wall_ms


def bench_savings(scenario: dict) -> dict:
    data = make_join_graph(
        "chain",
        scenario["n"],
        tuples_per_transaction=scenario["tpt"],
        domain_high=scenario["domain_high"],
        skew=scenario["skew"],
        rows=scenario["rows"],
    )
    sql = _scenario_sql(scenario["n"])
    static, static_ms = _run_once(data, sql, None)
    adaptive, adaptive_ms = _run_once(data, sql, AdaptivePolicy())
    static_txns = static.stats.transactions
    adaptive_txns = adaptive.stats.transactions
    saved = (
        1.0 - adaptive_txns / static_txns if static_txns > 0 else 0.0
    )
    return {
        "label": scenario["label"],
        "static_transactions": static_txns,
        "adaptive_transactions": adaptive_txns,
        "saved_fraction": saved,
        "replans": adaptive.stats.replans,
        "replan_dollars_saved_est": adaptive.stats.replan_dollars_saved_est,
        "static_ms": static_ms,
        "adaptive_ms": adaptive_ms,
        "identical_results": (
            sorted(static.relation.rows) == sorted(adaptive.relation.rows)
        ),
    }


def bench_overhead() -> dict:
    """Best-of-N wall-clock, adaptive-on vs off, when nothing trips."""
    data = make_join_graph("chain", OVERHEAD_CHAIN_N)
    sql = data.sql
    best = {}
    outcome = {}
    for arm, policy in (("static", None), ("adaptive", AdaptivePolicy())):
        best[arm] = float("inf")
        for __ in range(OVERHEAD_ROUNDS):
            result, wall_ms = _run_once(data, sql, policy)
            best[arm] = min(best[arm], wall_ms)
            outcome[arm] = result.stats
    ratio = (
        best["adaptive"] / best["static"]
        if best["static"] > 0
        else float("inf")
    )
    return {
        "chain_n": OVERHEAD_CHAIN_N,
        "static_ms": best["static"],
        "adaptive_ms": best["adaptive"],
        "ratio": ratio,
        "replans": outcome["adaptive"].replans,
        "same_transactions": (
            outcome["static"].transactions
            == outcome["adaptive"].transactions
        ),
    }


def bench_isomer() -> dict:
    """The FeedbackHistogram hot loop, after the caching rewrite."""
    rng = random.Random(7)
    space = BoxSpace(
        "T",
        [Dimension("a", False, 0, 100000), Dimension("b", False, 0, 1000)],
    )
    hist = FeedbackHistogram(space, cardinality=1_000_000)
    for i in range(ISOMER_BOXES):
        low = i * 200
        hist.observe(
            Box(((low, low + 100), (0, 1000))), rng.randint(1, 5000)
        )
    probes = []
    for __ in range(ISOMER_PROBES):
        low = rng.randrange(0, 99000)
        probes.append(Box(((low, low + 1000), (0, 1000))))
    best = float("inf")
    for __ in range(5):
        start = time.perf_counter()
        for probe in probes:
            hist.estimate(probe)
        best = min(best, time.perf_counter() - start)
    estimate_us = best / ISOMER_PROBES * 1e6
    start = time.perf_counter()
    for __ in range(ISOMER_PROBES):
        low = rng.randrange(0, 99000)
        hist.observe(Box(((low, low + 50), (0, 1000))), 10)
    observe_us = (time.perf_counter() - start) / ISOMER_PROBES * 1e6
    return {
        "refined_boxes": ISOMER_BOXES,
        "estimate_us": estimate_us,
        "estimate_baseline_us": ISOMER_BASELINE_ESTIMATE_US,
        "estimate_speedup": ISOMER_BASELINE_ESTIMATE_US / estimate_us,
        "observe_us": observe_us,
        "observe_baseline_us": ISOMER_BASELINE_OBSERVE_US,
        "observe_speedup": ISOMER_BASELINE_OBSERVE_US / observe_us,
    }


def render(savings: list[dict], overhead: dict, isomer: dict) -> str:
    lines = [
        "adaptive: mid-query re-planning savings + no-trip overhead",
        "",
        f"{'scenario':>8} | {'static':>6} | {'adaptive':>8} | "
        f"{'saved':>6} | replans | identical",
    ]
    for row in savings:
        lines.append(
            f"{row['label']:>8} | {row['static_transactions']:>6} | "
            f"{row['adaptive_transactions']:>8} | "
            f"{row['saved_fraction']:>6.1%} | {row['replans']:>7} | "
            f"{'yes' if row['identical_results'] else 'NO'}"
        )
    lines += [
        "",
        f"no-trip overhead (uniform chain n={overhead['chain_n']}, "
        f"best of {OVERHEAD_ROUNDS}): "
        f"static {overhead['static_ms']:.1f} ms, "
        f"adaptive {overhead['adaptive_ms']:.1f} ms "
        f"({overhead['ratio']:.2f}x), "
        f"{overhead['replans']} replans, "
        f"bills {'equal' if overhead['same_transactions'] else 'DIFFER'}",
        "",
        f"isomer estimate hot loop ({isomer['refined_boxes']} refined "
        f"boxes): {isomer['estimate_baseline_us']:.1f} -> "
        f"{isomer['estimate_us']:.1f} us/estimate "
        f"({isomer['estimate_speedup']:.2f}x), "
        f"observe {isomer['observe_baseline_us']:.1f} -> "
        f"{isomer['observe_us']:.1f} us ({isomer['observe_speedup']:.2f}x)",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest scenario for a quick check; no gates, no files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="all scenarios + acceptance gates, but no result files",
    )
    args = parser.parse_args()

    scenarios = SMOKE_SCENARIOS if args.smoke else SAVINGS_SCENARIOS
    savings = [bench_savings(scenario) for scenario in scenarios]
    overhead = bench_overhead()
    isomer = bench_isomer()
    text = render(savings, overhead, isomer)
    print(text)

    if not args.smoke:
        ok = True
        print()
        for row in savings:
            passed = (
                row["saved_fraction"] >= SAVINGS_GATE
                and row["identical_results"]
                and row["replans"] >= 1
            )
            ok = ok and passed
            print(
                f"savings gate ({row['label']}, >={SAVINGS_GATE:.0%} "
                f"saved, identical rows): {row['saved_fraction']:.1%} — "
                f"{'PASS' if passed else 'FAIL'}"
            )
        overhead_ok = (
            overhead["ratio"] <= OVERHEAD_GATE
            and overhead["same_transactions"]
            and overhead["replans"] == 0
        )
        ok = ok and overhead_ok
        print(
            f"overhead gate (no trips, <={OVERHEAD_GATE:g}x wall, equal "
            f"bills): {overhead['ratio']:.2f}x — "
            f"{'PASS' if overhead_ok else 'FAIL'}"
        )
        isomer_ok = isomer["estimate_us"] < isomer["estimate_baseline_us"]
        ok = ok and isomer_ok
        print(
            f"isomer gate (estimate beats {ISOMER_BASELINE_ESTIMATE_US:g} "
            f"us baseline): {isomer['estimate_us']:.1f} us — "
            f"{'PASS' if isomer_ok else 'FAIL'}"
        )
        if not ok:
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "adaptive",
                "savings_gate": SAVINGS_GATE,
                "overhead_gate": OVERHEAD_GATE,
                "savings": savings,
                "overhead": overhead,
                "isomer": isomer,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
