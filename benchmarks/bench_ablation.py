"""Ablations beyond the paper's figures — design choices DESIGN.md calls out.

* **Histogram resolution** — the feedback histogram's refined-box budget
  trades estimation accuracy for planning speed; too coarse and the
  optimizer mis-prices remainders.
* **Batch (multi-query) ordering** — the conclusion's future-work sketch:
  executing a batch containing broad + narrow overlapping queries in
  containment order vs a worst-case narrow-first order.
* **Consistency levels** — what weak / X-week / strong cost over a session
  with periodic re-issues (the Section 4.3 trade-off, quantified).
"""

from __future__ import annotations

import pytest

from repro import ConsistencyPolicy, PayLess
from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system
from repro.bench.reporting import summary_table
from repro.core.batch import execute_batch
from repro.stats import isomer


def test_histogram_resolution(benchmark, profile, report):
    """Total spend as the histogram's refined-box budget varies."""
    data = make_workload("real", profile)
    instances = make_instances("real", data, 5, profile)

    def run_with_budget(budget):
        original = isomer.DEFAULT_MAX_BOXES
        isomer.DEFAULT_MAX_BOXES = budget
        try:
            payless, __ = build_system("payless", data)
            for table in payless.catalog._tables.values():  # noqa: SLF001
                table.histogram.max_boxes = budget
            total = 0
            for instance in instances:
                total += payless.query(instance.sql, instance.params).transactions
            return total
        finally:
            isomer.DEFAULT_MAX_BOXES = original

    def sweep():
        return {budget: run_with_budget(budget) for budget in (8, 64, 512)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_histogram",
        summary_table(
            "Ablation: feedback-histogram resolution vs total spend",
            [[budget, total] for budget, total in results.items()],
            ["max refined boxes", "total transactions"],
        ),
    )
    # Coarser statistics must never *help* by more than noise: the finest
    # setting should be within 20% of the best observed.
    best = min(results.values())
    assert results[512] <= best * 1.2 + 5


def test_batch_ordering(benchmark, profile, report):
    """Containment-ordered batch vs adversarial narrow-first execution."""
    data = make_workload("real", profile)
    country = data.countries[0]
    days = data.config.days
    batch = [
        (
            "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
            (country, 1 + 7 * i, 1 + 7 * i + 6),
        )
        for i in range(6)
    ] + [
        (
            "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
            (country, 1, days),
        )
    ]

    def run():
        clever_system, __ = build_system("payless", data)
        clever = execute_batch(clever_system, batch).total_transactions
        naive_system, __ = build_system("payless", data)
        naive = sum(
            naive_system.query(sql, params).transactions
            for sql, params in batch
        )
        return clever, naive

    clever, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_batch",
        summary_table(
            "Ablation: multi-query batch ordering (6 narrow + 1 broad query)",
            [["containment-ordered (PayLess batch)", clever],
             ["submission order (narrow first)", naive]],
            ["strategy", "total transactions"],
        ),
    )
    assert clever <= naive


def test_learning_curve(benchmark, profile, report):
    """The learning optimizer's premise: later queries cost less.

    Splits a session in half and compares per-query spend: the second half
    should be much cheaper — partly semantic reuse, partly better
    statistics.  Also contrasts the three pluggable statistics.
    """
    data = make_workload("real", profile)
    instances = make_instances("real", data, 8, profile)
    half = len(instances) // 2

    def run():
        from repro.market.server import DataMarket

        rows = []
        for statistic in ("isomer", "independence", "uniform"):
            market = DataMarket()
            for dataset in data.datasets:
                market.publish(dataset)
            payless = PayLess.full(
                market, local_db=data.local_database(), statistic=statistic
            )
            for dataset in data.datasets:
                payless.register_dataset(dataset.name)
            first = sum(
                payless.query(i.sql, i.params).transactions
                for i in instances[:half]
            )
            second = sum(
                payless.query(i.sql, i.params).transactions
                for i in instances[half:]
            )
            rows.append([statistic, first, second])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_learning",
        summary_table(
            "Ablation: per-half session spend under each statistic",
            rows,
            ["statistic", "first half", "second half"],
        ),
    )
    for __, first, second in rows:
        assert second < first  # the store + statistics must pay off


def test_consistency_cost(benchmark, profile, report):
    """Weekly re-issues under the three consistency levels."""
    data = make_workload("real", profile)
    sql = (
        "SELECT City, AVG(Temperature) FROM Station, Weather "
        "WHERE Station.Country = Weather.Country = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Station.StationID = Weather.StationID GROUP BY City"
    )
    params = (data.countries[0], 1, 30)

    def run():
        totals = {}
        for label, policy in (
            ("weak", ConsistencyPolicy.weak()),
            ("2-week", ConsistencyPolicy.weeks(2)),
            ("strong", ConsistencyPolicy.strong()),
        ):
            base, __ = build_system("payless", data)
            payless = PayLess(
                base.market, local_db=data.local_database(), consistency=policy
            )
            for dataset in data.datasets:
                payless.register_dataset(dataset.name)
            total = 0
            for __week in range(6):
                total += payless.query(sql, params).transactions
                payless.store.advance_clock(1)
            totals[label] = total
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_consistency",
        summary_table(
            "Ablation: 6 weekly re-issues under each consistency level",
            [[label, total] for label, total in totals.items()],
            ["consistency", "total transactions"],
        ),
    )
    assert totals["weak"] <= totals["2-week"] <= totals["strong"]
