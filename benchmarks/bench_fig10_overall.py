"""Figure 10 — overall effectiveness.

Cumulative data-market transactions over a session of query instances, for
the four systems of the paper: PayLess, PayLess w/o SQR, Minimizing Calls,
and Download All; on the real (weather) workload, TPC-H, and TPC-H skew.

Paper shapes to validate (absolute numbers differ — synthetic, scaled data):

* real data: PayLess ≪ Minimizing Calls ≪ Download All, with PayLess w/o
  SQR in between;
* TPC-H (both): Minimizing Calls and PayLess w/o SQR end up *above*
  Download All (scan-heavy queries re-buy overlapping data); full PayLess
  stays below Download All until the whole dataset is cached, then
  flattens.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import FIG10_SYSTEMS, figure10
from repro.bench.reporting import series_table

LABELS = {
    "payless": "PayLess",
    "payless_nosqr": "PayLess w/o SQR",
    "min_calls": "Minimizing Calls",
    "download_all": "Download All",
}


@pytest.mark.parametrize("workload", ["real", "tpch", "tpch_skew"])
def test_fig10(benchmark, profile, report, workload):
    sessions = benchmark.pedantic(
        figure10, args=(workload, profile), rounds=1, iterations=1
    )
    series = {
        LABELS[system]: sessions[system].cumulative_transactions
        for system in FIG10_SYSTEMS
    }
    report(
        f"fig10_{workload}",
        series_table(
            f"Figure 10 ({workload}): cumulative transactions",
            series,
        ),
    )
    payless = sessions["payless"].total_transactions
    assert payless <= sessions["payless_nosqr"].total_transactions
    assert payless <= sessions["min_calls"].total_transactions
