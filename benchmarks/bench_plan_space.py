"""Section 4.1 analysis — plan-space size formulas and optimizer latency.

Two ablations beyond the paper's figures:

* the closed-form search-space sizes (≈ 6^n − 5^n for plain bushy DP vs
  ≈ 2^n' + (2/3)·n'³ with Theorems 1-3) tabulated for chain queries;
* the paper's Section 5 "Efficiency" claim — optimization finishes in
  milliseconds — measured directly with pytest-benchmark on a 4-table
  real-workload join.
"""

from __future__ import annotations

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system
from repro.bench.reporting import summary_table
from repro.core.optimizer import (
    Optimizer,
    plan_space_baseline,
    plan_space_payless,
)


def test_plan_space_formulas(benchmark, report):
    def tabulate():
        return [
            [
                n,
                plan_space_baseline(n, tightened=False, enumerated=False),
                plan_space_baseline(n),
                plan_space_payless(n),
                plan_space_payless(n, zero_price=2),
            ]
            for n in range(3, 11)
        ]

    rows = benchmark(tabulate)
    report(
        "plan_space",
        summary_table(
            "Section 4.1: plan-space sizes for chain queries",
            rows,
            [
                "n",
                "bushy (≈6^n−5^n)",
                "bushy exact",
                "PayLess exact",
                "PayLess exact (m=2 free)",
            ],
        ),
    )
    for n in range(3, 11):
        assert plan_space_payless(n) < plan_space_baseline(n)


def test_optimization_latency(benchmark, profile, report):
    """Optimize (not execute) the paper's Q5 analogue repeatedly."""
    data = make_workload("real", profile)
    payless, __ = build_system("payless", data)
    instance = next(
        q for q in make_instances("real", data, 1, profile) if q.template == "Q5"
    )
    logical = payless.compile(instance.sql, instance.params)
    optimizer = Optimizer(payless.context, payless.options)

    result = benchmark(optimizer.optimize, logical)
    report(
        "efficiency",
        "Section 5 'Efficiency': optimizing the 4-table Q5 template took "
        f"mean {benchmark.stats.stats.mean * 1e3:.2f} ms "
        f"(evaluated {result.evaluated_plans} candidate plans). The paper "
        "reports optimization 'within milliseconds'.",
    )
    assert benchmark.stats.stats.mean < 0.25  # a quarter second, generously
