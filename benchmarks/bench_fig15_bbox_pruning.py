"""Figure 15 — effectiveness of Algorithm 1's bounding-box pruning rules.

Average number of candidate bounding boxes per query: the raw enumeration
("No Pruning") vs the boxes surviving the minimality and price rules
("PayLess").  The paper reports roughly an order of magnitude reduction;
a single instrumented PayLess run yields both series.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure15
from repro.bench.reporting import summary_table

Q_VALUES = {"real": (3, 6, 9), "tpch": (1, 2, 3), "tpch_skew": (1, 2, 3)}


@pytest.mark.parametrize("workload", ["real", "tpch", "tpch_skew"])
def test_fig15(benchmark, profile, report, workload):
    q_values = Q_VALUES[workload]
    results = benchmark.pedantic(
        figure15, args=(workload, q_values, profile), rounds=1, iterations=1
    )
    rows = []
    for q in q_values:
        kept = results["PayLess"][q]
        raw = results["No Pruning"][q]
        rows.append(
            [q, round(kept, 1), round(raw, 1),
             round(raw / kept, 1) if kept else float("inf")]
        )
    report(
        f"fig15_{workload}",
        summary_table(
            f"Figure 15 ({workload}): avg bounding boxes per query",
            rows,
            ["q", "PayLess (pruned)", "No Pruning", "reduction x"],
        ),
    )
    for q in q_values:
        assert results["PayLess"][q] <= results["No Pruning"][q]
