"""Figure 11 — varying the number of tuples per transaction (t).

PayLess vs the Download-All bound at t ∈ {50, 100, 500}.  Smaller t means
more transactions for the same tuples, lifting every curve; the *ordering*
must not change: PayLess stays below Download All on the real workload for
every t, and on TPC-H it stays below until the whole dataset is cached.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.figures import figure11
from repro.bench.reporting import summary_table
from repro.workloads.weather import WeatherConfig

T_VALUES = (50, 100, 500)


@pytest.mark.parametrize("workload", ["real", "tpch", "tpch_skew"])
def test_fig11(benchmark, profile, report, workload):
    if workload == "real":
        # t=500 only separates the systems when the dataset is much larger
        # than t x (calls per session) — the paper's Weather table has
        # 19.5M rows.  Scale the generator up for this figure.
        profile = replace(
            profile,
            weather=WeatherConfig(stations_per_country=60, days=240),
        )
    results = benchmark.pedantic(
        figure11, args=(workload, T_VALUES, profile), rounds=1, iterations=1
    )
    rows = []
    for t in T_VALUES:
        payless = results[f"payless_t{t}"]
        bound = results[f"download_all_t{t}"]
        rows.append(
            [t, payless.total_transactions, bound,
             round(bound / max(payless.total_transactions, 1), 2)]
        )
    report(
        f"fig11_{workload}",
        summary_table(
            f"Figure 11 ({workload}): total transactions vs page size t",
            rows,
            ["t", "PayLess", "Download All", "ratio"],
        ),
    )
    if workload == "real":
        for t in T_VALUES:
            assert (
                results[f"payless_t{t}"].total_transactions
                < results[f"download_all_t{t}"]
            )
