"""Figure 12 — varying q, the number of query instances per template.

PayLess vs the Download-All bound as the session grows.  The paper's point:
the ordering is insensitive to q; on real data PayLess stays under the
bound for every q, on TPC-H its cumulative curve crosses the bound only
around the point where the entire dataset has been bought.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure12
from repro.bench.reporting import summary_table

#: Scaled-down analogues of the paper's {100, 200, 300} / {5, 10, 20}.
Q_VALUES = {"real": (5, 10, 15), "tpch": (1, 2, 3), "tpch_skew": (1, 2, 3)}


@pytest.mark.parametrize("workload", ["real", "tpch", "tpch_skew"])
def test_fig12(benchmark, profile, report, workload):
    q_values = Q_VALUES[workload]
    results = benchmark.pedantic(
        figure12, args=(workload, q_values, profile), rounds=1, iterations=1
    )
    bound = results["download_all"]
    rows = []
    for q in q_values:
        session = results[f"payless_q{q}"]
        rows.append(
            [
                q,
                len(session.cumulative_transactions),
                session.total_transactions,
                bound,
            ]
        )
    report(
        f"fig12_{workload}",
        summary_table(
            f"Figure 12 ({workload}): total transactions vs q",
            rows,
            ["q", "queries", "PayLess", "Download All bound"],
        ),
    )
    if workload == "real":
        for q in q_values:
            assert results[f"payless_q{q}"].total_transactions < bound
