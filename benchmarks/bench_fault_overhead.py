"""Fault-transport overhead: the money-safe path must be free when clean.

The money-safe transport (``repro.market.transport``) sits between the
executor and every market call.  Its value shows up only under faults, so
its cost with fault injection *off* must be negligible — that is the
acceptance gate here.  Two measurements:

* **call overhead** — raw ``market.get`` in a loop vs ``transport.fetch``
  with no fault policy (the fast path the executor takes by default);
* **session overhead** — a Figure-10-style query session through PayLess
  built with the default transport vs one with chaos knobs configured but
  the fault rate at zero (retries armed, breakers allocated, keys off
  because no policy is attached).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py [--smoke]

Writes ``benchmarks/results/fault_overhead.txt``; ``--smoke`` shrinks the
iteration counts for CI and skips the results file.  The gate: fault-free
per-call overhead below 25% (the fast path is one attribute check — the
margin is generous because the absolute cost is microseconds).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.market.faults import FaultPolicy  # noqa: E402
from repro.market.rest import RestRequest  # noqa: E402
from repro.market.transport import MarketTransport, TransportConfig  # noqa: E402
from repro.relational.query import AttributeConstraint  # noqa: E402
from repro.testing import registered_payless, tiny_weather_market  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "fault_overhead.txt"

SESSION = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Alpha' AND Station.StationID = Weather.StationID",
    "SELECT * FROM Station",
    "SELECT Temperature FROM Weather WHERE Country = 'CountryA'",
    "SELECT Temperature FROM Weather WHERE Country = 'CountryB' AND Date >= 3",
)


def requests(count: int) -> list[RestRequest]:
    return [
        RestRequest(
            "WHW",
            "Weather",
            (AttributeConstraint("StationID", value=1 + index % 4),),
        )
        for index in range(count)
    ]


def time_raw_gets(calls: int) -> float:
    market = tiny_weather_market()
    batch = requests(calls)
    start = time.perf_counter()
    for request in batch:
        market.get(request)
    return (time.perf_counter() - start) * 1000.0


def time_transport_fetches(calls: int, faults: FaultPolicy | None) -> float:
    market = tiny_weather_market()
    transport = MarketTransport(
        market,
        TransportConfig(
            faults=faults,
            retry_budget=None,
            breaker_failure_threshold=10_000,
        ),
    )
    batch = requests(calls)
    scope = transport.new_scope()
    start = time.perf_counter()
    for request in batch:
        transport.fetch(request, scope)
    return (time.perf_counter() - start) * 1000.0


def time_session(transport: TransportConfig | None, rounds: int) -> float:
    payless = registered_payless(tiny_weather_market(), transport=transport)
    start = time.perf_counter()
    for __ in range(rounds):
        for sql in SESSION:
            payless.query(sql)
    return (time.perf_counter() - start) * 1000.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration counts for CI; prints but writes no file",
    )
    args = parser.parse_args()
    calls = 500 if args.smoke else 5000
    rounds = 3 if args.smoke else 20

    # Warm-up so first-import costs don't land on either arm.
    time_raw_gets(50)
    time_transport_fetches(50, None)

    raw_ms = time_raw_gets(calls)
    clean_ms = time_transport_fetches(calls, None)
    chaos_ms = time_transport_fetches(
        calls, FaultPolicy.uniform(seed=7, rate=0.2)
    )
    session_plain_ms = time_session(None, rounds)
    session_armed_ms = time_session(
        TransportConfig(max_retries=8, breaker_failure_threshold=10_000),
        rounds,
    )

    call_overhead = (clean_ms - raw_ms) / raw_ms * 100.0
    session_overhead = (
        (session_armed_ms - session_plain_ms) / session_plain_ms * 100.0
    )
    lines = [
        "fault_overhead: money-safe transport vs raw market access",
        f"({calls} calls per arm; {rounds}x{len(SESSION)} session queries)",
        "",
        f"raw market.get            {raw_ms:>10.2f} ms",
        f"transport, faults off     {clean_ms:>10.2f} ms  "
        f"({call_overhead:+.1f}% per call)",
        f"transport, 20% faults     {chaos_ms:>10.2f} ms  "
        "(retries + keyed billing, for scale)",
        "",
        f"session, default          {session_plain_ms:>10.2f} ms",
        f"session, chaos armed      {session_armed_ms:>10.2f} ms  "
        f"({session_overhead:+.1f}%)",
    ]
    ok = call_overhead < 25.0
    lines.append("")
    lines.append(
        f"fault-free call overhead acceptance (<25%): "
        f"{'PASS' if ok else 'FAIL'}"
    )
    text = "\n".join(lines)
    print(text)

    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
