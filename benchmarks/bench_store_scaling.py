"""Store scaling: indexed probes vs the brute-force scans, by store age.

PayLess never evicts, so remainder decomposition and row assembly must stay
sub-linear in the number of stored boxes.  This bench populates identical
stores — one indexed (the default), one routed through the pre-index flat
scans (``debug_bruteforce=True``) — with 10/100/1k/5k covered boxes, then
times the two operations the optimizer and executor hammer:

* **rewrite**: remainder decomposition + coverage verdict per query box;
* **assembly**: cached-row collection over request-region batches (a few
  range boxes — what the executor runs after every market fetch);
* **fan-out**: assembly over 24 single-value boxes (the bind-join shape).
  The brute-force path is already sub-linear here via its anchor-dimension
  hash, so the index's margin is structurally smaller; it is reported
  separately for honesty and excluded from the >=5x acceptance gate.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_store_scaling.py [--smoke]

Writes ``benchmarks/results/store_scaling.txt`` and appends a trajectory
entry to ``BENCH_store.json`` at the repo root.  ``--smoke`` runs tiny
sizes for CI; it skips the JSON append and the committed results file.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.relational.schema import Attribute, Schema  # noqa: E402
from repro.relational.types import AttributeType as T  # noqa: E402
from repro.semstore.boxes import Box  # noqa: E402
from repro.semstore.space import BoxSpace, Dimension  # noqa: E402
from repro.semstore.store import SemanticStore  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "store_scaling.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_store.json"

K_HIGH = 4000
D_HIGH = 365


def make_store(debug_bruteforce: bool) -> SemanticStore:
    space = BoxSpace(
        "R",
        (
            Dimension("K", is_categorical=False, low=0, high=K_HIGH),
            Dimension("D", is_categorical=False, low=0, high=D_HIGH),
        ),
    )
    schema = Schema(
        [Attribute("K", T.INT), Attribute("D", T.INT), Attribute("V", T.FLOAT)]
    )
    store = SemanticStore(debug_bruteforce=debug_bruteforce)
    store.register_table(space, schema)
    return store


def random_box(rng: random.Random, max_k: int = 60, max_d: int = 30) -> Box:
    k_width = rng.randint(1, max_k)
    d_width = rng.randint(1, max_d)
    k_low = rng.randint(0, K_HIGH - k_width)
    d_low = rng.randint(0, D_HIGH - d_width)
    return Box(((k_low, k_low + k_width), (d_low, d_low + d_width)))


def populate(stores, boxes: int, seed: int, rows_per_box: int = 20) -> None:
    """Record the same ``boxes`` covered regions (plus rows) in every store."""
    rng = random.Random(seed)
    for __ in range(boxes):
        box = random_box(rng)
        (k0, k1), (d0, d1) = box.extents
        rows = [
            (k, d, float(k * 1000 + d))
            for k, d in {
                (rng.randint(k0, k1 - 1), rng.randint(d0, d1 - 1))
                for _ in range(rows_per_box)
            }
        ]
        for store in stores:
            store.record("R", box, rows)


def time_rewrite(store: SemanticStore, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        store.remainder("R", query)
        store.is_covered("R", query)
    return (time.perf_counter() - start) * 1000.0


def time_assembly(store: SemanticStore, batches) -> float:
    start = time.perf_counter()
    for batch in batches:
        store.rows_in_boxes("R", batch)
    return (time.perf_counter() - start) * 1000.0


def run(sizes, probes: int) -> list[dict]:
    results = []
    for size in sizes:
        indexed = make_store(debug_bruteforce=False)
        brute = make_store(debug_bruteforce=True)
        populate((indexed, brute), size, seed=size)
        rng = random.Random(size + 1)
        queries = [random_box(rng, max_k=120, max_d=60) for __ in range(probes)]
        # Request-region assembly: a handful of disjoint range boxes, as
        # produced by rewrite.request_boxes after each market fetch.
        k_step = K_HIGH // 8
        region_batches = [
            [
                Box(
                    (
                        (start, min(start + rng.randint(40, 120), start + k_step)),
                        (d_low, d_low + rng.randint(20, 60)),
                    )
                )
                for start, d_low in zip(
                    rng.sample(range(0, K_HIGH - k_step, k_step), 4),
                    (rng.randint(0, D_HIGH - 61) for __ in range(4)),
                )
            ]
            for __ in range(max(1, probes // 4))
        ]
        # Bind-join fan-out: many single-value boxes along K.
        fanout_batches = [
            [
                Box(((k, k + 1), (0, D_HIGH)))
                for k in rng.sample(range(K_HIGH), 24)
            ]
            for __ in range(max(1, probes // 4))
        ]
        # Sanity: the two stores must agree before we time anything.
        for query in queries[:5]:
            assert indexed.remainder("R", query) == brute.remainder("R", query)
            assert indexed.rows_in_boxes("R", [query]) == brute.rows_in_boxes(
                "R", [query]
            )
        row = {
            "stored_boxes": size,
            "cached_rows": indexed.table("R").cached_row_count,
            "rewrite_brute_ms": time_rewrite(brute, queries),
            "rewrite_indexed_ms": time_rewrite(indexed, queries),
            "assembly_brute_ms": time_assembly(brute, region_batches),
            "assembly_indexed_ms": time_assembly(indexed, region_batches),
            "fanout_brute_ms": time_assembly(brute, fanout_batches),
            "fanout_indexed_ms": time_assembly(indexed, fanout_batches),
        }
        for kind in ("rewrite", "assembly", "fanout"):
            indexed_ms = row[f"{kind}_indexed_ms"]
            row[f"{kind}_speedup"] = (
                row[f"{kind}_brute_ms"] / indexed_ms
                if indexed_ms > 0
                else float("inf")
            )
        results.append(row)
    return results


def render(results, probes: int) -> str:
    lines = [
        "store_scaling: indexed grid probes vs brute-force scans",
        f"({probes} query boxes per size; times are totals in ms;",
        " assembly = request-region batches, fanout = 24-way bind-join shape)",
        "",
        f"{'boxes':>6} {'rows':>7} | {'rewrite brute':>13} {'indexed':>9} "
        f"{'speedup':>8} | {'assembly brute':>14} {'indexed':>9} "
        f"{'speedup':>8} | {'fanout brute':>12} {'indexed':>9} {'speedup':>8}",
    ]
    for row in results:
        lines.append(
            f"{row['stored_boxes']:>6} {row['cached_rows']:>7} | "
            f"{row['rewrite_brute_ms']:>13.2f} {row['rewrite_indexed_ms']:>9.2f} "
            f"{row['rewrite_speedup']:>7.1f}x | "
            f"{row['assembly_brute_ms']:>14.2f} {row['assembly_indexed_ms']:>9.2f} "
            f"{row['assembly_speedup']:>7.1f}x | "
            f"{row['fanout_brute_ms']:>12.2f} {row['fanout_indexed_ms']:>9.2f} "
            f"{row['fanout_speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; prints but does not write result files",
    )
    args = parser.parse_args()

    sizes = (10, 50) if args.smoke else (10, 100, 1000, 5000)
    probes = 20 if args.smoke else 200
    results = run(sizes, probes)
    text = render(results, probes)
    print(text)

    at_1k = next(
        (row for row in results if row["stored_boxes"] == 1000), None
    )
    if at_1k is not None:
        ok = (
            at_1k["rewrite_speedup"] >= 5.0
            and at_1k["assembly_speedup"] >= 5.0
        )
        print(
            f"\n1k-box acceptance (>=5x on both): "
            f"{'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            return 1

    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "store_scaling",
                "probes": probes,
                "results": results,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
