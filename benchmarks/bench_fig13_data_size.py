"""Figure 13 — varying the data size D (TPC-H and TPC-H skew).

The paper scales the dataset {0.5 GB, 1 GB, 2 GB}; here the TPC-H generator
scale doubles/halves around the profile's base.  Both PayLess and the
Download-All bound grow with D; PayLess must stay below the bound until the
whole dataset has been fetched.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure13
from repro.bench.reporting import summary_table

SCALES = (0.5, 1.0, 2.0)


@pytest.mark.parametrize("workload", ["tpch", "tpch_skew"])
def test_fig13(benchmark, profile, report, workload):
    results = benchmark.pedantic(
        figure13, args=(workload, SCALES, profile), rounds=1, iterations=1
    )
    rows = []
    for scale in SCALES:
        session = results[f"payless_D{scale:g}"]
        bound = results[f"download_all_D{scale:g}"]
        rows.append([scale, session.total_transactions, bound])
    report(
        f"fig13_{workload}",
        summary_table(
            f"Figure 13 ({workload}): total transactions vs data size D",
            rows,
            ["D (scale)", "PayLess", "Download All bound"],
        ),
    )
    # Both series must grow with the data size.
    payless_series = [results[f"payless_D{s:g}"].total_transactions for s in SCALES]
    bounds = [results[f"download_all_D{s:g}"] for s in SCALES]
    assert bounds == sorted(bounds)
    assert payless_series[0] <= payless_series[-1]
