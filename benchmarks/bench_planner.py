"""Planner at scale: pruned DP + plan cache vs the exhaustive oracle.

The optimizer's two fast paths — branch-and-bound pruning seeded by a
greedy left-deep plan, and the epoch-keyed parameterized plan cache —
must make planning cheap on the repeat-template sessions the paper's
workloads are built from, *without ever changing the chosen plan*.  This
bench measures both on synthetic chain/star/clique join graphs up to
n=12 market tables:

* **cold**    — one fresh planning per arm (pruning only; no cache help);
* **session** — the same template explained R=8 times per arm: the
  optimized arm plans once and serves 7 cache hits, the oracle arm
  re-parses and re-plans every time (the regime ``PreparedQuery`` and
  the harness's Zipfian sessions live in);
* **parity**  — before timing anything, both arms must choose
  byte-identical plans at identical cost (the correctness gate).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_planner.py [--smoke|--ci]

Default mode writes ``benchmarks/results/planner.txt`` and appends a
trajectory entry to ``BENCH_planner.json`` at the repo root.  ``--ci``
runs the same graphs and the acceptance gate without touching the
committed files; ``--smoke`` runs tiny graphs and skips the gate.  The
gate fails the build unless the optimized arm shows a >=5x session
speedup at n=10 on both chain and star.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import build_system  # noqa: E402
from repro.workloads.synthetic import make_join_graph  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "planner.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_planner.json"

SPEEDUP_GATE = 5.0  # session speedup at n=10 chain AND star
GATED = (("chain", 10), ("star", 10))

FULL_GRAPHS = (
    ("chain", 6),
    ("chain", 8),
    ("chain", 10),
    ("chain", 12),
    ("star", 6),
    ("star", 8),
    ("star", 10),
    ("star", 12),
    ("clique", 4),
    ("clique", 6),
    ("clique", 8),
)
SMOKE_GRAPHS = (("chain", 4), ("chain", 6), ("star", 6), ("clique", 4))

#: Template repeats per session — one cold planning plus R-1 warm repeats.
REPEATS = 8


def _fresh(data, *, optimized: bool):
    """One installation per arm: pruning+cache on, or the naive oracle."""
    if optimized:
        payless, __ = build_system("payless", data)
    else:
        payless, __ = build_system(
            "payless", data, prune=False, plan_cache_size=0
        )
    return payless


def _session_ms(payless, sql: str, repeats: int) -> float:
    """Wall-clock of ``repeats`` EXPLAINs of one template (parse+plan)."""
    start = time.perf_counter()
    for __ in range(repeats):
        payless.explain(sql)
    return (time.perf_counter() - start) * 1000.0


def bench_graph(shape: str, n: int, repeats: int) -> dict:
    data = make_join_graph(shape, n)

    # Parity gate first: identical chosen plan and cost, or nothing else
    # in this row means anything.
    optimized = _fresh(data, optimized=True)
    oracle = _fresh(data, optimized=False)
    a = optimized.explain(data.sql)
    b = oracle.explain(data.sql)
    plans_match = (
        a.plan.describe() == b.plan.describe() and a.cost == b.cost
    )

    # Cold planning per arm (fresh installations so nothing is cached).
    cold_opt_ms = _session_ms(_fresh(data, optimized=True), data.sql, 1)
    cold_oracle_ms = _session_ms(_fresh(data, optimized=False), data.sql, 1)

    # Repeat-template session per arm.
    session_opt_ms = _session_ms(
        _fresh(data, optimized=True), data.sql, repeats
    )
    session_oracle_ms = _session_ms(
        _fresh(data, optimized=False), data.sql, repeats
    )

    return {
        "shape": shape,
        "n": n,
        "repeats": repeats,
        "plans_match": plans_match,
        "candidates_oracle": b.evaluated_plans,
        "candidates_pruned": a.pruned_plans,
        "candidates_kept": a.evaluated_plans - a.pruned_plans,
        "cold_oracle_ms": cold_oracle_ms,
        "cold_optimized_ms": cold_opt_ms,
        "session_oracle_ms": session_oracle_ms,
        "session_optimized_ms": session_opt_ms,
        "session_speedup": (
            session_oracle_ms / session_opt_ms
            if session_opt_ms > 0
            else float("inf")
        ),
    }


def run(graphs, repeats: int) -> list[dict]:
    return [bench_graph(shape, n, repeats) for shape, n in graphs]


def render(results) -> str:
    lines = [
        "planner: pruned DP + plan cache vs the exhaustive unpruned oracle",
        f"(session = the same template explained {results[0]['repeats']} "
        "times; the optimized arm",
        " plans once and serves the rest from the epoch-keyed plan cache;",
        " parity = byte-identical chosen plan and cost across the arms)",
        "",
        f"{'graph':>10} | {'candidates':>16} {'pruned':>7} | "
        f"{'cold orc':>9} {'opt':>8} | {'session orc':>11} {'opt':>8} "
        f"{'speedup':>8} | parity",
    ]
    for row in results:
        lines.append(
            f"{row['shape'] + str(row['n']):>10} | "
            f"{row['candidates_oracle']:>16} "
            f"{row['candidates_pruned']:>7} | "
            f"{row['cold_oracle_ms']:>9.1f} {row['cold_optimized_ms']:>8.1f} | "
            f"{row['session_oracle_ms']:>11.1f} "
            f"{row['session_optimized_ms']:>8.1f} "
            f"{row['session_speedup']:>7.1f}x | "
            f"{'ok' if row['plans_match'] else 'DIVERGED'}"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny graphs for a quick check; no gate, no result files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full graphs + the >=5x acceptance gate, but no result files",
    )
    args = parser.parse_args()

    graphs = SMOKE_GRAPHS if args.smoke else FULL_GRAPHS
    results = run(graphs, REPEATS)
    text = render(results)
    print(text)

    diverged = [r for r in results if not r["plans_match"]]
    if diverged:
        names = ", ".join(f"{r['shape']}{r['n']}" for r in diverged)
        print(f"\nplan parity FAILED on: {names}")
        return 1

    if not args.smoke:
        ok = True
        print()
        for shape, n in GATED:
            row = next(
                r for r in results if (r["shape"], r["n"]) == (shape, n)
            )
            passed = row["session_speedup"] >= SPEEDUP_GATE
            ok = ok and passed
            print(
                f"{shape} n={n} session acceptance (>={SPEEDUP_GATE:g}x): "
                f"{row['session_speedup']:.1f}x — "
                f"{'PASS' if passed else 'FAIL'}"
            )
        if not ok:
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "planner",
                "gate": SPEEDUP_GATE,
                "results": results,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
