"""Durability economics: cold-restart speed and steady-state WAL drag.

Two acceptance gates guard the durable backend's two promises:

* **cold restart** — recovering 10k covered boxes from snapshot+WAL must
  be at least **5x faster** than the legacy v1 JSON ``load_state`` path.
  The levers are the pickled tables sidecar (``export_bulk_state`` /
  ``adopt_bulk_state`` move rows, points, covers and the *prebuilt* grid
  index buckets wholesale, so restart re-derives nothing) and deferred
  row materialization (rows stay columnar until the first touch, so
  time-to-ready doesn't pay for tuples the workload may never read);
* **steady state** — with the WAL on, a warm-dominated workload (every
  range bought once, re-read three times — the system never evicts, so
  steady state *is* mostly warm) must cost at most **10%** more wall
  time than the same workload with durability off.  An all-cold sweep is
  reported alongside for honesty but not gated: it measures fsync price
  per purchase, not steady state.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_durability.py [--smoke]

Writes ``benchmarks/results/durability.txt`` and appends a trajectory
entry to ``BENCH_durability.json`` at the repo root.  ``--smoke`` runs
tiny sizes for quick iteration; it skips the gates and the result files.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    BindingPattern,
    DataMarket,
    Dataset,
    PayLess,
    PricingPolicy,
    QueryOptions,
    Table,
)
from repro.core.persistence import load_state, save_state  # noqa: E402
from repro.durable.backend import (  # noqa: E402
    DurabilityConfig,
    DurableStateBackend,
)
from repro.relational.schema import Attribute, Domain, Schema  # noqa: E402
from repro.relational.types import AttributeType as T  # noqa: E402
from repro.semstore.boxes import Box  # noqa: E402
from repro.semstore.space import BoxSpace, Dimension  # noqa: E402
from repro.semstore.store import SemanticStore  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "durability.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_durability.json"

K_HIGH = 4000
D_HIGH = 365

#: Cold-restart timing repeats; each side reports its best run.
RESTART_REPEATS = 3


# -- cold restart: snapshot+WAL vs the v1 JSON blob ---------------------------


class _Statistics:
    """A catalog entry whose histogram is not a FeedbackHistogram, so both
    restore paths skip histogram work and the comparison is store-only."""

    histogram = object()


class _Catalog:
    def __init__(self):
        self._statistics = _Statistics()

    def statistics(self, key: str) -> _Statistics:
        return self._statistics


class _RestorableInstall:
    """The duck-typed slice of PayLess that save/load/snapshot/recover
    touch: a real SemanticStore, a catalog, and the nine bill counters."""

    def __init__(self):
        space = BoxSpace(
            "R",
            (
                Dimension("K", is_categorical=False, low=0, high=K_HIGH),
                Dimension("D", is_categorical=False, low=0, high=D_HIGH),
            ),
        )
        schema = Schema(
            [
                Attribute("K", T.INT),
                Attribute("D", T.INT),
                Attribute("V", T.FLOAT),
            ]
        )
        self.store = SemanticStore()
        self.store.register_table(space, schema)
        self.catalog = _Catalog()
        self.durability = None
        self.total_transactions = 0
        self.total_price = 0.0
        self.total_calls = 0
        self.queries_executed = 0
        self.total_wasted_transactions = 0
        self.total_wasted_price = 0.0
        self.total_coalesced_fetches = 0
        self.total_coalesced_transactions = 0
        self.total_coalesced_price = 0.0


def _random_box(rng: random.Random, max_k: int = 60, max_d: int = 30) -> Box:
    k_width = rng.randint(1, max_k)
    d_width = rng.randint(1, max_d)
    k_low = rng.randint(0, K_HIGH - k_width)
    d_low = rng.randint(0, D_HIGH - d_width)
    return Box(((k_low, k_low + k_width), (d_low, d_low + d_width)))


def _populate(install: _RestorableInstall, boxes: int, seed: int) -> None:
    rng = random.Random(seed)
    for __ in range(boxes):
        box = _random_box(rng)
        (k0, k1), (d0, d1) = box.extents
        rows = [
            (k, d, float(k * 1000 + d))
            for k, d in {
                (rng.randint(k0, k1 - 1), rng.randint(d0, d1 - 1))
                for _ in range(10)
            }
        ]
        install.store.record("R", box, rows)


def bench_cold_restart(sizes) -> list[dict]:
    results = []
    for size in sizes:
        workdir = Path(tempfile.mkdtemp(prefix="bench-durability-"))
        try:
            state_dir = workdir / "state"
            json_path = workdir / "state.json"
            source = _RestorableInstall()
            _populate(source, size, seed=size)
            backend = DurableStateBackend(
                DurabilityConfig(state_dir=state_dir)
            )
            backend.attach(source)
            backend.snapshot()
            backend.close()
            save_state(source, json_path)

            # Min of repeats on both sides: restores allocate millions of
            # small objects, so any single shot can eat a gen2 GC pause
            # triggered by the *other* side's leftovers.
            wal_ms = math.inf
            for __ in range(RESTART_REPEATS):
                gc.collect()
                start = time.perf_counter()
                wal_install = _RestorableInstall()
                wal_backend = DurableStateBackend(
                    DurabilityConfig(state_dir=state_dir)
                )
                wal_backend.recover(wal_install)
                wal_ms = min(
                    wal_ms, (time.perf_counter() - start) * 1000.0
                )
                wal_backend.abandon()

            json_ms = math.inf
            for __ in range(RESTART_REPEATS):
                gc.collect()
                start = time.perf_counter()
                json_install = _RestorableInstall()
                load_state(json_install, json_path)
                json_ms = min(
                    json_ms, (time.perf_counter() - start) * 1000.0
                )

            # Sanity: both restored stores answer identically.
            rng = random.Random(size + 1)
            for __ in range(5):
                probe = _random_box(rng, max_k=120, max_d=60)
                assert wal_install.store.remainder(
                    "R", probe
                ) == json_install.store.remainder("R", probe)
                assert wal_install.store.rows_in_boxes(
                    "R", [probe]
                ) == json_install.store.rows_in_boxes("R", [probe])

            results.append(
                {
                    "stored_boxes": size,
                    "cached_rows": wal_install.store.table(
                        "R"
                    ).cached_row_count,
                    "json_load_ms": json_ms,
                    "wal_recover_ms": wal_ms,
                    "restart_speedup": (
                        json_ms / wal_ms if wal_ms > 0 else float("inf")
                    ),
                }
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return results


# -- steady state: WAL on vs off over a live market ---------------------------

STATIONS = 30
DAYS = 240


def _make_market() -> DataMarket:
    countries = ["CountryA", "CountryB"]
    stations = [
        (
            "CountryA" if station <= STATIONS // 2 else "CountryB",
            station,
            f"City{station % 7}",
        )
        for station in range(1, STATIONS + 1)
    ]
    weather = [
        (country, station, day, float(station * 10 + day))
        for country, station, __ in stations
        for day in range(1, DAYS + 1)
    ]
    station_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, STATIONS)),
            Attribute(
                "City",
                T.STRING,
                Domain.categorical([f"City{i}" for i in range(7)]),
            ),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", T.STRING, Domain.categorical(countries)),
            Attribute("StationID", T.INT, Domain.numeric(1, STATIONS)),
            Attribute("Date", T.DATE, Domain.numeric(1, DAYS)),
            Attribute("Temperature", T.FLOAT),
        ]
    )
    dataset = Dataset("WHW", PricingPolicy(tuples_per_transaction=10))
    dataset.add_table(
        Table("Station", station_schema, stations),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


def _cold_queries() -> list[str]:
    queries = []
    for country in ("CountryA", "CountryB"):
        for low in range(1, DAYS - 30, 12):
            queries.append(
                "SELECT StationID, Date, Temperature FROM Weather "
                f"WHERE Country = '{country}' "
                f"AND Date >= {low} AND Date <= {low + 29}"
            )
    return queries


def _run_workload(workload, state_dir) -> float:
    market = _make_market()
    if state_dir is not None:
        payless = PayLess.full(
            market, options=QueryOptions(durability=state_dir)
        )
    else:
        payless = PayLess.full(market)
    payless.register_dataset("WHW")
    if state_dir is not None:
        payless.recover()
    # Level the GC field: earlier sections (notably the cold-restart
    # restores) leave millions of collectable objects behind, and an
    # inherited gen2 pass landing inside one timed run skews the ratio.
    gc.collect()
    start = time.perf_counter()
    for sql in workload:
        payless.query(sql)
    elapsed = (time.perf_counter() - start) * 1000.0
    return elapsed


def bench_steady_state(repeats: int) -> dict:
    cold = _cold_queries()
    steady = []
    for sql in cold:
        steady.append(sql)
        steady.extend([sql] * 3)  # warm re-reads: the common case

    def best_pair(workload) -> tuple[float, float, float]:
        """Best plain time, best durable time, and best *paired* overhead.

        Repeats are interleaved plain/durable and the overhead is the
        minimum ratio over adjacent pairs: ambient machine drift (CPU
        frequency, co-tenants) moves both members of a pair together, so
        the pair ratio isolates the WAL's intrinsic cost far better than
        comparing two independent minima taken seconds apart."""
        plain_ms = durable_ms = math.inf
        pair_ratio = math.inf
        for __ in range(repeats):
            plain = _run_workload(workload, None)
            workdir = Path(tempfile.mkdtemp(prefix="bench-durability-"))
            try:
                durable = _run_workload(workload, workdir / "state")
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
            plain_ms = min(plain_ms, plain)
            durable_ms = min(durable_ms, durable)
            pair_ratio = min(pair_ratio, durable / plain)
        return plain_ms, durable_ms, (pair_ratio - 1.0) * 100.0

    steady_plain, steady_durable, steady_overhead = best_pair(steady)
    cold_plain, cold_durable, cold_overhead = best_pair(cold)
    return {
        "queries": len(steady),
        "steady_plain_ms": steady_plain,
        "steady_durable_ms": steady_durable,
        "steady_overhead_pct": steady_overhead,
        "cold_plain_ms": cold_plain,
        "cold_durable_ms": cold_durable,
        "cold_overhead_pct": cold_overhead,
    }


def render(restarts, steady) -> str:
    lines = [
        "durability: cold-restart recovery and steady-state WAL overhead",
        "",
        "cold restart (v1 JSON load vs snapshot+WAL recover):",
        f"{'boxes':>6} {'rows':>7} | {'json load':>10} {'wal recover':>12} "
        f"{'speedup':>8}",
    ]
    for row in restarts:
        lines.append(
            f"{row['stored_boxes']:>6} {row['cached_rows']:>7} | "
            f"{row['json_load_ms']:>8.1f}ms {row['wal_recover_ms']:>10.1f}ms "
            f"{row['restart_speedup']:>7.1f}x"
        )
    lines += [
        "",
        f"steady state ({steady['queries']} queries, 1 cold : 3 warm):",
        f"  WAL off {steady['steady_plain_ms']:>8.1f}ms   "
        f"WAL on {steady['steady_durable_ms']:>8.1f}ms   "
        f"overhead {steady['steady_overhead_pct']:>5.1f}%",
        "all-cold sweep (every query purchases; reported, not gated):",
        f"  WAL off {steady['cold_plain_ms']:>8.1f}ms   "
        f"WAL on {steady['cold_durable_ms']:>8.1f}ms   "
        f"overhead {steady['cold_overhead_pct']:>5.1f}%",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for quick iteration; prints but neither writes "
        "result files nor enforces the gates",
    )
    args = parser.parse_args()

    sizes = (200,) if args.smoke else (1000, 10000)
    repeats = 1 if args.smoke else 5
    restarts = bench_cold_restart(sizes)
    steady = bench_steady_state(repeats)
    text = render(restarts, steady)
    print(text)

    if not args.smoke:
        at_10k = next(
            row for row in restarts if row["stored_boxes"] == 10000
        )
        restart_ok = at_10k["restart_speedup"] >= 5.0
        steady_ok = steady["steady_overhead_pct"] <= 10.0
        print(
            f"\n10k-box cold-restart acceptance (>=5x): "
            f"{'PASS' if restart_ok else 'FAIL'}"
        )
        print(
            f"steady-state overhead acceptance (<=10%): "
            f"{'PASS' if steady_ok else 'FAIL'}"
        )
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "durability",
                "restarts": restarts,
                "steady_state": steady,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
        if not (restart_ok and steady_ok):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
