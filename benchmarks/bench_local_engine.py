"""Local engine throughput: vectorized columnar operators vs the reference.

As the semantic store warms up, repeat queries are answered mostly from
cache and *local evaluation* becomes the dominant per-query cost (the
regime the paper's Figure 3 steps 6-8 live in).  This bench measures the
operator throughput of both engines on synthetic fact/dimension data at
1k/10k/100k rows:

* **filter**  — conjunctive predicate over two columns;
* **join**    — fact ⋈ dimension equi-join (100:1 key fan-in);
* **groupby** — GROUP BY category with COUNT(*)/SUM/AVG;
* **composite** — join + aggregate (the gated end-to-end shape:
  fact ⋈ dim, then GROUP BY dim attribute with SUM(price*discount)).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_local_engine.py [--smoke|--ci]

Default mode writes ``benchmarks/results/local_engine.txt`` and appends a
trajectory entry to ``BENCH_local.json`` at the repo root.  ``--ci`` runs
the full sizes and the acceptance gate without touching the committed
files; ``--smoke`` runs tiny sizes and skips the gate.  The gate fails
the build unless the vectorized engine shows a >=3x speedup on the
join+aggregate composite at 100k rows.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.relational import operators as vec  # noqa: E402
from repro.relational import reference as ref  # noqa: E402
from repro.relational.expressions import (  # noqa: E402
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
    RowLayout,
)
from repro.relational.operators import Aggregate, Relation  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "local_engine.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_local.json"

SPEEDUP_GATE = 3.0  # composite at the largest size must beat this

N_CATEGORIES = 50
NULL_RATE = 0.01  # sprinkle NULLs so the skip-NULL paths are exercised


def make_fact(n: int, seed: int) -> Relation:
    rng = random.Random(seed)
    key_high = max(1, n // 100)
    rows = [
        (
            rng.randrange(key_high),
            f"g{rng.randrange(N_CATEGORIES):02d}",
            rng.randint(1, 50),
            None if rng.random() < NULL_RATE else rng.random() * 1000.0,
            rng.random() * 0.1,
        )
        for __ in range(n)
    ]
    layout = RowLayout(
        [("fact", c) for c in ("key", "cat", "qty", "price", "disc")]
    )
    return Relation(layout, rows)


def make_dim(n_fact: int, seed: int) -> Relation:
    rng = random.Random(seed + 1)
    key_high = max(1, n_fact // 100)
    rows = [
        (key, f"a{key % 10}", rng.random())
        for key in range(key_high)
    ]
    layout = RowLayout([("dim", c) for c in ("key", "attr", "weight")])
    return Relation(layout, rows)


FILTER_PRED = And(
    (
        Comparison(">", ColumnRef("fact", "price"), Literal(250.0)),
        Comparison("<", ColumnRef("fact", "qty"), Literal(40)),
    )
)
JOIN_KEYS = [(ColumnRef("fact", "key"), ColumnRef("dim", "key"))]
GROUP_AGGS = [
    Aggregate("COUNT", None, "n"),
    Aggregate("SUM", ColumnRef("fact", "price"), "revenue"),
    Aggregate("AVG", ColumnRef("fact", "qty"), "avg_qty"),
]
COMPOSITE_AGGS = [
    Aggregate(
        "SUM",
        Arithmetic(
            "*", ColumnRef("fact", "price"), ColumnRef("fact", "disc")
        ),
        "discounted",
    ),
    Aggregate("COUNT", None, "n"),
]


def workloads(fact: Relation, dim: Relation):
    """name -> thunk evaluating one operator pipeline on a given ops module."""
    return {
        "filter": lambda ops: ops.filter_rows(fact, FILTER_PRED),
        "join": lambda ops: ops.hash_join(fact, dim, JOIN_KEYS),
        "groupby": lambda ops: ops.aggregate_rows(
            fact, [ColumnRef("fact", "cat")], GROUP_AGGS
        ),
        "composite": lambda ops: ops.aggregate_rows(
            ops.hash_join(fact, dim, JOIN_KEYS),
            [ColumnRef("dim", "attr")],
            COMPOSITE_AGGS,
        ),
    }


def time_workload(thunk, ops, reps: int) -> float:
    """Total milliseconds for ``reps`` evaluations (one warmup first)."""
    thunk(ops)  # warmup: codegen + caches, same as steady-state usage
    start = time.perf_counter()
    for __ in range(reps):
        thunk(ops)
    return (time.perf_counter() - start) * 1000.0


def run(sizes, rep_budget: int) -> list[dict]:
    results = []
    for n in sizes:
        fact = make_fact(n, seed=n)
        dim = make_dim(n, seed=n)
        reps = max(1, rep_budget // n)
        row = {"rows": n, "reps": reps}
        for name, thunk in workloads(fact, dim).items():
            # Parity check before timing anything: same rows, same order.
            assert thunk(vec).rows == thunk(ref).rows, (
                f"engines disagree on {name} at n={n}"
            )
            ref_ms = time_workload(thunk, ref, reps)
            vec_ms = time_workload(thunk, vec, reps)
            row[f"{name}_ref_ms"] = ref_ms
            row[f"{name}_vec_ms"] = vec_ms
            row[f"{name}_speedup"] = (
                ref_ms / vec_ms if vec_ms > 0 else float("inf")
            )
            row[f"{name}_vec_rows_per_sec"] = (
                n * reps / (vec_ms / 1000.0) if vec_ms > 0 else float("inf")
            )
        results.append(row)
    return results


def render(results) -> str:
    lines = [
        "local_engine: vectorized columnar operators vs row-at-a-time reference",
        "(times are totals in ms over `reps` evaluations; speedup = ref/vec;",
        " composite = fact ⋈ dim then GROUP BY with SUM(price*disc))",
        "",
        f"{'rows':>7} {'reps':>4} | "
        + " | ".join(
            f"{name + ' ref':>12} {'vec':>9} {'speedup':>8}"
            for name in ("filter", "join", "groupby", "composite")
        ),
    ]
    for row in results:
        cells = " | ".join(
            f"{row[f'{name}_ref_ms']:>12.2f} {row[f'{name}_vec_ms']:>9.2f} "
            f"{row[f'{name}_speedup']:>7.1f}x"
            for name in ("filter", "join", "groupby", "composite")
        )
        lines.append(f"{row['rows']:>7} {row['reps']:>4} | {cells}")
    peak = results[-1]
    lines.append("")
    lines.append(
        f"vectorized throughput at {peak['rows']} rows: "
        + ", ".join(
            f"{name} {peak[f'{name}_vec_rows_per_sec']:,.0f} rows/sec"
            for name in ("filter", "join", "groupby", "composite")
        )
    )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for a quick check; no gate, no result files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full sizes + the >=3x acceptance gate, but no result files",
    )
    args = parser.parse_args()

    sizes = (1_000, 5_000) if args.smoke else (1_000, 10_000, 100_000)
    rep_budget = 20_000 if args.smoke else 400_000
    results = run(sizes, rep_budget)
    text = render(results)
    print(text)

    if not args.smoke:
        gated = results[-1]
        ok = gated["composite_speedup"] >= SPEEDUP_GATE
        print(
            f"\n{gated['rows']}-row composite acceptance "
            f"(>={SPEEDUP_GATE:g}x): "
            f"{gated['composite_speedup']:.1f}x — {'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "local_engine",
                "gate": SPEEDUP_GATE,
                "results": results,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
