"""Figure 14 — effectiveness of the search-space reduction techniques.

Average number of candidate (sub)plans the optimizer evaluates per query:

* **PayLess** — SQR + Theorems 1-3 (left-deep, zero-price-first, partition);
* **Disable SQR** — Theorems only (no coverage ⇒ fewer zero-price
  relations ⇒ a somewhat larger space);
* **Disable All** — exhaustive bushy enumeration.

Expected shape: Disable All ≫ Disable SQR ≥ PayLess, and the PayLess
average *decreases* as q grows (more stored results make more relations
zero-price, triggering Theorem 2).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import figure14
from repro.bench.reporting import summary_table

Q_VALUES = {"real": (2, 5, 8), "tpch": (1, 2, 3), "tpch_skew": (1, 2, 3)}


@pytest.mark.parametrize("workload", ["real", "tpch", "tpch_skew"])
def test_fig14(benchmark, profile, report, workload):
    q_values = Q_VALUES[workload]
    results = benchmark.pedantic(
        figure14, args=(workload, q_values, profile), rounds=1, iterations=1
    )
    rows = [
        [q]
        + [round(results[arm][q], 1) for arm in ("PayLess", "Disable SQR", "Disable All")]
        for q in q_values
    ]
    report(
        f"fig14_{workload}",
        summary_table(
            f"Figure 14 ({workload}): avg evaluated (sub)plans per query",
            rows,
            ["q", "PayLess", "Disable SQR", "Disable All"],
        ),
    )
    for q in q_values:
        assert results["Disable All"][q] >= results["Disable SQR"][q]
        assert results["Disable SQR"][q] >= results["PayLess"][q] - 1e-9
