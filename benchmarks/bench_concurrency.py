"""Concurrent serving: thread-pool throughput + singleflight savings.

The serving front-end (:mod:`repro.serve`) must actually deliver the two
things it exists for, measured against real wall-clock on a market whose
calls block for real (``LatencyModel.realtime_scale``):

* **throughput** — the same multi-tenant workload at 8 workers must run
  >= 3x the queries/second of the serial (workers=1) replay;
* **money** — with coalescing ON, overlapping sessions fetching the same
  hot regions must spend >= 30% fewer dollars than the identical run with
  coalescing OFF (where every concurrent session pays for its own copy).

Workload: 8 tenant sessions over a synthetic WHW market.  Each session
issues 4 *shared* Q1 regions (identical across sessions, submitted
region-major so all sessions' fetches of one region overlap — the
coalescing surface) followed by 8 *private* 2-day windows disjoint
across sessions (pure throughput work).  Arms run on fresh
installations: serial, 8 workers + coalesce, 8 workers no-coalesce.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_concurrency.py [--smoke|--ci]

Default mode writes ``benchmarks/results/concurrency.txt`` and appends a
trajectory entry to ``BENCH_concurrency.json`` at the repo root; ``--ci``
runs the full workload and both acceptance gates without touching the
committed files; ``--smoke`` runs a tiny workload and skips the gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.payless import PayLess  # noqa: E402
from repro.market.latency import LatencyModel  # noqa: E402
from repro.market.server import DataMarket  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve import QueryScheduler, ServeConfig  # noqa: E402
from repro.workloads.weather import (  # noqa: E402
    TEMPLATES,
    WeatherConfig,
    generate_weather_workload,
)

RESULTS_PATH = Path(__file__).parent / "results" / "concurrency.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_concurrency.json"

SPEEDUP_GATE = 3.0  # qps at 8 workers vs serial
SAVINGS_GATE = 0.30  # dollars saved, coalesce on vs off

Q1 = TEMPLATES["Q1"]


def _make_workload(sessions: int, shared_regions: int, private_windows: int):
    """(session, params) pairs: shared regions region-major, then private
    disjoint windows.  Shared spans are 20 days in 1..80; private windows
    are 2 days in 81..120, disjoint across all sessions."""
    workload: list[tuple[str, tuple]] = []
    for region in range(shared_regions):
        params = (f"Country{region:02d}", region * 20 + 1, (region + 1) * 20)
        for session in range(sessions):
            workload.append((f"user{session}", params))
    for session in range(sessions):
        for window in range(private_windows):
            index = session * private_windows + window
            country = f"Country{index // 16:02d}"
            low = 81 + 2 * (index % 16)
            workload.append((f"user{session}", (country, low, low + 1)))
    return workload


def _fresh_payless(data, round_trip_ms: float):
    market = DataMarket(
        latency=LatencyModel(
            round_trip_ms=round_trip_ms,
            per_transaction_ms=2.0,
            realtime_scale=1.0,  # calls block for real wall-clock
        )
    )
    for dataset in data.datasets:
        market.publish(dataset)
    payless = PayLess.full(
        market,
        local_db=data.local_database(),
        metrics=MetricsRegistry(),
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)
    return payless


def run_arm(data, workload, workers: int, coalesce: bool,
            round_trip_ms: float) -> dict:
    payless = _fresh_payless(data, round_trip_ms)
    config = ServeConfig(
        workers=workers, coalesce=coalesce, session_max_inflight=2
    )
    started = time.perf_counter()
    with QueryScheduler(payless, config) as scheduler:
        tickets = [
            scheduler.session(session).submit(Q1, params)
            for session, params in workload
        ]
        for ticket in tickets:
            ticket.result(timeout=600.0)
    elapsed_s = time.perf_counter() - started
    savings = payless.market.ledger.coalesced_savings
    return {
        "workers": workers,
        "coalesce": coalesce,
        "queries": len(workload),
        "elapsed_s": elapsed_s,
        "qps": len(workload) / elapsed_s,
        "spent_dollars": payless.total_price,
        "spent_transactions": payless.total_transactions,
        "coalesced_fetches": savings.calls,
        "saved_dollars": savings.price,
    }


def run(sessions: int, shared_regions: int, private_windows: int,
        round_trip_ms: float) -> dict:
    data = generate_weather_workload(
        WeatherConfig(
            countries=4,
            stations_per_country=8,
            cities_per_country=4,
            days=120,
            tuples_per_transaction=20,
            seed=7,
        )
    )
    workload = _make_workload(sessions, shared_regions, private_windows)
    serial = run_arm(data, workload, 1, False, round_trip_ms)
    parallel_on = run_arm(data, workload, 8, True, round_trip_ms)
    parallel_off = run_arm(data, workload, 8, False, round_trip_ms)
    speedup = parallel_on["qps"] / serial["qps"]
    savings_fraction = (
        (parallel_off["spent_dollars"] - parallel_on["spent_dollars"])
        / parallel_off["spent_dollars"]
        if parallel_off["spent_dollars"]
        else 0.0
    )
    return {
        "sessions": sessions,
        "shared_regions": shared_regions,
        "private_windows": private_windows,
        "round_trip_ms": round_trip_ms,
        "serial": serial,
        "parallel_coalesce": parallel_on,
        "parallel_no_coalesce": parallel_off,
        "speedup": speedup,
        "savings_fraction": savings_fraction,
    }


def render(results: dict) -> str:
    def row(label: str, arm: dict) -> str:
        return (
            f"{label:>22} | {arm['qps']:>7.1f} qps | "
            f"{arm['elapsed_s']:>6.2f} s | "
            f"${arm['spent_dollars']:>7g} spent | "
            f"{arm['coalesced_fetches']:>3} coalesced "
            f"(${arm['saved_dollars']:g} saved)"
        )

    return "\n".join(
        [
            "concurrency: thread-pool serving + singleflight coalescing",
            f"({results['sessions']} sessions x "
            f"{results['shared_regions']} shared + "
            f"{results['private_windows']} private Q1 regions; "
            f"market round-trip {results['round_trip_ms']:g} ms, "
            "real sleeps)",
            "",
            row("serial (1 worker)", results["serial"]),
            row("8 workers, coalesce", results["parallel_coalesce"]),
            row("8 workers, no coal.", results["parallel_no_coalesce"]),
            "",
            f"throughput speedup: {results['speedup']:.1f}x   "
            f"coalescing savings: {100 * results['savings_fraction']:.0f}%",
        ]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for a quick check; no gates, no result files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full workload + both acceptance gates, but no result files",
    )
    args = parser.parse_args()

    if args.smoke:
        results = run(
            sessions=2, shared_regions=2, private_windows=2,
            round_trip_ms=10.0,
        )
    else:
        results = run(
            sessions=8, shared_regions=4, private_windows=8,
            round_trip_ms=60.0,
        )
    text = render(results)
    print(text)

    if not args.smoke:
        speedup_ok = results["speedup"] >= SPEEDUP_GATE
        savings_ok = results["savings_fraction"] >= SAVINGS_GATE
        print()
        print(
            f"throughput acceptance (>={SPEEDUP_GATE:g}x): "
            f"{results['speedup']:.1f}x — "
            f"{'PASS' if speedup_ok else 'FAIL'}"
        )
        print(
            f"savings acceptance (>={100 * SAVINGS_GATE:.0f}%): "
            f"{100 * results['savings_fraction']:.0f}% — "
            f"{'PASS' if savings_ok else 'FAIL'}"
        )
        if not (speedup_ok and savings_ok):
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "concurrency",
                "speedup_gate": SPEEDUP_GATE,
                "savings_gate": SAVINGS_GATE,
                "results": results,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
