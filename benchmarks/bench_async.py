"""Async transport: pipelined latency, pooled serve throughput, prefetch.

The async driver (:mod:`repro.market.aio`) exists to hide market latency
the threaded fetch path cannot: coroutines waiting on seller round-trips
are nearly free, so in-flight depth is bounded by the per-seller pool
(64) instead of the thread count (8), and connection setup is paid once
per pooled connection instead of once per call.  Measured against real
wall-clock on a market whose calls block for real
(``LatencyModel.realtime_scale``):

* **critical-path latency** — one query whose access fragments into 32
  remainder calls (a checkerboard of previously-bought windows) must run
  >= 2x faster under the async driver than under the threaded driver at
  ``max_concurrent_calls=8``, for the identical dollars;
* **serve throughput** — a single serving session replaying queries that
  each fragment into 64 calls must clear >= 2x the queries/second under
  the async driver (64 calls in flight) than under the threaded driver
  (capped at 8);
* **prefetch is free money-wise** — cross-access prefetch overlaps the
  fetches of a join's accesses; ``prefetch_wasted_dollars`` must be 0:
  only rewritten remainders of the chosen plan are prefetched, so
  nothing speculative is ever thrown away.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_async.py [--smoke|--ci]

Default mode writes ``benchmarks/results/async.txt`` and appends a
trajectory entry to ``BENCH_async.json`` at the repo root; ``--ci`` runs
the full workload and every acceptance gate without touching the
committed files; ``--smoke`` runs a tiny workload and skips the gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.objectives import QueryOptions  # noqa: E402
from repro.core.payless import PayLess  # noqa: E402
from repro.market.latency import LatencyModel  # noqa: E402
from repro.market.server import DataMarket  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve import QueryScheduler, ServeConfig  # noqa: E402
from repro.workloads.weather import (  # noqa: E402
    WeatherConfig,
    generate_weather_workload,
)

RESULTS_PATH = Path(__file__).parent / "results" / "async.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_async.json"

LATENCY_GATE = 2.0  # critical-path: async vs threaded at 8 workers
THROUGHPUT_GATE = 2.0  # serve qps: async (64 in flight) vs threaded (8)

RANGE_SQL = (
    "SELECT Country, StationID, Date, Temperature FROM Weather "
    "WHERE Country = ? AND Date >= ? AND Date <= ?"
)
JOIN_SQL = (
    "SELECT s.City, w.Temperature FROM Station s, Weather w "
    "WHERE s.Country = w.Country AND s.StationID = w.StationID "
    "AND w.Country = ? AND w.Date >= ? AND w.Date <= ?"
)

#: The realtime market every timed phase runs against: a high-latency
#: seller where connection setup dominates a single round trip.
TIMED_LATENCY = LatencyModel(
    round_trip_ms=30.0,
    per_transaction_ms=1.0,
    connection_setup_ms=150.0,
    realtime_scale=1.0,
)


def _make_data(countries: int, days: int):
    return generate_weather_workload(
        WeatherConfig(
            countries=countries,
            stations_per_country=4,
            cities_per_country=2,
            days=days,
            tuples_per_transaction=10,
            seed=7,
        )
    )


def _fresh_payless(data, transport_mode: str, **option_kwargs):
    """An instant-market installation; callers flip ``market.latency`` to
    :data:`TIMED_LATENCY` once the coverage warm-up is done."""
    market = DataMarket()
    for dataset in data.datasets:
        market.publish(dataset)
    payless = PayLess.full(
        market,
        local_db=data.local_database(),
        metrics=MetricsRegistry(),
        options=QueryOptions(
            transport_mode=transport_mode,
            max_concurrent_calls=8,
            **option_kwargs,
        ),
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)
    return payless


def _checkerboard(payless, country: str, gaps: int) -> None:
    """Buy every other 2-day window of ``country`` so a later full-range
    query fragments into ``gaps`` remainder calls to the same seller."""
    for window in range(gaps):
        low = 4 * window + 1
        payless.query(RANGE_SQL, (country, low, low + 1))


def run_latency_arm(transport_mode: str, gaps: int) -> dict:
    """One query, ``gaps`` fragmented calls, wall-clock and dollars."""
    data = _make_data(countries=1, days=4 * gaps)
    payless = _fresh_payless(data, transport_mode)
    try:
        _checkerboard(payless, "Country00", gaps)
        payless.market.latency = TIMED_LATENCY
        started = time.perf_counter()
        result = payless.query(RANGE_SQL, ("Country00", 1, 4 * gaps))
        elapsed_s = time.perf_counter() - started
        return {
            "transport": transport_mode,
            "calls": result.stats.calls,
            "elapsed_ms": 1000.0 * elapsed_s,
            "spent_dollars": result.stats.price,
            "rows": len(result.rows),
            "connections_reused": payless.metrics.snapshot().get(
                "connections_reused", 0.0
            ),
        }
    finally:
        payless.close()


def run_serve_arm(transport_mode: str, queries: int, gaps: int) -> dict:
    """A single serving session replaying ``queries`` fragmented queries
    serially; in-flight depth inside each query is the whole contest."""
    data = _make_data(countries=queries, days=4 * gaps)
    payless = _fresh_payless(data, transport_mode)
    try:
        for index in range(queries):
            _checkerboard(payless, f"Country{index:02d}", gaps)
        payless.market.latency = TIMED_LATENCY
        config = ServeConfig(workers=2, session_max_inflight=1)
        started = time.perf_counter()
        with QueryScheduler(payless, config) as scheduler:
            session = scheduler.session("tenant0")
            tickets = [
                session.submit(RANGE_SQL, (f"Country{i:02d}", 1, 4 * gaps))
                for i in range(queries)
            ]
            results = [ticket.result(timeout=600.0) for ticket in tickets]
        elapsed_s = time.perf_counter() - started
        return {
            "transport": transport_mode,
            "queries": queries,
            "calls": sum(r.stats.calls for r in results),
            "elapsed_s": elapsed_s,
            "qps": queries / elapsed_s,
            "spent_dollars": sum(r.stats.price for r in results),
        }
    finally:
        payless.close()


def run_prefetch_arm(prefetch: bool) -> dict:
    """One two-access join under the async driver; prefetch overlaps the
    accesses' fetches (bushy plan via ``use_theorems=False``)."""
    data = _make_data(countries=1, days=40)
    payless = _fresh_payless(
        data, "async", use_theorems=False, prefetch=prefetch
    )
    try:
        payless.market.latency = TIMED_LATENCY
        started = time.perf_counter()
        result = payless.query(JOIN_SQL, ("Country00", 1, 40))
        elapsed_s = time.perf_counter() - started
        snapshot = payless.metrics.snapshot()
        return {
            "prefetch": prefetch,
            "elapsed_ms": 1000.0 * elapsed_s,
            "spent_dollars": result.stats.price,
            "prefetch_hits": snapshot.get("prefetch_hits", 0.0),
            "wasted_dollars": snapshot.get("prefetch_wasted_dollars", 0.0),
        }
    finally:
        payless.close()


def run(latency_gaps: int, serve_queries: int, serve_gaps: int) -> dict:
    threaded_latency = run_latency_arm("threaded", latency_gaps)
    async_latency = run_latency_arm("async", latency_gaps)
    threaded_serve = run_serve_arm("threaded", serve_queries, serve_gaps)
    async_serve = run_serve_arm("async", serve_queries, serve_gaps)
    prefetch_off = run_prefetch_arm(prefetch=False)
    prefetch_on = run_prefetch_arm(prefetch=True)
    return {
        "latency_gaps": latency_gaps,
        "serve_queries": serve_queries,
        "serve_gaps": serve_gaps,
        "threaded_latency": threaded_latency,
        "async_latency": async_latency,
        "latency_speedup": (
            threaded_latency["elapsed_ms"] / async_latency["elapsed_ms"]
        ),
        "threaded_serve": threaded_serve,
        "async_serve": async_serve,
        "throughput_speedup": threaded_serve["elapsed_s"]
        / async_serve["elapsed_s"],
        "prefetch_off": prefetch_off,
        "prefetch_on": prefetch_on,
        "prefetch_speedup": (
            prefetch_off["elapsed_ms"] / prefetch_on["elapsed_ms"]
        ),
    }


def render(results: dict) -> str:
    threaded = results["threaded_latency"]
    awaited = results["async_latency"]
    t_serve = results["threaded_serve"]
    a_serve = results["async_serve"]
    off = results["prefetch_off"]
    on = results["prefetch_on"]
    return "\n".join(
        [
            "async transport: pipelining, connection pools, prefetch",
            f"(market: {TIMED_LATENCY.round_trip_ms:g} ms round trip, "
            f"{TIMED_LATENCY.connection_setup_ms:g} ms connection setup, "
            "real sleeps)",
            "",
            f"critical-path latency, one query x "
            f"{threaded['calls']} fragmented calls:",
            f"  threaded (8 workers) | {threaded['elapsed_ms']:>7.0f} ms | "
            f"${threaded['spent_dollars']:g}",
            f"  async    (64 pool)   | {awaited['elapsed_ms']:>7.0f} ms | "
            f"${awaited['spent_dollars']:g} | "
            f"{awaited['connections_reused']:.0f} connections reused",
            f"  speedup: {results['latency_speedup']:.1f}x",
            "",
            f"serve throughput, 1 session x {t_serve['queries']} queries "
            f"x {results['serve_gaps']} calls each:",
            f"  threaded (8 in flight)  | {t_serve['qps']:>5.2f} qps | "
            f"{t_serve['elapsed_s']:>6.2f} s | ${t_serve['spent_dollars']:g}",
            f"  async    (64 in flight) | {a_serve['qps']:>5.2f} qps | "
            f"{a_serve['elapsed_s']:>6.2f} s | ${a_serve['spent_dollars']:g}",
            f"  speedup: {results['throughput_speedup']:.1f}x",
            "",
            "cross-access prefetch, two-access join:",
            f"  prefetch off | {off['elapsed_ms']:>7.0f} ms",
            f"  prefetch on  | {on['elapsed_ms']:>7.0f} ms | "
            f"{on['prefetch_hits']:.0f} hits | "
            f"${on['wasted_dollars']:g} wasted",
            f"  speedup: {results['prefetch_speedup']:.1f}x",
        ]
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for a quick check; no gates, no result files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full workload + every acceptance gate, but no result files",
    )
    args = parser.parse_args()

    if args.smoke:
        results = run(latency_gaps=8, serve_queries=2, serve_gaps=8)
    else:
        results = run(latency_gaps=32, serve_queries=6, serve_gaps=64)
    text = render(results)
    print(text)

    if not args.smoke:
        latency_ok = results["latency_speedup"] >= LATENCY_GATE
        dollars_ok = (
            results["threaded_latency"]["spent_dollars"]
            == results["async_latency"]["spent_dollars"]
            and results["threaded_serve"]["spent_dollars"]
            == results["async_serve"]["spent_dollars"]
        )
        throughput_ok = results["throughput_speedup"] >= THROUGHPUT_GATE
        prefetch_ok = (
            results["prefetch_on"]["wasted_dollars"] == 0.0
            and results["prefetch_on"]["prefetch_hits"] > 0
            and results["prefetch_on"]["spent_dollars"]
            == results["prefetch_off"]["spent_dollars"]
        )
        print()
        print(
            f"latency acceptance (>={LATENCY_GATE:g}x): "
            f"{results['latency_speedup']:.1f}x — "
            f"{'PASS' if latency_ok else 'FAIL'}"
        )
        print(
            f"identical dollars across drivers: "
            f"{'PASS' if dollars_ok else 'FAIL'}"
        )
        print(
            f"throughput acceptance (>={THROUGHPUT_GATE:g}x): "
            f"{results['throughput_speedup']:.1f}x — "
            f"{'PASS' if throughput_ok else 'FAIL'}"
        )
        print(
            f"prefetch wastes nothing: "
            f"{'PASS' if prefetch_ok else 'FAIL'}"
        )
        if not (latency_ok and dollars_ok and throughput_ok and prefetch_ok):
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "async",
                "latency_gate": LATENCY_GATE,
                "throughput_gate": THROUGHPUT_GATE,
                "results": results,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
