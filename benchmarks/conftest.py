"""Shared benchmark configuration.

The figure benches default to laptop-in-minutes scale; set ``REPRO_BENCH_Q``
(instances per template) and ``REPRO_BENCH_TPCH_SCALE`` to push toward the
paper's scale.  Every bench writes its series/table to
``benchmarks/results/<name>.txt`` and echoes it to stdout.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.figures import BenchProfile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    weather_q = int(os.environ.get("REPRO_BENCH_Q", "10"))
    tpch_q = int(os.environ.get("REPRO_BENCH_TPCH_Q", "2"))
    tpch_scale = float(os.environ.get("REPRO_BENCH_TPCH_SCALE", "1.0"))
    return BenchProfile(
        weather_q=weather_q, tpch_q=tpch_q, tpch_scale=tpch_scale
    )


@pytest.fixture(scope="session")
def report():
    """Write a named report file and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _write
