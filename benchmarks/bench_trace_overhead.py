"""Tracing overhead: a disabled tracer must be (near) free.

The observability layer (``repro.obs``) threads a :class:`~repro.obs.
trace.Tracer` through planner → rewriter → executor → transport.  Every
hot path guards with ``if tracer.enabled`` before touching any span
machinery, so the disabled-tracer cost per query is a handful of
attribute checks.  Two measurements defend that contract:

* **session overhead** — a query session through a PayLess installation
  built with ``tracing=False`` vs one with tracing on.  The disabled arm
  is compared against itself across repetitions (A/A) to estimate the
  noise floor, and the enabled arm shows what full span recording costs
  for scale.
* **guard microbenchmark** — the cost of the ``tracer.enabled`` check
  itself, times the *measured* number of guard evaluations per query
  (counted with an instrumented tracer), expressed as a fraction of the
  measured per-query time.

Acceptance gate (CI runs ``--smoke``): the disabled-tracer guard cost —
guard nanoseconds × guards per query, as a percentage of the per-query
runtime — must stay below 3%, and the A/A session delta must not show a
systematic regression beyond noise (also gated at 3% after averaging).

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py [--smoke]

Writes ``benchmarks/results/trace_overhead.txt``; ``--smoke`` shrinks
iteration counts for CI and skips the results file.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402
from repro.testing import registered_payless, tiny_weather_market  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "trace_overhead.txt"

SESSION = (
    "SELECT Temperature FROM Station, Weather "
    "WHERE City = 'Alpha' AND Station.StationID = Weather.StationID",
    "SELECT * FROM Station",
    "SELECT Temperature FROM Weather WHERE Country = 'CountryA'",
    "SELECT Temperature FROM Weather WHERE Country = 'CountryB' AND Date >= 3",
)

class _CountingTracer(Tracer):
    """A disabled tracer that counts how often ``enabled`` is consulted."""

    def __init__(self):
        self.reads = 0
        super().__init__(enabled=False)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        self.reads += 1
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        pass


def count_guards_per_query() -> float:
    """Actual ``tracer.enabled`` evaluations per query of the session."""
    payless = registered_payless(
        tiny_weather_market(), metrics=MetricsRegistry()
    )
    counting = _CountingTracer()
    payless.tracer = counting
    payless.context.tracer = counting
    payless.rewriter.tracer = counting
    for sql in SESSION:  # store-cold pass: the guard-heaviest shape
        payless.query(sql)
    first_pass = counting.reads
    counting.reads = 0
    for sql in SESSION:  # store-warm pass
        payless.query(sql)
    return max(first_pass, counting.reads) / len(SESSION)


def time_session(tracing: bool, rounds: int) -> float:
    """Total ms for ``rounds`` repetitions of the session (fresh install)."""
    payless = registered_payless(
        tiny_weather_market(), tracing=tracing, metrics=MetricsRegistry()
    )
    start = time.perf_counter()
    for __ in range(rounds):
        for sql in SESSION:
            payless.query(sql)
    return (time.perf_counter() - start) * 1000.0


def time_guard(iterations: int) -> float:
    """Nanoseconds per disabled-tracer guard check (``tracer.enabled``)."""
    tracer = Tracer(enabled=False)
    sink = 0
    start = time.perf_counter()
    for __ in range(iterations):
        if tracer.enabled:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / iterations * 1e9


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration counts for CI; prints but writes no file",
    )
    args = parser.parse_args()
    rounds = 3 if args.smoke else 15
    repeats = 3 if args.smoke else 5
    guard_iterations = 200_000 if args.smoke else 2_000_000

    # Warm-up: imports, first-query store registration, JIT-ish dict fills.
    time_session(False, 1)
    time_session(True, 1)

    # A/A and A/B, interleaved and averaged to ride out scheduler noise.
    off_a = [0.0] * repeats
    off_b = [0.0] * repeats
    on = [0.0] * repeats
    for index in range(repeats):
        off_a[index] = time_session(False, rounds)
        on[index] = time_session(True, rounds)
        off_b[index] = time_session(False, rounds)

    off_a_ms = sum(off_a) / repeats
    off_b_ms = sum(off_b) / repeats
    on_ms = sum(on) / repeats
    noise_pct = (off_b_ms - off_a_ms) / off_a_ms * 100.0
    enabled_pct = (on_ms - min(off_a_ms, off_b_ms)) / min(off_a_ms, off_b_ms) * 100.0

    guard_ns = time_guard(guard_iterations)
    guards_per_query = count_guards_per_query()
    queries = rounds * len(SESSION)
    per_query_ms = min(off_a_ms, off_b_ms) / queries
    guard_budget_ms = guard_ns * guards_per_query / 1e6
    guard_pct = guard_budget_ms / per_query_ms * 100.0

    lines = [
        "trace_overhead: disabled tracer vs enabled tracing",
        f"({repeats} repeats x {rounds} rounds x {len(SESSION)} queries; "
        f"{guard_iterations} guard iterations)",
        "",
        f"session, tracing off (A)  {off_a_ms:>10.2f} ms",
        f"session, tracing off (B)  {off_b_ms:>10.2f} ms  "
        f"(A/A noise {noise_pct:+.1f}%)",
        f"session, tracing on       {on_ms:>10.2f} ms  "
        f"({enabled_pct:+.1f}% — full span recording, for scale)",
        "",
        f"guard check               {guard_ns:>10.1f} ns per "
        "`tracer.enabled`",
        f"guard budget              {guard_budget_ms:>10.4f} ms per query "
        f"({guards_per_query:.0f} measured guards)",
        f"per-query runtime         {per_query_ms:>10.2f} ms",
        f"disabled-tracer cost      {guard_pct:>10.2f} % of query time",
    ]
    guard_ok = guard_pct < 3.0
    aa_ok = abs(noise_pct) < 3.0 or off_b_ms <= off_a_ms
    ok = guard_ok and aa_ok
    lines.append("")
    lines.append(
        f"disabled-overhead acceptance (<3% guard cost, A/A within noise): "
        f"{'PASS' if ok else 'FAIL'}"
    )
    text = "\n".join(lines)
    print(text)

    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
