"""Pareto planning: latency bounds that hold, at planning cost that doesn't.

Two acceptance gates guard the money-latency planner:

* **bound** — on a market whose calls block for real wall-clock
  (``LatencyModel.realtime_scale``), a ``dollars_under_latency_ms``
  plan must actually finish its market calls within the bound it was
  planned under, while spending no more dollars than the unconstrained
  fastest (``min_latency``) plan — the bounded objective buys the
  cheapest feasible point, never a pricier one;
* **overhead** — enumerating the full Pareto frontier (``min_latency``)
  must cost at most 2x the single-objective (``min_dollars``) planning
  time at n=10 on chain and star join graphs.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_pareto.py [--smoke|--ci]

Default mode writes ``benchmarks/results/pareto.txt`` and appends a
trajectory entry to ``BENCH_pareto.json`` at the repo root.  ``--ci``
runs both gates without touching the committed files; ``--smoke`` runs
small graphs and skips the gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import build_system  # noqa: E402
from repro.core.objectives import PlanObjective  # noqa: E402
from repro.market.latency import LatencyModel  # noqa: E402
from repro.testing import registered_payless, tiny_weather_market  # noqa: E402
from repro.workloads.synthetic import make_join_graph  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "pareto.txt"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_pareto.json"

#: Pareto planning time must stay within this factor of single-objective.
OVERHEAD_GATE = 2.0
GATED = (("chain", 10), ("star", 10))

FULL_GRAPHS = (
    ("chain", 6),
    ("chain", 8),
    ("chain", 10),
    ("star", 6),
    ("star", 8),
    ("star", 10),
    ("clique", 6),
)
SMOKE_GRAPHS = (("chain", 4), ("chain", 6), ("star", 6))

#: The two-point-frontier fixture: a selective City filter keeps four of
#: eight stations, so the bind join is cheaper but slower than the
#: direct fetch — frontier ($17, 725 ms), ($9, 975 ms).
STATIONS = tuple(
    ("CountryA", i, "Alpha" if i <= 4 else "Beta") for i in range(1, 9)
)
SQL = (
    "SELECT Weather.Temperature FROM Station JOIN Weather "
    "ON Station.StationID = Weather.StationID "
    "WHERE Station.City = 'Alpha'"
)
LATENCY_BOUND_MS = 800.0
#: Fraction of modelled milliseconds the market really sleeps per call.
REALTIME_SCALE = 0.25


def _planning_ms(data, objective, rounds: int = 3) -> float:
    """Best-of-``rounds`` EXPLAIN wall-clock with the plan cache off."""
    best = float("inf")
    for __ in range(rounds):
        payless, __unused = build_system(
            "payless", data, plan_cache_size=0, objective=objective
        )
        start = time.perf_counter()
        payless.explain(data.sql)
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def bench_overhead(shape: str, n: int) -> dict:
    data = make_join_graph(shape, n)
    scalar_ms = _planning_ms(data, None)
    pareto_ms = _planning_ms(data, PlanObjective.min_latency())
    return {
        "shape": shape,
        "n": n,
        "scalar_ms": scalar_ms,
        "pareto_ms": pareto_ms,
        "ratio": pareto_ms / scalar_ms if scalar_ms > 0 else float("inf"),
    }


def bench_bound() -> dict:
    """Execute the bounded plan against a really-sleeping market."""
    market = tiny_weather_market(stations=STATIONS, days=20)
    market.latency = LatencyModel(realtime_scale=REALTIME_SCALE)

    fastest = registered_payless(
        tiny_weather_market(stations=STATIONS, days=20)
    ).explain(SQL, objective="min_latency").planning

    payless = registered_payless(market)
    objective = PlanObjective.dollars_under_latency_ms(LATENCY_BOUND_MS)
    start = time.perf_counter()
    result = payless.query(SQL, objective=objective)
    wall_ms = (time.perf_counter() - start) * 1000.0
    stats = result.stats
    return {
        "bound_ms": LATENCY_BOUND_MS,
        "estimated_ms": fastest.latency_ms,
        "actual_market_ms": stats.market_time_ms,
        "wall_ms": wall_ms,
        "slept_ms": stats.market_time_ms * REALTIME_SCALE,
        "bounded_price": stats.price,
        "fastest_price": fastest.cost,
        "bound_met": stats.market_time_ms <= LATENCY_BOUND_MS,
        "cheap_enough": stats.price <= fastest.cost,
        "really_slept": wall_ms >= stats.market_time_ms * REALTIME_SCALE * 0.9,
    }


def render(bound: dict, overhead: list[dict]) -> str:
    lines = [
        "pareto: latency-bounded execution + frontier enumeration overhead",
        "",
        f"bounded plan (dollars_under_latency_ms:{bound['bound_ms']:g} on "
        f"realtime market, scale {REALTIME_SCALE:g}):",
        f"  market time {bound['actual_market_ms']:.0f} ms "
        f"(bound {bound['bound_ms']:g} ms) — "
        f"{'met' if bound['bound_met'] else 'MISSED'}",
        f"  dollars ${bound['bounded_price']:g} vs fastest plan "
        f"${bound['fastest_price']:g} — "
        f"{'ok' if bound['cheap_enough'] else 'OVERPAID'}",
        f"  wall-clock {bound['wall_ms']:.0f} ms "
        f"(calls slept ~{bound['slept_ms']:.0f} ms for real)",
        "",
        f"{'graph':>8} | {'min_dollars':>11} | {'pareto':>8} | ratio",
    ]
    for row in overhead:
        lines.append(
            f"{row['shape'] + str(row['n']):>8} | "
            f"{row['scalar_ms']:>9.1f}ms | {row['pareto_ms']:>6.1f}ms | "
            f"{row['ratio']:.2f}x"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graphs for a quick check; no gates, no result files",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="full graphs + both acceptance gates, but no result files",
    )
    args = parser.parse_args()

    graphs = SMOKE_GRAPHS if args.smoke else FULL_GRAPHS
    bound = bench_bound()
    overhead = [bench_overhead(shape, n) for shape, n in graphs]
    text = render(bound, overhead)
    print(text)

    if not args.smoke:
        ok = True
        print()
        for check, label in (
            ("bound_met", f"market time within {LATENCY_BOUND_MS:g} ms"),
            ("cheap_enough", "dollars <= fastest plan"),
            ("really_slept", "market calls blocked for real"),
        ):
            print(f"bound gate ({label}): {'PASS' if bound[check] else 'FAIL'}")
            ok = ok and bound[check]
        for shape, n in GATED:
            row = next(
                r for r in overhead if (r["shape"], r["n"]) == (shape, n)
            )
            passed = row["ratio"] <= OVERHEAD_GATE
            ok = ok and passed
            print(
                f"{shape} n={n} overhead acceptance "
                f"(<={OVERHEAD_GATE:g}x): {row['ratio']:.2f}x — "
                f"{'PASS' if passed else 'FAIL'}"
            )
        if not ok:
            return 1

    if not args.smoke and not args.ci:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text + "\n")
        print(f"[written to {RESULTS_PATH}]")
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(
            {
                "bench": "pareto",
                "overhead_gate": OVERHEAD_GATE,
                "bound": bound,
                "overhead": overhead,
            }
        )
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"[trajectory appended to {TRAJECTORY_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
