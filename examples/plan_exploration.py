"""Watching the optimizer think: plans, theorems, and learning.

Walks through the optimizer's behaviour on the mini weather market:

1. the P1-vs-P2 choice (direct fetch vs bind join) and how it flips with
   the data distribution;
2. Theorem 2 in action — after a table is cached, it migrates into the
   zero-price block and the search space shrinks;
3. the search-space counters behind the paper's Figure 14.

Run with:  python examples/plan_exploration.py
"""

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system
from repro.core.optimizer import Optimizer, OptimizerOptions


def main() -> None:
    data = make_workload("real")
    payless, __ = build_system("payless", data)
    country = data.countries[0]

    sql = (
        "SELECT Temperature FROM Station, Weather "
        "WHERE City = ? AND Station.Country = ? AND Weather.Country = ? "
        "AND Date >= 1 AND Date <= 30 "
        "AND Station.StationID = Weather.StationID"
    )
    # A city hosting few stations: the bind join should win.
    rare_city = min(
        data.cities[country],
        key=lambda c: sum(
            1 for row in data.station_rows if row[0] == country and row[2] == c
        ),
    )
    params = (rare_city, country, country)

    print("=== 1. Plan choice on a cold store ===")
    planning = payless.explain(sql, params)
    print(planning.plan.describe())
    print(f"estimated transactions: {planning.cost:.0f}; "
          f"candidate plans evaluated: {planning.evaluated_plans}\n")

    print("=== 2. Theorem 2: caching Station makes it zero-price ===")
    payless.query("SELECT * FROM Station")
    planning_cached = payless.explain(sql, params)
    print(planning_cached.plan.describe())
    print(
        f"candidate plans evaluated: {planning_cached.evaluated_plans} "
        f"(was {planning.evaluated_plans})\n"
    )

    print("=== 3. Search-space counters, per Figure 14 arm ===")
    q5 = next(
        i for i in make_instances("real", data, 1) if i.template == "Q5"
    )
    logical = payless.compile(q5.sql, q5.params)
    for label, options in (
        ("PayLess (Theorems + SQR)", OptimizerOptions()),
        ("Disable SQR", OptimizerOptions(use_sqr=False)),
        (
            "Disable All (bushy)",
            OptimizerOptions(use_sqr=False, use_theorems=False),
        ),
    ):
        result = Optimizer(payless.context, options).optimize(logical)
        print(
            f"{label:>26}: {result.evaluated_plans:>5} candidate plans, "
            f"best cost {result.cost:.0f}"
        )

    print(
        "\nThe bushy enumeration explores an order of magnitude more plans "
        "for the same best cost — Theorem 1's guarantee that left-deep "
        "search loses nothing, visualized."
    )


if __name__ == "__main__":
    main()
