"""Consistency levels: freshness vs money (Section 4.3 of the paper).

The paper sketches three reuse policies for the semantic store — weak
(reuse forever), X-week (reuse recent results), strong (never reuse).
This example runs the same query repeatedly while the logical clock
advances a week between queries, and prints what each policy pays.

Run with:  python examples/consistency_levels.py
"""

from repro import ConsistencyPolicy, PayLess
from repro.bench.figures import make_workload
from repro.bench.harness import build_system


def run(policy_label: str, policy: ConsistencyPolicy | None, data, weeks: int):
    market_less, __ = build_system("payless", data)  # for registrations only
    payless = PayLess(
        market_less.market, local_db=data.local_database(), consistency=policy
    )
    for dataset in data.datasets:
        payless.register_dataset(dataset.name)

    sql = (
        "SELECT City, AVG(Temperature) FROM Station, Weather "
        "WHERE Station.Country = Weather.Country = ? "
        "AND Weather.Date >= ? AND Weather.Date <= ? "
        "AND Station.StationID = Weather.StationID GROUP BY City"
    )
    params = (data.countries[0], 10, 40)

    costs = []
    for __ in range(weeks):
        result = payless.query(sql, params)
        costs.append(result.stats.transactions)
        payless.store.advance_clock(1)  # one week passes
    return costs


def main() -> None:
    data = make_workload("real")
    weeks = 6

    print(
        "The same weekly report query, re-run for "
        f"{weeks} consecutive weeks (transactions billed per week):\n"
    )
    for label, policy in (
        ("weak (reuse forever)", ConsistencyPolicy.weak()),
        ("2-week consistency", ConsistencyPolicy.weeks(2)),
        ("strong (always fresh)", ConsistencyPolicy.strong()),
    ):
        costs = run(label, policy, data, weeks)
        print(f"{label:>22}: {costs}   total = {sum(costs)}")

    print(
        "\nWeak consistency pays once; strong re-buys every week; X-week "
        "sits in between — exactly the freshness/price trade-off the paper "
        "describes. (The simulated datasets are append-only, so weak "
        "consistency is actually exact here.)"
    )


if __name__ == "__main__":
    main()
