"""An organization in production: many users, budgets, and the invoice.

Puts the deployment-facing features together on the weather market:

* an :class:`Organization` shares one PayLess install between analysts, so
  one user's purchases make a colleague's overlapping queries free;
* deferred queries flush as a containment-ordered batch;
* a :class:`BudgetedPayLess` wrapper rejects a query whose estimate would
  blow the monthly cap *before* any money moves;
* the :class:`Subscription` plan converts raw transactions into the
  marketplace invoice (the paper's "$12 per 100 transactions" example).

Run with:  python examples/organization_budget.py
"""

from repro.bench.figures import make_workload
from repro.bench.harness import build_system
from repro.core.budget import (
    BudgetedPayLess,
    BudgetExceededError,
    BudgetPolicy,
)
from repro.core.organization import Organization
from repro.market.subscription import Subscription


def main() -> None:
    data = make_workload("real")
    payless, __ = build_system("payless", data)
    country = data.countries[0]

    print("=== A two-analyst organization ===")
    acme = Organization(payless, name="acme-weather-desk")
    alice = acme.user("alice")
    bob = acme.user("bob")

    alice.query(
        "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
        (country, 1, 60),
    )
    result = bob.query(
        "SELECT AVG(Temperature) FROM Weather "
        "WHERE Country = ? AND Date >= ? AND Date <= ?",
        (country, 10, 40),
    )
    print(f"Bob's overlapping query cost: {result.stats.transactions} transactions")
    print(acme.spend_report())

    print("\n=== Deferred batch ===")
    t_narrow = alice.defer(
        "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
        (data.countries[1], 5, 11),
    )
    t_broad = bob.defer(
        "SELECT * FROM Weather WHERE Country = ?", (data.countries[1],)
    )
    results = acme.flush()
    print(
        f"broad query paid {results[t_broad].stats.transactions}, narrow rode "
        f"free ({results[t_narrow].stats.transactions})"
    )

    print("\n=== Budget enforcement ===")
    fresh, __ = build_system("payless", data)
    budgeted = BudgetedPayLess(fresh, BudgetPolicy(limit_transactions=50))
    try:
        budgeted.query("SELECT * FROM Weather")  # whole table ≫ 50
    except BudgetExceededError as error:
        print(f"rejected up front: {error}")
    small = budgeted.query(
        "SELECT * FROM Weather WHERE Country = ? AND Date <= 10", (country,)
    )
    print(
        f"small query allowed: {small.stats.transactions} transactions, "
        f"{budgeted.report.remaining} remaining"
    )

    print("\n=== The marketplace invoice ===")
    plan = Subscription(transactions_per_block=100, block_price=12.0)
    spent = payless.total_transactions
    print(
        f"organization used {spent} transactions -> "
        f"{plan.blocks_for(spent)} blocks of 100 -> "
        f"${plan.invoice(spent):.2f} "
        f"({plan.utilization(spent):.0%} of the quota used)"
    )


if __name__ == "__main__":
    main()
