"""Multi-query optimization: deferring queries into a batch saves money.

The paper's conclusion sketches multi-query optimization as future work —
"if users are willing to defer theirs to become a batch".  This example
shows the payoff: a dashboard that issues six weekly slices plus one
quarterly overview.  Executed as they arrive (narrow first), every slice
buys its own fragments; executed as a batch, PayLess runs the containing
query first and the slices ride free.

Run with:  python examples/batch_queries.py
"""

from repro.bench.figures import make_workload
from repro.bench.harness import build_system
from repro.core.batch import execute_batch


def main() -> None:
    data = make_workload("real")
    country = data.countries[0]

    weekly = [
        (
            "SELECT * FROM Weather WHERE Country = ? "
            "AND Date >= ? AND Date <= ?",
            (country, 1 + 7 * week, 7 + 7 * week),
        )
        for week in range(6)
    ]
    quarterly = (
        "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
        (country, 1, data.config.days),
    )
    batch = weekly + [quarterly]

    print("Submission order (what an interactive session would pay):")
    interactive, __ = build_system("payless", data)
    naive_total = 0
    for sql, params in batch:
        cost = interactive.query(sql, params).stats.transactions
        naive_total += cost
        print(f"  {params!s:>24} -> {cost:3d} transactions")
    print(f"  total: {naive_total}\n")

    print("Batched (PayLess reorders by containment):")
    batched, __ = build_system("payless", data)
    outcome = batched.query_batch(batch)
    print(f"  execution order: {outcome.execution_order}")
    for (sql, params), result in zip(batch, outcome.results):
        print(f"  {params!s:>24} -> {result.stats.transactions:3d} transactions")
    print(f"  total: {outcome.total_transactions}")

    saved = naive_total - outcome.total_transactions
    print(
        f"\nBatching saved {saved} transactions "
        f"({saved / max(naive_total, 1):.0%}) — the quarterly query ran "
        "first, so every weekly slice was already in the semantic store."
    )


if __name__ == "__main__":
    main()
