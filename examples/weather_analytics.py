"""A meteorological analytics session over the data market.

Replays the paper's real-data workload (the five Table 1 templates over the
WHW + EHR datasets plus the local ZipMap table) through four buyer
strategies and prints the Figure 10a-style cumulative-spend comparison.

Run with:  python examples/weather_analytics.py [instances_per_template]
"""

import sys

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import download_all_bound, run_session
from repro.bench.reporting import series_table
from repro.workloads.weather import TEMPLATES


def main() -> None:
    q = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    data = make_workload("real")
    instances = make_instances("real", data, q)
    print(
        f"Workload: {len(TEMPLATES)} templates x {q} instances = "
        f"{len(instances)} queries over {data.total_market_rows()} market rows"
    )
    print(f"Downloading everything upfront would cost "
          f"{download_all_bound(data)} transactions.\n")

    systems = {
        "PayLess": "payless",
        "PayLess w/o SQR": "payless_nosqr",
        "Minimizing Calls": "min_calls",
        "Download All": "download_all",
    }
    sessions = {}
    for label, system in systems.items():
        sessions[label] = run_session(system, data, instances)
        print(
            f"{label:>17}: {sessions[label].total_transactions:>6} transactions, "
            f"{sessions[label].total_calls:>5} REST calls"
        )

    print()
    print(
        series_table(
            "Cumulative transactions (compare with the paper's Figure 10a)",
            {
                label: session.cumulative_transactions
                for label, session in sessions.items()
            },
        )
    )

    payless = sessions["PayLess"].total_transactions
    download = sessions["Download All"].total_transactions
    print(
        f"\nPayLess answered the whole session for {payless} transactions — "
        f"{download / max(payless, 1):.1f}x cheaper than downloading the "
        "datasets outright, without ever needing to guess how many queries "
        "the analysts would issue."
    )

    # Hindsight: was avoiding the bulk download the right call, per table?
    from repro.bench.harness import build_system
    from repro.core.advisor import report

    replay, __ = build_system("payless", data)
    for instance in instances:
        replay.query(instance.sql, instance.params)
    print()
    print(report(replay))


if __name__ == "__main__":
    main()
