"""TPC-H over a priced data market: when Download All *isn't* crazy.

The paper's TPC-H experiment (Figure 10b/c) shows the other side of the
trade-off: scan-heavy analytical queries touch big overlapping slices of
the data, so optimizers that re-buy data on every query (Minimizing Calls,
PayLess without rewriting) end up paying more than a one-off bulk
download — while full PayLess converges to the bulk-download price because
its semantic store eventually holds the whole dataset.

Run with:  python examples/tpch_market.py [instances_per_template] [--skew]
"""

import sys

from repro.bench.figures import make_instances, make_workload
from repro.bench.harness import build_system, download_all_bound, run_session
from repro.workloads.tpch import TEMPLATES


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    q = int(args[0]) if args else 2
    workload = "tpch_skew" if "--skew" in sys.argv else "tpch"

    data = make_workload(workload)
    instances = make_instances(workload, data, q)
    bound = download_all_bound(data)
    print(
        f"Workload: {workload}, {len(TEMPLATES)} templates x {q} = "
        f"{len(instances)} queries over {data.total_market_rows()} market rows"
    )
    print(f"Download-All bound: {bound} transactions\n")

    print("One query in detail — the shipping-priority template T03:")
    payless, __ = build_system("payless", data)
    t03 = next(i for i in instances if i.template == "T03")
    planning = payless.explain(t03.sql, t03.params)
    print(planning.plan.describe())
    result = payless.query(t03.sql, t03.params)
    print(
        f"-> {len(result.rows)} result rows, {result.stats.transactions} "
        f"transactions, {result.stats.calls} calls\n"
    )

    for label, system in (
        ("PayLess", "payless"),
        ("PayLess w/o SQR", "payless_nosqr"),
        ("Minimizing Calls", "min_calls"),
        ("Download All", "download_all"),
    ):
        session = run_session(system, data, instances)
        versus = session.total_transactions / bound
        print(
            f"{label:>17}: {session.total_transactions:>6} transactions "
            f"({versus:4.1f}x the download bound)"
        )

    print(
        "\nAs in the paper: without semantic rewriting the repeated scans "
        "cost several times the bulk download, while full PayLess stays "
        "at or below it — and nobody had to know q in advance."
    )


if __name__ == "__main__":
    main()
