"""Quickstart: the paper's Figure 1 scenario end-to-end.

Builds a small weather data market (788 US stations, one in Seattle),
registers a PayLess installation against it, and runs the introduction's
Seattle-temperature query.  PayLess picks the bind-join plan P2 and pays
2 transactions instead of P1's 238 — then answers the repeat query for
free out of its semantic store.

Run with:  python examples/quickstart.py
"""

from repro import (
    BindingPattern,
    DataMarket,
    Dataset,
    PayLess,
    PricingPolicy,
    Table,
)
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.types import AttributeType as T


def build_market() -> DataMarket:
    """788 US weather stations, exactly one (id 3817) in Seattle."""
    cities = {3817: "Seattle"}
    for i in range(787):
        cities[10000 + i] = f"City{i:04d}"
    ids = sorted(cities)

    country_domain = Domain.categorical(["United States"])
    id_domain = Domain.numeric(min(ids), max(ids))
    station_schema = Schema(
        [
            Attribute("Country", T.STRING, country_domain),
            Attribute("StationID", T.INT, id_domain),
            Attribute("City", T.STRING, Domain.categorical(cities.values())),
        ]
    )
    weather_schema = Schema(
        [
            Attribute("Country", T.STRING, country_domain),
            Attribute("StationID", T.INT, id_domain),
            Attribute("Date", T.DATE, Domain.numeric(1, 30)),  # June, as day 1..30
            Attribute("Temperature", T.FLOAT),
        ]
    )
    station_rows = [("United States", sid, city) for sid, city in cities.items()]
    weather_rows = [
        ("United States", sid, day, 15.0 + (sid + day) % 10)
        for sid in ids
        for day in range(1, 31)
    ]

    dataset = Dataset("WHW", PricingPolicy(tuples_per_transaction=100))
    dataset.add_table(
        Table("Station", station_schema, station_rows),
        BindingPattern.parse("Station", "Countryf, StationIDf, Cityf"),
    )
    dataset.add_table(
        Table("Weather", weather_schema, weather_rows),
        BindingPattern.parse("Weather", "Countryf, StationIDf, Datef"),
    )
    market = DataMarket()
    market.publish(dataset)
    return market


def main() -> None:
    market = build_market()
    payless = PayLess.full(market)
    payless.register_dataset("WHW")

    sql = (
        "SELECT Temperature FROM Station, Weather "
        "WHERE City = 'Seattle' AND Station.Country = 'United States' "
        "AND Weather.Country = 'United States' "
        "AND Date >= 1 AND Date <= 30 "
        "AND Station.StationID = Weather.StationID"
    )

    print("=== The chosen plan (the paper's P2) ===")
    planning = payless.explain(sql)
    print(planning.plan.describe())
    print(f"estimated price: {planning.cost:.0f} transactions")
    print(f"(fetching all US June weather instead would cost "
          f"1 + ceil(788*30/100) = 238 transactions)")

    print("\n=== Executing ===")
    result = payless.query(sql)
    print(f"rows returned:       {len(result.rows)}")
    print(f"REST calls made:     {result.stats.calls}")
    print(f"transactions billed: {result.stats.transactions}")
    print(f"money paid:          ${result.stats.price:g}")

    print("\n=== Asking again (served from the semantic store) ===")
    repeat = payless.query(sql)
    print(f"transactions billed: {repeat.stats.transactions}")

    print("\n=== Session bill ===")
    print(payless.bill())


if __name__ == "__main__":
    main()
