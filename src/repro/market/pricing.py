"""Transaction pricing — Equation (1) of the paper.

A *transaction* is a page of ``t`` tuples and the smallest pricing unit.
A RESTful call returning ``n`` records costs ``ceil(n / t)`` transactions,
each priced at ``p``.  The paper's running defaults are ``p = $1`` and
``t = 100``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MarketError

DEFAULT_TUPLES_PER_TRANSACTION = 100
DEFAULT_PRICE_PER_TRANSACTION = 1.0


@dataclass(frozen=True)
class PricingPolicy:
    """Per-dataset pricing: ``price_per_transaction`` and page size ``t``."""

    tuples_per_transaction: int = DEFAULT_TUPLES_PER_TRANSACTION
    price_per_transaction: float = DEFAULT_PRICE_PER_TRANSACTION

    def __post_init__(self) -> None:
        if self.tuples_per_transaction <= 0:
            raise MarketError("tuples_per_transaction must be positive")
        if self.price_per_transaction < 0:
            raise MarketError("price_per_transaction must be non-negative")

    def transactions_for(self, record_count: int) -> int:
        """Number of transactions billed for a call returning ``record_count``."""
        if record_count < 0:
            raise MarketError("record count cannot be negative")
        return math.ceil(record_count / self.tuples_per_transaction)

    def price_for(self, record_count: int) -> float:
        """Money billed for a call returning ``record_count`` records."""
        return self.transactions_for(record_count) * self.price_per_transaction
