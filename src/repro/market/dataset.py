"""Datasets: priced, binding-pattern-guarded collections of tables.

A dataset is the unit a data owner publishes and prices (Section 2.1):
it bundles one or more tables, each with a binding pattern, under one
:class:`PricingPolicy`.  Datasets publish only *basic statistics* —
cardinality and per-attribute domains — mirroring what real markets tag
their data with.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import MarketError, SchemaError
from repro.market.binding import BindingPattern
from repro.market.pricing import PricingPolicy
from repro.relational.schema import Domain, Schema
from repro.relational.table import Table


@dataclass(frozen=True)
class BasicStatistics:
    """What a data market publicly reveals about a table (Section 2.1)."""

    cardinality: int
    domains: dict[str, Domain]

    def domain_of(self, attribute: str) -> Domain | None:
        return self.domains.get(attribute.lower())


class MarketTable:
    """One table inside a dataset: data + binding pattern + basic stats.

    Data-market datasets are *append-only* (Section 2.1 of the paper: they
    are released for analytics; "new data could be added periodically").
    :meth:`append` models a seller's periodic release.  Appends must stay
    within the published attribute domains — buyers size their box spaces
    from the domains at registration time, exactly as real buyers rely on
    the seller's published metadata.
    """

    def __init__(self, table: Table, pattern: BindingPattern):
        pattern.validate_against_schema(table.schema)
        self.table = table
        self.pattern = pattern
        self._frozen_domains: dict[str, Domain] | None = None
        #: Lazy hash indexes (attribute -> value -> rows) — the real
        #: marketplace backends index their data; without this every GET
        #: call would scan the full table, which dominates simulation time
        #: for bind joins issuing thousands of point calls.  Built under a
        #: lock: the executor issues independent GETs concurrently.
        self._indexes: dict[str, dict] = {}
        self._index_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def append(self, rows: Iterable[tuple]) -> int:
        """Seller-side periodic data release; returns rows appended.

        Values of constrainable attributes must lie inside the published
        domains (buyers' coverage bookkeeping depends on them).
        """
        if self._frozen_domains is None:
            self._frozen_domains = self.basic_statistics().domains
        appended = 0
        for row in rows:
            for name in self.pattern.constrainable_attributes:
                domain = self._frozen_domains.get(name.lower())
                value = row[self.schema.position(name)]
                if domain is not None and not domain.contains(value):
                    raise MarketError(
                        f"{self.name}: appended value {value!r} for "
                        f"{name!r} lies outside the published domain"
                    )
            self.table.append(row)
            appended += 1
        self._indexes.clear()
        return appended

    def _index(self, attribute: str) -> dict:
        key = attribute.lower()
        index = self._indexes.get(key)
        if index is None:
            with self._index_lock:
                index = self._indexes.get(key)
                if index is None:
                    position = self.schema.position(attribute)
                    index = {}
                    for row in self.table:
                        index.setdefault(row[position], []).append(row)
                    self._indexes[key] = index
        return index

    def rows_matching(self, request) -> list:
        """Rows satisfying a :class:`~repro.market.rest.RestRequest`.

        Uses a hash index on one point-constrained attribute when available,
        falling back to a full scan otherwise.
        """
        point_constraints = [
            c for c in request.constraints if c.is_point
        ]
        if point_constraints:
            anchor = point_constraints[0]
            candidates = self._index(anchor.attribute).get(anchor.value, [])
            others = [
                c for c in request.constraints
                if c.attribute.lower() != anchor.attribute.lower()
            ]
            if not others:
                return list(candidates)
            positions = [
                (self.schema.position(c.attribute), c) for c in others
            ]
            return [
                row
                for row in candidates
                if all(c.matches(row[p]) for p, c in positions)
            ]
        schema = self.schema
        return [row for row in self.table if request.matches(row, schema)]

    def basic_statistics(self) -> BasicStatistics:
        """Publish cardinality + per-attribute domains derived from the data.

        Declared schema domains win when present; otherwise the domain is
        computed from the data (the seller knows their own data).
        """
        domains: dict[str, Domain] = {}
        for attribute in self.schema:
            if attribute.domain is not None:
                domains[attribute.name.lower()] = attribute.domain
                continue
            values = self.table.column(attribute.name)
            if not values:
                continue
            if attribute.type.is_numeric:
                domains[attribute.name.lower()] = Domain.numeric(
                    min(values), max(values)
                )
            else:
                domains[attribute.name.lower()] = Domain.categorical(set(values))
        return BasicStatistics(cardinality=len(self.table), domains=domains)


class Dataset:
    """A named, priced bundle of market tables."""

    def __init__(
        self,
        name: str,
        pricing: PricingPolicy | None = None,
    ):
        if not name:
            raise MarketError("dataset name must be non-empty")
        self.name = name
        self.pricing = pricing or PricingPolicy()
        self._tables: dict[str, MarketTable] = {}

    def add_table(self, table: Table, pattern: BindingPattern) -> MarketTable:
        key = table.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {table.name!r} already in dataset {self.name!r}")
        market_table = MarketTable(table, pattern)
        self._tables[key] = market_table
        return market_table

    def table(self, name: str) -> MarketTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise MarketError(
                f"dataset {self.name!r} has no table {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[MarketTable]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]
