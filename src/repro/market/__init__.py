"""Simulated cloud data market: datasets, binding patterns, REST, billing."""

from repro.market.billing import BillingLedger, ChargeTotals, LedgerEntry
from repro.market.binding import AccessMode, BindingPattern
from repro.market.dataset import BasicStatistics, Dataset, MarketTable
from repro.market.faults import FaultKind, FaultPolicy, InjectedFault
from repro.market.latency import DEFAULT_LATENCY, INSTANT, LatencyModel
from repro.market.pricing import (
    DEFAULT_PRICE_PER_TRANSACTION,
    DEFAULT_TUPLES_PER_TRANSACTION,
    PricingPolicy,
)
from repro.market.rest import RestRequest, RestResponse, interval, point
from repro.market.server import DataMarket
from repro.market.subscription import Subscription
from repro.market.transport import (
    BreakerState,
    CircuitBreaker,
    FetchResult,
    MarketTransport,
    QueryScope,
    TransportConfig,
)

__all__ = [
    "AccessMode",
    "BasicStatistics",
    "BillingLedger",
    "BindingPattern",
    "BreakerState",
    "ChargeTotals",
    "CircuitBreaker",
    "DataMarket",
    "Dataset",
    "DEFAULT_LATENCY",
    "DEFAULT_PRICE_PER_TRANSACTION",
    "DEFAULT_TUPLES_PER_TRANSACTION",
    "FaultKind",
    "FaultPolicy",
    "FetchResult",
    "INSTANT",
    "InjectedFault",
    "LatencyModel",
    "LedgerEntry",
    "MarketTable",
    "MarketTransport",
    "PricingPolicy",
    "QueryScope",
    "RestRequest",
    "Subscription",
    "RestResponse",
    "TransportConfig",
    "interval",
    "point",
]
