"""The data-market server: dataset registry + GET execution + metering.

This is the cloud side of the paper's setting (Figure 2).  Buyers interact
with it only through :meth:`DataMarket.get` — the simulator enforces exactly
the restrictions of the real marketplace interface:

* binding patterns are checked on every call (bound attributes must be
  constrained; output attributes may not be);
* range constraints are allowed only on numeric attributes;
* there are no joins, no disjunctions, no aggregation server-side;
* every call is billed ``ceil(records / t)`` transactions via the dataset's
  pricing policy and recorded in a :class:`BillingLedger`.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

from repro.errors import MarketError
from repro.market.billing import BillingLedger
from repro.market.dataset import BasicStatistics, Dataset, MarketTable
from repro.market.rest import RestRequest, RestResponse
from repro.relational.query import AttributeConstraint


class DataMarket:
    """A simulated cloud data market hosting multiple priced datasets."""

    def __init__(self, latency: "LatencyModel | None" = None) -> None:
        from repro.market.latency import INSTANT

        self._datasets: dict[str, Dataset] = {}
        self.ledger = BillingLedger()
        #: Simulated call latency (INSTANT by default; pass a
        #: :class:`~repro.market.latency.LatencyModel` for realism).
        self.latency = latency if latency is not None else INSTANT
        #: Server-side idempotency cache: key -> the response already billed
        #: under that key.  A retried call carrying the same key replays the
        #: stored response without billing again (at-most-once billing).
        #: Unbounded by design — the simulator never runs long enough for
        #: this to matter; a real gateway would expire keys after ~24h.
        self._idempotency: dict[str, RestResponse] = {}
        self._idempotency_lock = threading.Lock()
        #: How many calls were answered from the idempotency cache (free).
        self.replay_count = 0

    # -- registry ------------------------------------------------------------

    def publish(self, dataset: Dataset) -> Dataset:
        """Make ``dataset`` available for purchase."""
        key = dataset.name.lower()
        if key in self._datasets:
            raise MarketError(f"dataset {dataset.name!r} already published")
        self._datasets[key] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name.lower()]
        except KeyError:
            raise MarketError(f"unknown dataset {name!r}") from None

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets.values())

    def find_table(self, table_name: str) -> tuple[Dataset, MarketTable]:
        """Locate a table by name across all datasets."""
        for dataset in self._datasets.values():
            if table_name in dataset:
                return dataset, dataset.table(table_name)
        raise MarketError(f"no dataset offers table {table_name!r}")

    def basic_statistics(self, table_name: str) -> BasicStatistics:
        """The publicly tagged stats of a table (what buyers can see free)."""
        __, market_table = self.find_table(table_name)
        return market_table.basic_statistics()

    # -- the RESTful interface --------------------------------------------------

    def get(
        self,
        request: RestRequest,
        *,
        idempotency_key: str | None = None,
        sleep: bool = True,
    ) -> RestResponse:
        """Execute one GET call, bill it, and return the matching records.

        When ``idempotency_key`` is given and a call was already billed
        under it, the stored response is replayed **without billing** —
        this is the server half of at-most-once billing: a client that
        never saw the response (it timed out in transit) can retry with the
        same key and not pay twice.

        ``sleep=False`` skips the realtime ``time.sleep`` while keeping
        billing and accounting identical — the async transport issues the
        call without blocking its event-loop executor and awaits an
        ``asyncio.sleep`` of the same duration instead, so the modelled
        wall-clock is paid cooperatively rather than thread-blockingly.

        Thread-safe: calls are read-only against published data (lazy row
        indexes build under their own lock) and billing appends under the
        ledger's lock, so the executor may issue independent calls
        concurrently.  ``publish``/``append`` are not meant to race with
        in-flight GETs, mirroring a real market's release windows.
        """
        if idempotency_key is not None:
            with self._idempotency_lock:
                cached = self._idempotency.get(idempotency_key)
                if cached is not None:
                    self.replay_count += 1
                    return cached
        dataset = self.dataset(request.dataset)
        if request.table not in dataset:
            raise MarketError(
                f"dataset {dataset.name!r} has no table {request.table!r}"
            )
        market_table = dataset.table(request.table)
        self._validate(request, market_table)

        rows = tuple(market_table.rows_matching(request))
        transactions = dataset.pricing.transactions_for(len(rows))
        price = dataset.pricing.price_for(len(rows))
        elapsed_ms = self.latency.call_ms(transactions)
        if self.latency.realtime_scale and sleep:
            # Real-time mode: block the calling thread for (a scaled-down
            # slice of) the modelled latency, so concurrent serving has a
            # genuine wait to overlap and coalesce.  Replays above stay
            # instant, mirroring a gateway cache hit.
            time.sleep(elapsed_ms * self.latency.realtime_scale / 1000.0)
        self.ledger.record(
            request,
            len(rows),
            transactions,
            price,
            elapsed_ms=elapsed_ms,
            idempotency_key=idempotency_key,
        )
        response = RestResponse(
            request=request,
            rows=rows,
            schema=market_table.schema,
            transactions=transactions,
            price=price,
            elapsed_ms=elapsed_ms,
        )
        if idempotency_key is not None:
            with self._idempotency_lock:
                self._idempotency[idempotency_key] = response
        return response

    @staticmethod
    def _validate(request: RestRequest, market_table: MarketTable) -> None:
        for constraint in request.constraints:
            if constraint.attribute not in market_table.schema:
                raise MarketError(
                    f"{market_table.name}: unknown attribute "
                    f"{constraint.attribute!r}"
                )
        market_table.pattern.validate_constrained(
            request.constrained_attributes
        )
        for constraint in request.constraints:
            attribute = market_table.schema.attribute(constraint.attribute)
            if constraint.is_range and not attribute.type.is_numeric:
                raise MarketError(
                    f"{market_table.name}: range constraint on categorical "
                    f"attribute {constraint.attribute!r}"
                )

    # -- convenience -----------------------------------------------------------

    def download_table(self, table_name: str) -> RestResponse:
        """Fetch a whole table with one unconstrained call (if its pattern
        allows it); this is what the "Download All" baseline does."""
        dataset, market_table = self.find_table(table_name)
        if not market_table.pattern.downloadable:
            raise MarketError(
                f"table {table_name!r} has bound attributes and cannot be "
                "downloaded with a single call"
            )
        return self.get(RestRequest(dataset.name, market_table.name))
