"""The async pipelined market transport: pools, pipelining, one loop.

The paper is blunt that "the execution time of a query is, as usual,
dominated by the RESTful calls to the data seller" (Section 5).  The
threaded transport hides some of that latency behind a thread pool, but
threads cap the in-flight depth (one OS thread per blocked call) and every
physical call pays connection setup again.  This module keeps the *money*
machinery — :meth:`~repro.market.transport.MarketTransport._fetch_machine`
holds every retry/billing/durability decision — and swaps the IO driver:

* **one persistent event loop** owned by a daemon thread.  Executors and
  serving sessions submit fetch coroutines onto it from any thread; one
  process can keep hundreds of calls in flight without hundreds of
  threads.
* **per-seller connection pools** — a bounded pool per dataset endpoint.
  ``LatencyModel.connection_setup_ms`` is paid once per pooled connection
  when it is first opened; reuse is free (counted in the
  ``connections_reused`` metric).  The threaded driver, by contrast, pays
  setup on every physical call.
* **cooperative sleeps** — realtime market latency is awaited with
  ``asyncio.sleep`` instead of blocking a worker thread, which is what
  lets in-flight depth exceed the thread count.

Money-safety is inherited, not re-implemented: both transports drive the
same sans-IO fetch machine, so idempotency keys, fault draws, retries,
backoff accounting, waste marking and durable-intent resolution are
identical by construction.  Ledger attribution tokens remain correct
because the token context manager wraps only the synchronous
``market.get`` — never an ``await`` — so coroutines interleaving on the
loop thread cannot mix up each other's attribution.
"""

from __future__ import annotations

import asyncio
import threading

from repro.market.rest import RestRequest
from repro.market.transport import FetchResult, MarketTransport, QueryScope

#: Default per-seller pool size (and therefore the in-flight depth cap of
#: one async installation).  Deliberately much larger than the threaded
#: default of 4–8 workers: coroutines waiting on simulated latency are
#: nearly free, threads are not.
DEFAULT_POOL_SIZE = 64


class _SellerPool:
    """A bounded connection pool for one dataset endpoint.

    All state is touched only from the event-loop thread, so plain
    integers suffice — the semaphore provides the bound, ``idle`` counts
    connections that were opened, used, and returned.
    """

    def __init__(self, size: int):
        self.semaphore = asyncio.Semaphore(size)
        self.idle = 0
        self.opened = 0
        self.reused = 0

    async def acquire(
        self, setup_ms: float, realtime_scale: float
    ) -> tuple[bool, float]:
        """Claim a connection; returns ``(reused, connect_ms)`` — the setup
        latency this claim paid is ``setup_ms`` for a fresh handshake and
        ``0.0`` for a reuse."""
        await self.semaphore.acquire()
        if self.idle:
            self.idle -= 1
            self.reused += 1
            return True, 0.0
        self.opened += 1
        if setup_ms and realtime_scale:
            await asyncio.sleep(setup_ms * realtime_scale / 1000.0)
        return False, setup_ms

    def release(self) -> None:
        self.idle += 1
        self.semaphore.release()


class AsyncMarketTransport:
    """Pipelined driver over a :class:`MarketTransport`'s fetch machine.

    Wraps — not replaces — the installation's synchronous transport, so
    circuit breakers, the simulated clock, per-URL key sequences and the
    durability backend are literally shared state: a chaos run issues the
    same keys and draws the same faults whichever driver executes it.

    The event loop starts lazily on first use and is owned by a daemon
    thread; :meth:`close` stops it (idempotent — a later fetch simply
    starts a fresh loop).  Submit work from any thread with
    :meth:`submit`, which returns a ``concurrent.futures.Future``.
    """

    def __init__(
        self,
        transport: MarketTransport,
        pool_size: int = DEFAULT_POOL_SIZE,
        metrics=None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.transport = transport
        self.market = transport.market
        self.pool_size = pool_size
        self.metrics = metrics if metrics is not None else transport.metrics
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._lifecycle_lock = threading.Lock()
        #: dataset.lower() -> _SellerPool; loop-thread-only state.
        self._pools: dict[str, _SellerPool] = {}
        #: Fetch coroutines currently in flight (loop-thread-only).
        self._active = 0

    # -- loop lifecycle --------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lifecycle_lock:
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._pools = {}
                self._active = 0
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="market-aio-loop",
                    daemon=True,
                )
                self._thread.start()
            return self._loop

    def close(self) -> None:
        """Stop the event loop and join its thread.  Idempotent; a fetch
        after close lazily starts a fresh loop (with fresh pools)."""
        with self._lifecycle_lock:
            loop, thread = self._loop, self._thread
            self._loop = self._thread = None
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=30.0)
        loop.close()

    def submit(self, coro) -> "asyncio.Future":
        """Schedule a coroutine on the transport's loop from any thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._ensure_loop())

    def run(self, coro):
        """Submit ``coro`` and block the calling thread for its result."""
        return self.submit(coro).result()

    # -- the async call path ---------------------------------------------------

    def _pool_for(self, dataset: str) -> _SellerPool:
        key = dataset.lower()
        pool = self._pools.get(key)
        if pool is None:
            pool = _SellerPool(self.pool_size)
            self._pools[key] = pool
        return pool

    def _get(self, request: RestRequest, key: str | None, token: str | None):
        """One physical call, ledger-attributed, never sleeping the loop.

        The attribution context is thread-local and there is **no await
        inside it**: interleaving coroutines on the loop thread therefore
        cannot observe each other's token.
        """
        market = self.market
        if token is not None:
            with market.ledger.attribute(token):
                if key is not None:
                    return market.get(
                        request, idempotency_key=key, sleep=False
                    )
                return market.get(request, sleep=False)
        if key is not None:
            return market.get(request, idempotency_key=key, sleep=False)
        return market.get(request, sleep=False)

    async def fetch(
        self,
        request: RestRequest,
        scope: QueryScope | None = None,
        token: str | None = None,
    ) -> FetchResult:
        """Async twin of :meth:`MarketTransport.fetch`.

        Drives the same sans-IO machine; per physical call it claims a
        pooled connection (paying setup only on a fresh handshake), issues
        the synchronous ``market.get`` without its realtime sleep, then
        awaits the modelled latency cooperatively — except for idempotency
        replays, which are instant in both drivers.
        """
        transport = self.transport
        if scope is None:
            scope = transport.new_scope()
        machine = transport._fetch_machine(request, scope)
        latency = self.market.latency
        scale = latency.realtime_scale
        setup_ms = latency.connection_setup_ms
        pool = self._pool_for(request.dataset)
        metrics = self.metrics
        self._active += 1
        if metrics is not None:
            metrics.gauge("fetch_pipeline_depth").set_max(float(self._active))
        try:
            effect = machine.send(None)
            while True:
                __, key, expect_replay = effect
                try:
                    reused, connect_ms = await pool.acquire(setup_ms, scale)
                    if reused and metrics is not None:
                        metrics.counter("connections_reused").inc()
                    try:
                        response = self._get(request, key, token)
                        if scale and not expect_replay:
                            # The connection is held across the transfer,
                            # exactly as a socket would be.
                            await asyncio.sleep(
                                response.elapsed_ms * scale / 1000.0
                            )
                    finally:
                        pool.release()
                except BaseException as error:
                    effect = machine.throw(error)
                else:
                    effect = machine.send((response, connect_ms))
        except StopIteration as stop:
            return stop.value
        finally:
            self._active -= 1

    # -- introspection ---------------------------------------------------------

    def pool_stats(self) -> dict[str, dict[str, int]]:
        """Per-seller ``{opened, reused, idle}`` counters (racy but
        monotonic enough for benches and tests)."""
        return {
            name: {
                "opened": pool.opened,
                "reused": pool.reused,
                "idle": pool.idle,
            }
            for name, pool in self._pools.items()
        }

    def __repr__(self) -> str:
        state = "running" if self._loop is not None else "idle"
        return (
            f"AsyncMarketTransport({state}, pool_size={self.pool_size}, "
            f"sellers={len(self._pools)})"
        )
