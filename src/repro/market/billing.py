"""Billing: the ledger of every REST call and what it cost.

The ledger is the ground truth the evaluation reads: Figures 10-13 of the
paper all plot *cumulative transactions billed*, which is exactly
``ledger.total_transactions`` over time.  Checkpoints let the benchmark
harness snapshot the cumulative series after each user query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.market.rest import RestRequest


@dataclass(frozen=True)
class LedgerEntry:
    """One billed REST call."""

    request: RestRequest
    record_count: int
    transactions: int
    price: float
    #: Simulated wall-clock of the call (see repro.market.latency).
    elapsed_ms: float = 0.0


class BillingLedger:
    """Append-only record of billed calls with per-dataset aggregation.

    ``record`` is thread-safe: the executor dispatches independent
    remainder calls concurrently (see ``core.executor``), and every one of
    them bills through this single ledger.
    """

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []
        self._lock = threading.Lock()

    def record(
        self,
        request: RestRequest,
        record_count: int,
        transactions: int,
        price: float,
        elapsed_ms: float = 0.0,
    ) -> LedgerEntry:
        entry = LedgerEntry(
            request, record_count, transactions, price, elapsed_ms
        )
        with self._lock:
            self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    @property
    def total_calls(self) -> int:
        return len(self._entries)

    @property
    def total_records(self) -> int:
        return sum(entry.record_count for entry in self._entries)

    @property
    def total_transactions(self) -> int:
        return sum(entry.transactions for entry in self._entries)

    @property
    def total_price(self) -> float:
        return sum(entry.price for entry in self._entries)

    @property
    def total_elapsed_ms(self) -> float:
        """Simulated wall-clock spent on REST calls, summed serially."""
        return sum(entry.elapsed_ms for entry in self._entries)

    def transactions_for_dataset(self, dataset: str) -> int:
        wanted = dataset.lower()
        return sum(
            entry.transactions
            for entry in self._entries
            if entry.request.dataset.lower() == wanted
        )

    def summary(self) -> str:
        """A short human-readable bill."""
        per_dataset: dict[str, tuple[int, int, float]] = {}
        for entry in self._entries:
            calls, transactions, price = per_dataset.get(
                entry.request.dataset, (0, 0, 0.0)
            )
            per_dataset[entry.request.dataset] = (
                calls + 1,
                transactions + entry.transactions,
                price + entry.price,
            )
        lines = [
            f"{name}: {calls} calls, {transactions} transactions, ${price:g}"
            for name, (calls, transactions, price) in sorted(per_dataset.items())
        ]
        lines.append(
            f"TOTAL: {self.total_calls} calls, "
            f"{self.total_transactions} transactions, ${self.total_price:g}"
        )
        return "\n".join(lines)
