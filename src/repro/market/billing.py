"""Billing: the ledger of every REST call and what it cost.

The ledger is the ground truth the evaluation reads: Figures 10-13 of the
paper all plot *cumulative transactions billed*, which is exactly
``ledger.total_transactions`` over time.  Checkpoints let the benchmark
harness snapshot the cumulative series after each user query.

Money-safety (see :mod:`repro.market.transport`) splits the bill in two:

* **spent** — charges for calls whose data was eventually delivered; this
  is what ``total_transactions`` / ``total_price`` report, so the figures
  stay comparable whether or not faults were injected;
* **wasted_on_failures** — charges for calls the market billed but whose
  response never reached the buyer (retry exhaustion after a dropped
  response, a naive retry double-billing without an idempotency key).
  The transport moves an entry here via :meth:`BillingLedger.mark_wasted`
  when it gives up on the entry's idempotency key.

A third, informational bucket — **coalesced_savings** — accumulates the
charges that singleflight coalescing (:mod:`repro.serve.singleflight`)
avoided: when an in-flight fetch is shared, the waiters' would-have-been
bills land here instead of in ``spent``.

**Attribution under concurrency.**  Dollar attribution used to bracket
each table access with a ``checkpoint()`` index pair and claim everything
recorded in between.  That is only sound when accesses are serial; with
many sessions billing through one ledger, entries interleave.  Each
executor therefore stamps its calls with an explicit *fetch token*: it
wraps the transport call in :meth:`BillingLedger.attribute` (thread-local,
so concurrent sessions cannot leak tokens onto each other's entries) and
reads back exactly its own entries via :meth:`entries_for_token`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import MarketError
from repro.market.rest import RestRequest


@dataclass(frozen=True)
class LedgerEntry:
    """One billed REST call."""

    request: RestRequest
    record_count: int
    transactions: int
    price: float
    #: Simulated wall-clock of the call (see repro.market.latency).
    elapsed_ms: float = 0.0
    #: The transport's at-most-once billing key, when one was attached.
    idempotency_key: str | None = None
    #: The executor-side attribution token active when this entry was
    #: billed (see :meth:`BillingLedger.attribute`); ``None`` for calls
    #: issued outside any attribution scope (baselines, raw market use).
    fetch_token: str | None = None


@dataclass(frozen=True)
class ChargeTotals:
    """An aggregate over a subset of ledger entries."""

    calls: int = 0
    transactions: int = 0
    price: float = 0.0

    def __bool__(self) -> bool:
        return self.calls > 0


class BillingLedger:
    """Append-only record of billed calls with per-dataset aggregation.

    ``record`` and ``mark_wasted`` are thread-safe: the executor dispatches
    independent remainder calls concurrently (see ``core.executor``), and
    every one of them bills through this single ledger.
    """

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []
        self._wasted_keys: set[str] = set()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._coalesced_calls = 0
        self._coalesced_transactions = 0
        self._coalesced_price = 0.0

    @contextmanager
    def attribute(self, fetch_token: str | None):
        """Stamp every entry billed by *this thread* with ``fetch_token``.

        Thread-local by construction: concurrent sessions billing through
        one ledger each see only their own token, so
        :meth:`entries_for_token` partitions interleaved entries exactly —
        the concurrency-safe replacement for checkpoint/index bracketing.
        """
        previous = getattr(self._local, "token", None)
        self._local.token = fetch_token
        try:
            yield
        finally:
            self._local.token = previous

    def record(
        self,
        request: RestRequest,
        record_count: int,
        transactions: int,
        price: float,
        elapsed_ms: float = 0.0,
        idempotency_key: str | None = None,
    ) -> LedgerEntry:
        entry = LedgerEntry(
            request,
            record_count,
            transactions,
            price,
            elapsed_ms,
            idempotency_key,
            getattr(self._local, "token", None),
        )
        with self._lock:
            self._entries.append(entry)
        return entry

    def checkpoint(self) -> int:
        """An opaque position marker for :meth:`entries_since`.

        Under concurrency a checkpoint pair may bracket other sessions'
        entries too; filter with :meth:`entries_for_token` (the checkpoint
        then merely bounds the scan, since a token's entries can only
        appear after the checkpoint its access opened with).
        """
        with self._lock:
            return len(self._entries)

    def entries_since(self, checkpoint: int) -> tuple[LedgerEntry, ...]:
        """Entries recorded since ``checkpoint`` (append-only, so stable)."""
        with self._lock:
            return tuple(self._entries[checkpoint:])

    def entries_for_token(
        self, fetch_token: str, checkpoint: int = 0
    ) -> tuple[LedgerEntry, ...]:
        """Entries billed under ``fetch_token``, optionally scan-bounded.

        This is the interleaving-safe attribution primitive: entries from
        other threads recorded between an access's bracketing checkpoints
        carry different tokens and are excluded.
        """
        with self._lock:
            window = self._entries[checkpoint:]
        return tuple(e for e in window if e.fetch_token == fetch_token)

    def note_coalesced_savings(self, transactions: int, price: float) -> None:
        """Credit the savings bucket: a coalesced fetch avoided this bill."""
        with self._lock:
            self._coalesced_calls += 1
            self._coalesced_transactions += transactions
            self._coalesced_price += price

    @property
    def coalesced_savings(self) -> ChargeTotals:
        """Charges singleflight coalescing avoided (informational bucket)."""
        with self._lock:
            return ChargeTotals(
                self._coalesced_calls,
                self._coalesced_transactions,
                self._coalesced_price,
            )

    def mark_wasted(self, idempotency_key: str) -> None:
        """Reclassify the entry billed under ``idempotency_key`` as wasted.

        Called by the transport when it abandons a call whose charge went
        through but whose data never arrived: the money is gone, but it
        must not inflate the spend series the evaluation plots.
        """
        if idempotency_key is None:
            raise MarketError("cannot mark a keyless entry as wasted")
        with self._lock:
            self._wasted_keys.add(idempotency_key)

    def is_wasted(self, entry: LedgerEntry) -> bool:
        return (
            entry.idempotency_key is not None
            and entry.idempotency_key in self._wasted_keys
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._snapshot())

    def _snapshot(self) -> list[LedgerEntry]:
        """A stable view for aggregate reads concurrent with appends."""
        with self._lock:
            return list(self._entries)

    def _totals(self, wasted: bool) -> ChargeTotals:
        calls = transactions = 0
        price = 0.0
        for entry in self._snapshot():
            if self.is_wasted(entry) is not wasted:
                continue
            calls += 1
            transactions += entry.transactions
            price += entry.price
        return ChargeTotals(calls, transactions, price)

    @property
    def spent(self) -> ChargeTotals:
        """Charges for calls whose data was (eventually) delivered."""
        return self._totals(wasted=False)

    @property
    def wasted_on_failures(self) -> ChargeTotals:
        """Charges for billed calls whose data never arrived."""
        return self._totals(wasted=True)

    @property
    def total_calls(self) -> int:
        """Every billed call, delivered or not."""
        return len(self._entries)

    @property
    def total_records(self) -> int:
        return sum(entry.record_count for entry in self._snapshot())

    @property
    def total_transactions(self) -> int:
        """Transactions *spent* (wasted charges are reported separately)."""
        return sum(
            entry.transactions
            for entry in self._snapshot()
            if not self.is_wasted(entry)
        )

    @property
    def total_price(self) -> float:
        """Money *spent* (wasted charges are reported separately)."""
        return sum(
            entry.price
            for entry in self._snapshot()
            if not self.is_wasted(entry)
        )

    @property
    def total_elapsed_ms(self) -> float:
        """Simulated wall-clock spent on billed REST calls, summed serially."""
        return sum(entry.elapsed_ms for entry in self._snapshot())

    def transactions_for_dataset(self, dataset: str) -> int:
        wanted = dataset.lower()
        return sum(
            entry.transactions
            for entry in self._snapshot()
            if entry.request.dataset.lower() == wanted
            and not self.is_wasted(entry)
        )

    def summary(self) -> str:
        """A short human-readable bill."""
        per_dataset: dict[str, tuple[int, int, float]] = {}
        for entry in self._snapshot():
            if self.is_wasted(entry):
                continue
            calls, transactions, price = per_dataset.get(
                entry.request.dataset, (0, 0, 0.0)
            )
            per_dataset[entry.request.dataset] = (
                calls + 1,
                transactions + entry.transactions,
                price + entry.price,
            )
        lines = [
            f"{name}: {calls} calls, {transactions} transactions, ${price:g}"
            for name, (calls, transactions, price) in sorted(per_dataset.items())
        ]
        lines.append(
            f"TOTAL: {self.total_calls} calls, "
            f"{self.total_transactions} transactions, ${self.total_price:g}"
        )
        wasted = self.wasted_on_failures
        if wasted:
            lines.append(
                f"WASTED on failures: {wasted.calls} calls, "
                f"{wasted.transactions} transactions, ${wasted.price:g}"
            )
        saved = self.coalesced_savings
        if saved:
            lines.append(
                f"SAVED by coalescing: {saved.calls} shared fetches, "
                f"{saved.transactions} transactions, ${saved.price:g}"
            )
        return "\n".join(lines)
