"""Subscription-style pricing: transaction quotas per billing period.

The paper's motivating example (Section 1): "it costs USD 12 per month to
obtain 100 'transactions' from the WorldWide Historical Weather dataset" —
the real marketplace sold monthly transaction *quotas*, not strictly
per-transaction metering.  A :class:`Subscription` converts a ledger's raw
transaction count into what the buyer would actually be invoiced under
such a plan: whole quota blocks, each at the block price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MarketError
from repro.market.billing import BillingLedger


@dataclass(frozen=True)
class Subscription:
    """A quota plan: ``block_price`` buys ``transactions_per_block``."""

    transactions_per_block: int = 100
    block_price: float = 12.0  # the paper's WHW example: $12 per 100

    def __post_init__(self) -> None:
        if self.transactions_per_block <= 0:
            raise MarketError("a quota block must hold at least 1 transaction")
        if self.block_price < 0:
            raise MarketError("block price cannot be negative")

    def blocks_for(self, transactions: int) -> int:
        """Quota blocks needed to cover ``transactions``."""
        if transactions < 0:
            raise MarketError("transaction count cannot be negative")
        return math.ceil(transactions / self.transactions_per_block)

    def invoice(self, transactions: int) -> float:
        """Money owed for ``transactions`` under this plan."""
        return self.blocks_for(transactions) * self.block_price

    def invoice_ledger(self, ledger: BillingLedger, dataset: str | None = None) -> float:
        """Invoice a ledger's consumption (optionally one dataset's)."""
        if dataset is None:
            transactions = ledger.total_transactions
        else:
            transactions = ledger.transactions_for_dataset(dataset)
        return self.invoice(transactions)

    def utilization(self, transactions: int) -> float:
        """Fraction of the purchased quota actually used (≤ 1)."""
        blocks = self.blocks_for(transactions)
        if blocks == 0:
            return 0.0
        return transactions / (blocks * self.transactions_per_block)
