"""RESTful GET calls against the data market.

A :class:`RestRequest` is the function-call-like ``X -> Y`` access of the
paper: a conjunction of per-attribute constraints (a point value, or a
half-open integer range for numeric attributes).  Disjunctions and point
*sets* are deliberately inexpressible — callers must decompose them into
several requests, exactly as the real market forces (Section 1's
``Country='Canada' OR Country='Germany'`` example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import MarketError
from repro.relational.query import AttributeConstraint
from repro.relational.schema import Schema
from repro.relational.table import Row


@dataclass(frozen=True)
class RestRequest:
    """One GET call: ``dataset/table?attr=value&attr=[lo,hi)...``."""

    dataset: str
    table: str
    constraints: tuple[AttributeConstraint, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for constraint in self.constraints:
            if constraint.is_set:
                raise MarketError(
                    "a REST call cannot constrain an attribute to a value "
                    f"set ({constraint.attribute!r}); decompose into one "
                    "call per value"
                )
            key = constraint.attribute.lower()
            if key in seen:
                raise MarketError(
                    f"duplicate constraint on attribute {constraint.attribute!r}"
                )
            seen.add(key)

    @property
    def constrained_attributes(self) -> list[str]:
        return [c.attribute for c in self.constraints]

    def constraint_for(self, attribute: str) -> AttributeConstraint | None:
        wanted = attribute.lower()
        for constraint in self.constraints:
            if constraint.attribute.lower() == wanted:
                return constraint
        return None

    def matches(self, row: Row, schema: Schema) -> bool:
        """Whether a table row satisfies every constraint of this call."""
        for constraint in self.constraints:
            position = schema.position(constraint.attribute)
            if not constraint.matches(row[position]):
                return False
        return True

    def url(self) -> str:
        """A human-readable GET-style rendering (for logs and examples)."""
        parts = []
        for constraint in self.constraints:
            if constraint.is_point:
                parts.append(f"{constraint.attribute}={constraint.value!r}")
            else:
                low = constraint.low if constraint.low is not None else ""
                high = constraint.high if constraint.high is not None else ""
                parts.append(f"{constraint.attribute}=[{low},{high})")
        query = "&".join(parts)
        return f"/{self.dataset}/{self.table}" + (f"?{query}" if query else "")

    def __repr__(self) -> str:
        return f"RestRequest({self.url()})"


@dataclass(frozen=True)
class RestResponse:
    """The result of one GET call, with its billing already computed."""

    request: RestRequest
    rows: tuple[Row, ...]
    schema: Schema
    transactions: int
    price: float
    #: Simulated wall-clock of this call (the market's latency model);
    #: the executor reads it to compute critical-path fetch time.
    elapsed_ms: float = 0.0

    @property
    def record_count(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"RestResponse({self.request.url()}, {self.record_count} records, "
            f"{self.transactions} trans., ${self.price:g})"
        )


def point(attribute: str, value: Any) -> AttributeConstraint:
    """Shorthand for a point constraint."""
    return AttributeConstraint(attribute, value=value)


def interval(
    attribute: str, low: int | None = None, high: int | None = None
) -> AttributeConstraint:
    """Shorthand for a half-open integer range constraint ``[low, high)``."""
    return AttributeConstraint(attribute, low=low, high=high)
