"""Deterministic fault injection for the simulated market.

A real marketplace endpoint times out, throttles, drops connections, and
occasionally delivers the same response twice — and because every call
costs money (``price = p * ceil(rows / t)``), those failures are a
*billing* concern, not just a latency one.  :class:`FaultPolicy` injects
exactly those failure modes into the transport layer
(:mod:`repro.market.transport`), deterministically:

* every decision is a pure function of ``(seed, call key, attempt)`` via a
  keyed hash, so a chaos run replays bit-identically from the same seed —
  regardless of thread scheduling under the executor's parallel fetch;
* ``max_consecutive_faults`` caps how many attempts in a row one call can
  fail, so a transport configured with at least that many retries is
  *guaranteed* to succeed eventually — which is what lets the chaos suite
  assert exact billing invariance instead of a probabilistic one.

Fault kinds and their money semantics:

=====================  ====================================================
``TIMEOUT``            connection died before the server worked: no charge.
``SERVER_ERROR``       5xx before billing: no charge.
``THROTTLE``           429 with ``Retry-After``: no charge, forced wait.
``DROPPED_RESPONSE``   the server worked and **billed**, the response was
                       lost in transit — the dangerous one: a naive retry
                       double-bills; an idempotency-keyed retry replays the
                       stored response for free.
=====================  ====================================================

Duplicate delivery is decided independently of the failure draw: a
successful call may additionally arrive twice, exercising the receiver's
idempotent-recording path.

Latency composition: the policy only *adds* simulated wall-clock on top of
the market's :class:`~repro.market.latency.LatencyModel` (``timeout_ms``
waiting on a dead call, ``retry_after_ms`` honouring a throttle); the
latency of calls that do reach the server still comes from the market.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.errors import MarketError, TransportError


class FaultKind(enum.Enum):
    """What the injected network did to one attempt of one call."""

    OK = "ok"
    TIMEOUT = "timeout"
    SERVER_ERROR = "server_error"
    THROTTLE = "throttle"
    DROPPED_RESPONSE = "dropped_response"


class InjectedFault(TransportError):
    """One injected transient failure (the transport catches and retries).

    ``kind`` is the :class:`FaultKind`; ``retry_after_ms`` is set for
    throttles (the server's mandated wait); ``billed`` is True when the
    fault struck *after* the server billed the attempt.
    """

    def __init__(
        self,
        kind: FaultKind,
        message: str,
        retry_after_ms: float = 0.0,
        billed: bool = False,
    ):
        super().__init__(message)
        self.kind = kind
        self.retry_after_ms = retry_after_ms
        self.billed = billed


def _unit(seed: int, salt: str, call_key: str, attempt: int) -> float:
    """A deterministic draw in ``[0, 1)`` keyed on the full call identity."""
    payload = f"{seed}|{salt}|{call_key}|{attempt}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultPolicy:
    """A seeded, deterministic description of how the network misbehaves.

    Rates are per-attempt probabilities; the four failure rates must sum to
    at most 1.  ``duplicate_rate`` is drawn independently and only applies
    to attempts that deliver successfully.
    """

    seed: int = 0
    timeout_rate: float = 0.0
    error_rate: float = 0.0
    throttle_rate: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: Simulated wall-clock lost waiting on a call that will never answer.
    timeout_ms: float = 1000.0
    #: The wait a 429 response mandates before the next attempt.
    retry_after_ms: float = 250.0
    #: Hard cap on how many attempts in a row one call can fail (``None``
    #: disables the cap — calls can then fail forever at rate 1.0).  With
    #: the cap, a transport allowing ``max_consecutive_faults`` retries is
    #: guaranteed eventual success: the basis of exact billing-invariance
    #: assertions under chaos.
    max_consecutive_faults: int | None = 3

    def __post_init__(self) -> None:
        rates = {
            "timeout_rate": self.timeout_rate,
            "error_rate": self.error_rate,
            "throttle_rate": self.throttle_rate,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise MarketError(f"{name} must be in [0, 1], got {rate!r}")
        total = (
            self.timeout_rate
            + self.error_rate
            + self.throttle_rate
            + self.drop_rate
        )
        if total > 1.0 + 1e-9:
            raise MarketError(
                f"failure rates sum to {total:g}; must not exceed 1"
            )
        if self.timeout_ms < 0 or self.retry_after_ms < 0:
            raise MarketError("fault wait times cannot be negative")
        if (
            self.max_consecutive_faults is not None
            and self.max_consecutive_faults < 0
        ):
            raise MarketError("max_consecutive_faults cannot be negative")

    @classmethod
    def uniform(cls, seed: int, rate: float, **kwargs) -> "FaultPolicy":
        """Spread one overall failure ``rate`` evenly over the four failure
        kinds, with duplicate delivery at the same per-kind rate."""
        if not 0.0 <= rate <= 1.0:
            raise MarketError(f"fault rate must be in [0, 1], got {rate!r}")
        quarter = rate / 4.0
        return cls(
            seed=seed,
            timeout_rate=quarter,
            error_rate=quarter,
            throttle_rate=quarter,
            drop_rate=quarter,
            duplicate_rate=quarter,
            **kwargs,
        )

    # -- deterministic draws ---------------------------------------------------

    def outcome(self, call_key: str, attempt: int) -> FaultKind:
        """What happens to ``attempt`` (1-based) of the call ``call_key``."""
        if (
            self.max_consecutive_faults is not None
            and attempt > self.max_consecutive_faults
        ):
            return FaultKind.OK
        u = _unit(self.seed, "fault", call_key, attempt)
        threshold = self.timeout_rate
        if u < threshold:
            return FaultKind.TIMEOUT
        threshold += self.error_rate
        if u < threshold:
            return FaultKind.SERVER_ERROR
        threshold += self.throttle_rate
        if u < threshold:
            return FaultKind.THROTTLE
        threshold += self.drop_rate
        if u < threshold:
            return FaultKind.DROPPED_RESPONSE
        return FaultKind.OK

    def duplicated(self, call_key: str, attempt: int) -> bool:
        """Whether a successfully delivered attempt also arrives twice."""
        return (
            _unit(self.seed, "dup", call_key, attempt) < self.duplicate_rate
        )

    def jitter(self, call_key: str, attempt: int) -> float:
        """A deterministic draw in ``[-1, 1]`` for backoff jitter."""
        return 2.0 * _unit(self.seed, "jitter", call_key, attempt) - 1.0

    def fault_for(self, kind: FaultKind, call_key: str) -> InjectedFault:
        """Build the exception the transport sees for a failed attempt."""
        if kind is FaultKind.TIMEOUT:
            return InjectedFault(kind, f"injected timeout on {call_key}")
        if kind is FaultKind.SERVER_ERROR:
            return InjectedFault(
                kind, f"injected 503 Service Unavailable on {call_key}"
            )
        if kind is FaultKind.THROTTLE:
            return InjectedFault(
                kind,
                f"injected 429 Too Many Requests on {call_key} "
                f"(retry after {self.retry_after_ms:g} ms)",
                retry_after_ms=self.retry_after_ms,
            )
        if kind is FaultKind.DROPPED_RESPONSE:
            return InjectedFault(
                kind,
                f"injected response loss on {call_key} (charge already "
                "billed server-side)",
                billed=True,
            )
        raise MarketError(f"{kind} is not a failure kind")
