"""Simulated REST-call latency.

The paper's efficiency discussion (Section 5): "the execution time of a
query is, as usual, dominated by the RESTful calls to the data seller.
Nevertheless, a query can still finish within seconds."  The simulator
models that wall-clock dimension without actually sleeping: each call is
charged a round-trip plus a per-transaction transfer time, accumulated in
the billing ledger, so examples and benches can report how long a plan
*would* take against a real market.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MarketError


@dataclass(frozen=True)
class LatencyModel:
    """A simple affine latency model per REST call."""

    #: Fixed per-call round-trip time (connection + auth + request).
    round_trip_ms: float = 150.0
    #: Transfer time per transaction page of results.
    per_transaction_ms: float = 25.0
    #: When positive, the market actually *sleeps* ``call_ms * scale`` of
    #: real wall-clock per call instead of only accounting it.  ``0``
    #: (the default) keeps everything simulated and instant.  Real sleeps
    #: exist for the concurrent-serving path: thread-level speedup and
    #: singleflight wait coalescing are only measurable when calls block
    #: for real (``benchmarks/bench_concurrency.py``).
    realtime_scale: float = 0.0
    #: Connection establishment cost (TCP + TLS + auth handshake).  The
    #: threaded transport opens a fresh connection per physical call and
    #: pays this every time; the async transport's per-seller pools pay it
    #: once per pooled connection and reuse the connection afterwards
    #: (:mod:`repro.market.aio`).  Charged *client-side* by the transport
    #: driver — it never enters the server's billing ledger, so the two
    #: transports stay ledger-byte-identical.  Default 0 keeps every
    #: existing number and golden unchanged.
    connection_setup_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.round_trip_ms < 0 or self.per_transaction_ms < 0:
            raise MarketError("latency components cannot be negative")
        if self.realtime_scale < 0:
            raise MarketError("realtime_scale cannot be negative")
        if self.connection_setup_ms < 0:
            raise MarketError("connection_setup_ms cannot be negative")

    @property
    def is_instant(self) -> bool:
        """Whether every call is modelled as taking zero wall-clock."""
        return (
            self.round_trip_ms == 0.0
            and self.per_transaction_ms == 0.0
            and self.connection_setup_ms == 0.0
        )

    def call_ms(self, transactions: int) -> float:
        """Simulated wall-clock of one call returning ``transactions`` pages."""
        if transactions < 0:
            raise MarketError("transaction count cannot be negative")
        return self.round_trip_ms + transactions * self.per_transaction_ms


#: Latencies in the spirit of a cross-region HTTPS API circa the paper.
DEFAULT_LATENCY = LatencyModel()

#: A zero-latency model for tests that only care about money.
INSTANT = LatencyModel(round_trip_ms=0.0, per_transaction_ms=0.0)
