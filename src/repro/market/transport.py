"""The money-safe market transport: retries that never double-bill.

Every REST call against the market costs real money, so the transport
between the executor and :class:`~repro.market.server.DataMarket` treats
failure handling as a *billing* problem first and a latency problem second:

* **idempotency keys** — each logical call gets a unique key, reused across
  its retries.  The market bills a key at most once and replays the stored
  response for free afterwards, so a retry after a lost response costs
  nothing (at-most-once billing).  A naive client without keys
  (``idempotency=False``) pays again on every retry — kept as an opt-in
  mode precisely so the chaos suite can demonstrate the difference.
* **exponential backoff with deterministic jitter** — transient faults
  (timeouts, 5xx, 429) are retried with capped exponential waits; a 429's
  ``Retry-After`` is honoured as a floor.  All waits are simulated
  wall-clock, accumulated into the per-call elapsed time the executor
  feeds its makespan accounting — nothing actually sleeps.
* **a per-query retry budget** — one query may not burn unbounded retries;
  exhaustion raises :class:`~repro.errors.MarketUnavailableError`.
* **a per-dataset circuit breaker** — after ``breaker_failure_threshold``
  consecutive failures a dataset's circuit opens and calls fail fast
  (costing nothing) until ``breaker_cooldown_ms`` of simulated time
  passes; then a single half-open probe decides between closing the
  circuit and re-opening it.
* **waste accounting** — when the transport abandons a call whose charge
  went through (a dropped response that never got replayed), it moves the
  charge to the ledger's ``wasted_on_failures`` bucket so the spend series
  the evaluation plots stays honest.

Fault injection itself lives in :mod:`repro.market.faults`; with no fault
policy attached the transport is a single ``market.get`` per call with no
key attached — measurably free (``benchmarks/bench_fault_overhead.py``)
and bit-compatible with code that monkeypatches ``market.get``.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass

from repro.durable.wal import SimulatedCrash
from repro.errors import (
    MarketError,
    MarketUnavailableError,
    RetryExhaustedError,
)
from repro.market.faults import FaultKind, FaultPolicy, InjectedFault
from repro.market.rest import RestRequest, RestResponse
from repro.market.server import DataMarket

#: Distinguishes idempotency keys of transports sharing one market.
_TRANSPORT_IDS = itertools.count()


@dataclass(frozen=True)
class TransportConfig:
    """Every knob of the money-safe transport, in one place.

    Accepted by :class:`~repro.core.payless.PayLess` and
    :class:`~repro.core.context.PlanningContext` instead of a growing pile
    of positional keyword arguments.
    """

    #: Fault injection policy; ``None`` runs fault-free.
    faults: FaultPolicy | None = None
    #: Retries allowed per call beyond the first attempt.
    max_retries: int = 4
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 5000.0
    #: Fractional jitter applied to each backoff wait (deterministic,
    #: drawn from the fault policy's seed).
    jitter: float = 0.1
    #: Total retries one query may spend across all its calls
    #: (``None`` = unlimited).
    retry_budget: int | None = 64
    #: Consecutive failures that open a dataset's circuit.
    breaker_failure_threshold: int = 5
    #: Simulated time an open circuit waits before a half-open probe.
    breaker_cooldown_ms: float = 30_000.0
    #: Executor degradation mode: return the rows that did arrive instead
    #: of raising when some regions could not be bought.
    partial_results: bool = False
    #: Attach idempotency keys (at-most-once billing).  Disabling this
    #: reproduces a naive client whose retries double-bill.
    idempotency: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise MarketError("max_retries cannot be negative")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise MarketError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise MarketError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise MarketError("jitter must be in [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise MarketError("retry_budget cannot be negative")
        if self.breaker_failure_threshold < 1:
            raise MarketError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise MarketError("breaker_cooldown_ms cannot be negative")


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-dataset fail-fast guard (classic closed/open/half-open).

    Thread-safe; driven entirely by the transport's *simulated* clock, so
    tests can walk it through its transitions deterministically.
    """

    def __init__(
        self,
        failure_threshold: int,
        cooldown_ms: float,
        on_transition=None,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ms = 0.0
        self._probe_in_flight = False
        self._lock = threading.Lock()
        #: Optional ``callback(old_state, new_state)`` fired on every state
        #: change (the transport wires it to the metrics registry).
        self._on_transition = on_transition

    @property
    def state(self) -> BreakerState:
        return self._state

    def _set_state(self, new_state: BreakerState) -> None:
        old_state = self._state
        if old_state is new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def allow(self, now_ms: float) -> bool:
        """Whether a call may proceed at simulated time ``now_ms``."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if now_ms - self._opened_at_ms < self.cooldown_ms:
                    return False
                self._set_state(BreakerState.HALF_OPEN)
                self._probe_in_flight = True
                return True
            # HALF_OPEN: exactly one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def on_success(self) -> None:
        with self._lock:
            self._set_state(BreakerState.CLOSED)
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def on_failure(self, now_ms: float) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._set_state(BreakerState.OPEN)
                self._opened_at_ms = now_ms
                self._probe_in_flight = False


class QueryScope:
    """Per-query transport accounting: retries, faults, waste.

    One scope is created per executed query; the executor folds its
    counters into the query's :class:`~repro.core.payless.QueryStats`.
    Thread-safe — parallel remainder calls share one scope.
    """

    def __init__(self, retry_budget: int | None):
        self.retry_budget = retry_budget
        self.retries = 0
        self.faults_injected = 0
        self.replays = 0
        self.failed_calls = 0
        self.wasted_transactions = 0
        self.wasted_price = 0.0
        self.backoff_ms = 0.0
        #: Singleflight accounting (see :mod:`repro.serve.singleflight`):
        #: fetches this query rode for free on another session's in-flight
        #: call, what they would have billed, and the real time waited.
        self.coalesced_fetches = 0
        self.coalesced_savings_transactions = 0
        self.coalesced_savings_price = 0.0
        self.coalesce_wait_ms = 0.0
        #: Remainder boxes found already covered at issue time (another
        #: session recorded them between our rewrite and our fetch).
        self.covered_skips = 0
        self._lock = threading.Lock()

    def consume_retry(self) -> bool:
        """Claim one retry from the query's budget; False when exhausted."""
        with self._lock:
            if (
                self.retry_budget is not None
                and self.retries >= self.retry_budget
            ):
                return False
            self.retries += 1
            return True

    def note_fault(self) -> None:
        with self._lock:
            self.faults_injected += 1

    def note_replay(self) -> None:
        with self._lock:
            self.replays += 1

    def note_failed_call(self) -> None:
        with self._lock:
            self.failed_calls += 1

    def note_backoff(self, wait_ms: float) -> None:
        with self._lock:
            self.backoff_ms += wait_ms

    def note_waste(self, transactions: int, price: float) -> None:
        with self._lock:
            self.wasted_transactions += transactions
            self.wasted_price += price

    def note_coalesced(
        self, transactions: int, price: float, wait_ms: float
    ) -> None:
        with self._lock:
            self.coalesced_fetches += 1
            self.coalesced_savings_transactions += transactions
            self.coalesced_savings_price += price
            self.coalesce_wait_ms += wait_ms

    def note_covered_skip(self) -> None:
        with self._lock:
            self.covered_skips += 1


@dataclass(frozen=True)
class FetchResult:
    """One logical call's outcome: the response plus what getting it took."""

    response: RestResponse
    #: Attempts made (1 = first try succeeded).
    attempts: int
    #: Client-side simulated wall-clock: latencies of every attempt plus
    #: all backoff waits.  The executor's makespan accounting uses this,
    #: not the server-side ``response.elapsed_ms``.
    elapsed_ms: float
    #: Whether the delivered response came from an idempotency replay
    #: (i.e. an earlier attempt was billed and this retry was free).
    replayed: bool = False
    #: Everything this logical call caused the market to bill, across all
    #: its attempts and duplicate deliveries.  With idempotency keys this
    #: equals the response's own billing; a naive client's retries can
    #: bill more.  Traces attribute every ledger dollar through these.
    billed_transactions: int = 0
    billed_price: float = 0.0
    #: True when this result was shared from another session's in-flight
    #: fetch of the same key (singleflight): nothing was billed to this
    #: caller, and ``saved_*`` record the avoided bill.
    coalesced: bool = False
    saved_transactions: int = 0
    saved_price: float = 0.0
    #: The idempotency key this call billed under (``None`` without keys).
    #: With a durability backend attached, this is the WAL intent key the
    #: executor's purchase record resolves.
    idempotency_key: str | None = None

    @property
    def retries(self) -> int:
        return self.attempts - 1


class MarketTransport:
    """Issues market calls with retries, at-most-once billing, breakers.

    One transport lives on the :class:`~repro.core.context.PlanningContext`
    for the installation's lifetime (circuit breakers must remember
    failures across queries); per-query budgets live in the
    :class:`QueryScope` the executor opens per query.

    ``faults`` is deliberately a plain mutable attribute: chaos tests (and
    operators of long-lived simulations) flip injection on and off without
    rebuilding the installation.
    """

    def __init__(
        self,
        market: DataMarket,
        config: TransportConfig | None = None,
        metrics=None,
    ):
        self.market = market
        self.config = config or TransportConfig()
        self.faults: FaultPolicy | None = self.config.faults
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: circuit-breaker state changes are counted into it.
        self.metrics = metrics
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        #: Simulated monotonic clock (ms) advanced by call latencies and
        #: backoff waits; drives circuit-breaker cooldowns.  Fail-fast
        #: refusals add nothing, so tests walking a breaker through
        #: half-open advance the clock explicitly via :meth:`advance_clock`.
        self._clock_ms = 0.0
        self._clock_lock = threading.Lock()
        #: Per-URL logical-call sequence numbers.  Keys derived from them
        #: are deterministic per logical call regardless of thread
        #: scheduling (remainder URLs within one parallel batch are
        #: distinct), which is what makes chaos runs replayable.
        self._url_sequence: dict[str, int] = {}
        self._sequence_lock = threading.Lock()
        self._transport_id = next(_TRANSPORT_IDS)
        #: Optional :class:`~repro.durable.backend.DurableStateBackend`.
        #: When set, every billable call journals a durable intent first
        #: and uses the intent's idempotency key, so a crash between
        #: billing and acknowledgment is recoverable (wired by PayLess).
        self.durability = None

    # -- clock & breakers ------------------------------------------------------

    def now_ms(self) -> float:
        with self._clock_lock:
            return self._clock_ms

    def advance_clock(self, ms: float) -> None:
        """Advance simulated time (negative advances are rejected)."""
        if ms < 0:
            raise MarketError("the transport clock only moves forward")
        with self._clock_lock:
            self._clock_ms += ms

    def breaker_for(self, dataset: str) -> CircuitBreaker:
        key = dataset.lower()
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.config.breaker_failure_threshold,
                    self.config.breaker_cooldown_ms,
                    on_transition=self._note_breaker_transition,
                )
                self._breakers[key] = breaker
            return breaker

    def _note_breaker_transition(
        self, old_state: BreakerState, new_state: BreakerState
    ) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        metrics.counter("breaker_transitions").inc()
        if new_state is BreakerState.OPEN:
            metrics.counter("breaker_opens").inc()

    def new_scope(self) -> QueryScope:
        return QueryScope(self.config.retry_budget)

    # -- the call path ---------------------------------------------------------

    def _call_key(self, request: RestRequest) -> str:
        url = request.url()
        with self._sequence_lock:
            sequence = self._url_sequence.get(url, 0)
            self._url_sequence[url] = sequence + 1
        return f"{url}#{sequence}"

    def _backoff_ms(
        self, call_key: str, attempt: int, fault: InjectedFault
    ) -> float:
        config = self.config
        wait = min(
            config.backoff_base_ms
            * config.backoff_multiplier ** (attempt - 1),
            config.backoff_max_ms,
        )
        if self.faults is not None and config.jitter:
            wait *= 1.0 + config.jitter * self.faults.jitter(call_key, attempt)
        if fault.retry_after_ms:
            wait = max(wait, fault.retry_after_ms)
        return wait

    def fetch(
        self, request: RestRequest, scope: QueryScope | None = None
    ) -> FetchResult:
        """Issue one logical call, retrying transient faults money-safely.

        Raises :class:`~repro.errors.RetryExhaustedError` when the call
        kept failing, :class:`~repro.errors.MarketUnavailableError` when
        the dataset's circuit is open or the query's retry budget ran out.
        Real :class:`~repro.errors.MarketError` rejections (bad binding,
        unknown table) propagate immediately — retrying them wastes money.
        """
        if scope is None:
            scope = self.new_scope()
        if self.faults is None and self.durability is None:
            # Fast path: no injection, one attempt, no key.  Keeps the
            # fault-free overhead at one attribute check and stays
            # compatible with tests that monkeypatch ``market.get``.
            # The simulated clock is not advanced: it exists only to time
            # breaker cooldowns, and breakers never trip without faults.
            latency = self.market.latency
            setup_ms = latency.connection_setup_ms
            if setup_ms and latency.realtime_scale:
                time.sleep(setup_ms * latency.realtime_scale / 1000.0)
            response = self.market.get(request)
            return FetchResult(
                response=response,
                attempts=1,
                elapsed_ms=response.elapsed_ms + setup_ms,
                billed_transactions=response.transactions,
                billed_price=response.price,
            )
        return self._drive(request, self._fetch_machine(request, scope))

    def _drive(self, request: RestRequest, machine) -> FetchResult:
        """Drive the sans-IO fetch machine with blocking calls.

        This is the *threaded* transport driver: every physical call opens
        a fresh connection (paying ``connection_setup_ms`` each time) and
        the market's realtime sleep blocks the calling thread.  The async
        driver in :mod:`repro.market.aio` replays the exact same machine
        against pooled connections and cooperative sleeps.
        """
        latency = self.market.latency
        setup_ms = latency.connection_setup_ms
        scale = latency.realtime_scale
        try:
            effect = machine.send(None)
            while True:
                __, key, __expect_replay = effect
                try:
                    if setup_ms and scale:
                        time.sleep(setup_ms * scale / 1000.0)
                    if key is not None:
                        response = self.market.get(
                            request, idempotency_key=key
                        )
                    else:
                        response = self.market.get(request)
                except BaseException as error:
                    effect = machine.throw(error)
                else:
                    effect = machine.send((response, setup_ms))
        except StopIteration as stop:
            return stop.value

    def _fetch_machine(self, request: RestRequest, scope: QueryScope):
        """The transport's entire billing/retry logic as a sans-IO generator.

        Yields ``("call", idempotency_key_or_None, expect_replay)`` each
        time a physical ``market.get`` must happen; the driver performs it
        and replies ``machine.send((response, connect_ms))`` — where
        ``connect_ms`` is the connection-setup latency this particular
        physical call paid (a fresh handshake, or ``0.0`` when a pooled
        connection was reused) — or ``machine.throw(error)`` with whatever
        the call raised.  The :class:`FetchResult` comes back as the
        generator's return value (``StopIteration.value``).

        ``expect_replay`` tells the driver, *before* the call, whether the
        server will answer from its idempotency cache (an earlier attempt
        already billed this key): replays are instant, so a realtime
        driver must not sleep for them.  Because both transports replay
        this one machine, retries, idempotency keys, fault draws, waste
        accounting, and durable-intent resolution cannot diverge between
        them.
        """
        faults = self.faults
        durability = self.durability
        if faults is None:
            if durability is None:
                response, connect_ms = yield ("call", None, False)
                return FetchResult(
                    response=response,
                    attempts=1,
                    elapsed_ms=response.elapsed_ms + connect_ms,
                    billed_transactions=response.transactions,
                    billed_price=response.price,
                )
            key = durability.begin_intent(request)
            try:
                response, connect_ms = yield ("call", key, False)
            except SimulatedCrash:
                raise
            except BaseException:
                # The market rejected the call without billing (bad
                # binding, unknown table): resolve the intent so recovery
                # does not buy what this run never did.
                durability.log_abort(key)
                raise
            return FetchResult(
                response=response,
                attempts=1,
                elapsed_ms=response.elapsed_ms + connect_ms,
                billed_transactions=response.transactions,
                billed_price=response.price,
                idempotency_key=key,
            )
        config = self.config
        breaker = self.breaker_for(request.dataset)
        call_key = self._call_key(request)
        if durability is not None:
            # The durable intent key replaces the transport-local key: it
            # must be the same key recovery re-issues under after a crash.
            # Fault outcomes stay keyed by ``call_key``, so chaos runs are
            # deterministic regardless of the key scheme.
            key = durability.begin_intent(request)
        elif config.idempotency:
            key = f"t{self._transport_id}:{call_key}"
        else:
            key = None
        latency = self.market.latency
        attempts = 0
        elapsed_ms = 0.0
        billed: RestResponse | None = None
        #: Everything this logical call has caused the market to bill so
        #: far (all attempts + duplicate deliveries) — the trace layer
        #: attributes every ledger dollar to exactly one call through it.
        billed_transactions = 0
        billed_price = 0.0

        def fail(error: Exception) -> Exception:
            wasted_transactions = 0
            wasted_price = 0.0
            if billed is not None and key is not None:
                self.market.ledger.mark_wasted(key)
                scope.note_waste(billed.transactions, billed.price)
                wasted_transactions = billed.transactions
                wasted_price = billed.price
            scope.note_failed_call()
            if durability is not None and key is not None:
                if billed is not None:
                    # Money left the account but the data never arrived:
                    # resolve the intent into the wasted bucket.
                    durability.log_wasted(
                        key, billed.transactions, billed.price
                    )
                else:
                    # Never billed: resolve the intent so recovery does
                    # not spend money this run never spent.
                    durability.log_abort(key)
            # Simulated wall-clock burned before giving up: the executor's
            # makespan accounting charges failed calls honestly too.
            error.elapsed_ms = elapsed_ms
            # Billing attribution for the fetch span of this failed call.
            error.billed_transactions = billed_transactions
            error.billed_price = billed_price
            error.wasted_transactions = wasted_transactions
            error.wasted_price = wasted_price
            return error

        try:
            while True:
                if not breaker.allow(self.now_ms()):
                    raise fail(
                        MarketUnavailableError(
                            f"circuit open for dataset {request.dataset!r}; "
                            f"{request!r} refused without contacting the "
                            f"market"
                        )
                    )
                attempts += 1
                kind = faults.outcome(call_key, attempts)
                try:
                    if kind in (FaultKind.OK, FaultKind.DROPPED_RESPONSE):
                        # The request reaches the server: it executes and
                        # bills (or replays a previously billed key for
                        # free).
                        replayed = key is not None and billed is not None
                        response, connect_ms = yield ("call", key, replayed)
                        if replayed:
                            scope.note_replay()
                        else:
                            billed_transactions += response.transactions
                            billed_price += response.price
                        attempt_ms = (
                            latency.call_ms(0)
                            if replayed
                            else response.elapsed_ms
                        ) + connect_ms
                        if kind is FaultKind.DROPPED_RESPONSE:
                            if key is not None:
                                billed = billed if replayed else response
                            # The handshake succeeded (the request reached
                            # the server) but the answer never came back:
                            # the client burned setup + its timeout.
                            wait = faults.timeout_ms + connect_ms
                            elapsed_ms += wait
                            self.advance_clock(wait)
                            raise faults.fault_for(kind, call_key)
                        elapsed_ms += attempt_ms
                        self.advance_clock(attempt_ms)
                        if faults.duplicated(call_key, attempts):
                            # The network delivered the request twice.
                            # With a key the second execution replays for
                            # free; the naive client pays all over again.
                            if key is not None:
                                __, dup_connect = yield ("call", key, True)
                                scope.note_replay()
                            else:
                                duplicate, dup_connect = yield (
                                    "call", None, False
                                )
                                billed_transactions += duplicate.transactions
                                billed_price += duplicate.price
                            dup_ms = latency.call_ms(0) + dup_connect
                            elapsed_ms += dup_ms
                            self.advance_clock(dup_ms)
                        breaker.on_success()
                        return FetchResult(
                            response=response,
                            attempts=attempts,
                            elapsed_ms=elapsed_ms,
                            replayed=replayed,
                            billed_transactions=billed_transactions,
                            billed_price=billed_price,
                            idempotency_key=key,
                        )
                    # Pure transport failures: the server never billed.
                    if kind is FaultKind.TIMEOUT:
                        wait = faults.timeout_ms
                    else:  # SERVER_ERROR / THROTTLE answer after one trip
                        wait = latency.call_ms(0)
                    elapsed_ms += wait
                    self.advance_clock(wait)
                    raise faults.fault_for(kind, call_key)
                except InjectedFault as fault:
                    scope.note_fault()
                    breaker.on_failure(self.now_ms())
                    if attempts > config.max_retries:
                        raise fail(
                            RetryExhaustedError(
                                f"{request!r} failed {attempts} attempts "
                                f"(last: {fault})",
                                attempts=attempts,
                                last_fault=fault,
                            )
                        ) from fault
                    if not scope.consume_retry():
                        raise fail(
                            MarketUnavailableError(
                                f"per-query retry budget "
                                f"({scope.retry_budget}) exhausted at "
                                f"{request!r}"
                            )
                        ) from fault
                    backoff = self._backoff_ms(call_key, attempts, fault)
                    scope.note_backoff(backoff)
                    elapsed_ms += backoff
                    self.advance_clock(backoff)
        except SimulatedCrash:
            # A simulated kill never resolves intents — that is the point.
            raise
        except BaseException:
            # Anything ``fail()`` did not already resolve (market
            # rejections escape the loop directly); a no-op when the
            # intent was resolved on the way out.
            if durability is not None and key is not None:
                durability.log_abort(key)
            raise

    def __repr__(self) -> str:
        mode = "faulty" if self.faults is not None else "clean"
        return (
            f"MarketTransport({mode}, max_retries={self.config.max_retries}, "
            f"clock={self.now_ms():g}ms)"
        )
