"""Binding patterns — the access-pattern notation of the paper (Section 1).

``R^α(A1, A2, A3)`` with ``α = R(A1^b, A2^f)`` means: any REST call against
``R`` *must* constrain ``A1`` (bound), *may* constrain ``A2`` (free), and can
never constrain ``A3`` (output-only).  Numeric bound/free attributes accept a
single value or a range; categorical ones accept a single value only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import BindingError, SchemaError
from repro.relational.schema import Schema


class AccessMode(enum.Enum):
    """How one attribute may appear in a REST call."""

    BOUND = "bound"    #: must be given a value/range in every call
    FREE = "free"      #: may be given a value/range
    OUTPUT = "output"  #: may never be constrained; result-only


@dataclass(frozen=True)
class BindingPattern:
    """The access pattern of one data-market table."""

    table: str
    modes: Mapping[str, AccessMode]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "modes",
            {name.lower(): mode for name, mode in self.modes.items()},
        )

    def mode_of(self, attribute: str) -> AccessMode:
        """Access mode of ``attribute``; unlisted attributes are OUTPUT."""
        return self.modes.get(attribute.lower(), AccessMode.OUTPUT)

    @property
    def bound_attributes(self) -> list[str]:
        return [a for a, m in self.modes.items() if m is AccessMode.BOUND]

    @property
    def free_attributes(self) -> list[str]:
        return [a for a, m in self.modes.items() if m is AccessMode.FREE]

    @property
    def constrainable_attributes(self) -> list[str]:
        """Attributes a call may constrain (bound + free)."""
        return [
            a for a, m in self.modes.items() if m is not AccessMode.OUTPUT
        ]

    @property
    def downloadable(self) -> bool:
        """Whether the whole table can be fetched with one unconstrained call.

        True exactly when there is no BOUND attribute (the paper: "if an
        access pattern of a table has only free attributes, then we can
        download the whole table").
        """
        return not self.bound_attributes

    def validate_constrained(self, constrained: Iterable[str]) -> None:
        """Check a call's constrained-attribute set against this pattern."""
        constrained_lower = {name.lower() for name in constrained}
        for attribute in self.bound_attributes:
            if attribute not in constrained_lower:
                raise BindingError(
                    f"{self.table}: bound attribute {attribute!r} must be "
                    "given a value in every call"
                )
        for name in constrained_lower:
            if self.mode_of(name) is AccessMode.OUTPUT:
                raise BindingError(
                    f"{self.table}: attribute {name!r} is output-only and "
                    "cannot be constrained"
                )

    def validate_against_schema(self, schema: Schema) -> None:
        """Every attribute named in the pattern must exist in the schema."""
        for name in self.modes:
            if name not in schema:
                raise SchemaError(
                    f"binding pattern of {self.table!r} names unknown "
                    f"attribute {name!r}"
                )

    @classmethod
    def parse(cls, table: str, spec: str) -> "BindingPattern":
        """Parse the paper's compact notation, e.g. ``"Countryf, StationIDb"``.

        Each comma-separated item is an attribute name followed by a one-
        letter mode suffix: ``b`` (bound), ``f`` (free), ``o`` (output).
        """
        modes: dict[str, AccessMode] = {}
        for item in spec.split(","):
            item = item.strip()
            if len(item) < 2:
                raise SchemaError(f"malformed binding item {item!r}")
            name, suffix = item[:-1], item[-1].lower()
            try:
                mode = {
                    "b": AccessMode.BOUND,
                    "f": AccessMode.FREE,
                    "o": AccessMode.OUTPUT,
                }[suffix]
            except KeyError:
                raise SchemaError(
                    f"binding item {item!r} must end with b, f, or o"
                ) from None
            modes[name] = mode
        return cls(table=table, modes=modes)

    @classmethod
    def all_free(cls, table: str, attributes: Iterable[str]) -> "BindingPattern":
        """A pattern where every listed attribute is free (downloadable)."""
        return cls(table=table, modes={a: AccessMode.FREE for a in attributes})
