"""Exception hierarchy for the PayLess reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
subclasses keep the failure domains (SQL frontend, market access, planning,
execution) distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared attribute type."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlAnalysisError(SqlError):
    """The SQL parsed but references unknown tables/columns or is unsupported."""


class BindingError(ReproError):
    """A REST call violates the table's binding pattern."""


class MarketError(ReproError):
    """A data-market request is invalid (unknown dataset/table, bad constraint)."""


class PlanningError(ReproError):
    """The optimizer could not produce a feasible plan for a query."""


class ExecutionError(ReproError):
    """A plan failed during execution."""


class StatisticsError(ReproError):
    """A statistics structure was fed inconsistent or out-of-domain feedback."""
