"""Exception hierarchy for the PayLess reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
subclasses keep the failure domains (SQL frontend, market access, planning,
execution) distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared attribute type."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlAnalysisError(SqlError):
    """The SQL parsed but references unknown tables/columns or is unsupported."""


class BindingError(ReproError):
    """A REST call violates the table's binding pattern."""


class MarketError(ReproError):
    """A data-market request is invalid (unknown dataset/table, bad constraint)."""


class TransportError(MarketError):
    """A market call failed in transit (timeout, 5xx, throttle, lost response).

    Transport errors are *transient*: the request itself was well-formed and
    the money-safe transport (:mod:`repro.market.transport`) may retry it.
    Contrast with plain :class:`MarketError`, which marks a request the
    market would reject every time and must never be retried.
    """

    #: Simulated wall-clock burned on the call before it failed terminally
    #: (set by the transport when it gives up on a call).
    elapsed_ms: float = 0.0
    #: Billing attribution for the failed call (set by the transport):
    #: what the call caused the market to bill before it was abandoned,
    #: and how much of that was reclassified as wasted.  Traces read these
    #: so every ledger dollar stays attributable to exactly one call.
    billed_transactions: int = 0
    billed_price: float = 0.0
    wasted_transactions: int = 0
    wasted_price: float = 0.0


class RetryExhaustedError(TransportError):
    """A market call kept failing after every allowed retry.

    ``attempts`` is how many times the call was tried; ``last_fault`` is the
    final transient failure.  Any charge billed for an attempt whose
    response never arrived has been moved to the ledger's
    ``wasted_on_failures`` bucket by the time this is raised.
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_fault: Exception | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_fault = last_fault


class MarketUnavailableError(TransportError):
    """The market cannot be (or should not be) reached right now.

    Raised when a dataset's circuit breaker is open, when the per-query
    retry budget is exhausted, or by the executor when a plan could not buy
    every region it needed and ``partial_results`` is off.  ``failed``
    carries the per-call failures when the executor aggregates several.
    """

    def __init__(self, message: str, failed: tuple = ()):
        super().__init__(message)
        self.failed = failed


class AdmissionError(ReproError):
    """The serving front-end refused a query (queue full, scheduler closed).

    Raised by :class:`~repro.serve.scheduler.QueryScheduler` when the
    bounded pending queue stayed full past the admission timeout, or when
    a query is submitted to a closed scheduler.  Backpressure, not a bug:
    the caller should slow down or retry later.
    """


class PlanningError(ReproError):
    """The optimizer could not produce a feasible plan for a query."""


class InfeasibleObjectiveError(PlanningError):
    """No plan on the money-latency Pareto frontier satisfies the objective.

    Raised when a bounded objective (``dollars_under_latency_ms`` /
    ``latency_under_dollars``) is stricter than every enumerated complete
    plan — there is deliberately no silent fallback to the unbounded
    optimum.  ``frontier`` carries the enumerated ``(dollars, latency_ms)``
    Pareto points so callers can report how far off the bound was, and
    ``objective`` the :class:`~repro.core.objectives.PlanObjective` that
    could not be met.
    """

    def __init__(
        self,
        message: str,
        objective=None,
        frontier: tuple = (),
    ):
        super().__init__(message)
        self.objective = objective
        self.frontier = tuple(frontier)


class ExecutionError(ReproError):
    """A plan failed during execution."""


class StatisticsError(ReproError):
    """A statistics structure was fed inconsistent or out-of-domain feedback."""
