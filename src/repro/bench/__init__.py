"""Benchmark harness: session runner, figure drivers, text reporting."""

from repro.bench.figures import (
    DEFAULT_PROFILE,
    FIG10_SYSTEMS,
    WORKLOADS,
    BenchProfile,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    make_instances,
    make_workload,
)
from repro.bench.harness import (
    SYSTEMS,
    SessionResult,
    build_system,
    download_all_bound,
    run_session,
)
from repro.bench.reporting import checkpoints, series_table, summary_table

__all__ = [
    "BenchProfile",
    "DEFAULT_PROFILE",
    "FIG10_SYSTEMS",
    "SYSTEMS",
    "SessionResult",
    "WORKLOADS",
    "build_system",
    "checkpoints",
    "download_all_bound",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "make_instances",
    "make_workload",
    "run_session",
    "series_table",
    "summary_table",
]
