"""Per-figure experiment drivers (Figures 10-15 of the paper).

Each driver regenerates the data behind one figure and returns the plotted
series; the ``benchmarks/`` suite wraps them with pytest-benchmark and
prints the tables.  Scales default far below the paper's (so the whole
suite runs in minutes on a laptop); the shapes — who wins, by what factor,
where the curves flatten — are what the reproduction validates.  Crank the
:class:`BenchProfile` to approach paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.bench.harness import SessionResult, download_all_bound, run_session
from repro.errors import ReproError
from repro.workloads.tpch import (
    TpchConfig,
    TpchInstanceGenerator,
    generate_tpch_workload,
)
from repro.workloads.weather import (
    WeatherConfig,
    WeatherInstanceGenerator,
    generate_weather_workload,
)

WORKLOADS = ("real", "tpch", "tpch_skew")

#: The four systems of Figure 10, in the paper's legend order.
FIG10_SYSTEMS = ("payless", "payless_nosqr", "min_calls", "download_all")


@dataclass(frozen=True)
class BenchProfile:
    """How big to run the experiments.

    The paper uses q=200 (real) and q=10 (TPC-H) over 1 GB data; the
    defaults here replay the same protocol at laptop-in-minutes scale.
    """

    #: Query instances per template (the paper's ``q``).
    weather_q: int = 12
    tpch_q: int = 2
    #: Data sizes.
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    tpch_scale: float = 1.0
    #: Page size ``t`` (transactions hold this many tuples).
    tuples_per_transaction: int = 100
    instance_seed: int = 101


DEFAULT_PROFILE = BenchProfile()


def make_workload(
    name: str,
    profile: BenchProfile = DEFAULT_PROFILE,
    tuples_per_transaction: int | None = None,
    scale: float | None = None,
):
    """Generate the data for one of the three evaluation workloads."""
    t = tuples_per_transaction or profile.tuples_per_transaction
    if name == "real":
        return generate_weather_workload(
            replace(profile.weather, tuples_per_transaction=t)
        )
    if name == "tpch":
        return generate_tpch_workload(
            TpchConfig(
                scale=scale or profile.tpch_scale,
                zipf=None,
                tuples_per_transaction=t,
            )
        )
    if name == "tpch_skew":
        return generate_tpch_workload(
            TpchConfig(
                scale=scale or profile.tpch_scale,
                zipf=1.0,
                tuples_per_transaction=t,
            )
        )
    raise ReproError(f"unknown workload {name!r}; pick one of {WORKLOADS}")


def make_instances(
    name: str,
    data,
    q: int,
    profile: BenchProfile = DEFAULT_PROFILE,
):
    """``q`` valid instances per template, shuffled (the paper's protocol)."""
    if name == "real":
        generator = WeatherInstanceGenerator(data, seed=profile.instance_seed)
    else:
        generator = TpchInstanceGenerator(data, seed=profile.instance_seed)
    return generator.session(q)


def default_q(name: str, profile: BenchProfile = DEFAULT_PROFILE) -> int:
    return profile.weather_q if name == "real" else profile.tpch_q


# --------------------------------------------------------------- Figure 10


def figure10(
    workload: str,
    profile: BenchProfile = DEFAULT_PROFILE,
    systems: Sequence[str] = FIG10_SYSTEMS,
) -> dict[str, SessionResult]:
    """Overall effectiveness: cumulative transactions for the four systems."""
    data = make_workload(workload, profile)
    instances = make_instances(workload, data, default_q(workload, profile), profile)
    return {
        system: run_session(system, data, instances) for system in systems
    }


# --------------------------------------------------------------- Figure 11


def figure11(
    workload: str,
    t_values: Sequence[int] = (50, 100, 500),
    profile: BenchProfile = DEFAULT_PROFILE,
) -> dict[str, SessionResult | int]:
    """Varying the page size t: PayLess vs the Download-All bound."""
    results: dict[str, SessionResult | int] = {}
    for t in t_values:
        data = make_workload(workload, profile, tuples_per_transaction=t)
        instances = make_instances(
            workload, data, default_q(workload, profile), profile
        )
        results[f"payless_t{t}"] = run_session("payless", data, instances)
        results[f"download_all_t{t}"] = download_all_bound(data)
    return results


# --------------------------------------------------------------- Figure 12


def figure12(
    workload: str,
    q_values: Sequence[int],
    profile: BenchProfile = DEFAULT_PROFILE,
) -> dict[str, SessionResult | int]:
    """Varying q, the number of instances per template."""
    results: dict[str, SessionResult | int] = {}
    data = make_workload(workload, profile)
    for q in q_values:
        instances = make_instances(workload, data, q, profile)
        results[f"payless_q{q}"] = run_session("payless", data, instances)
    results["download_all"] = download_all_bound(data)
    return results


# --------------------------------------------------------------- Figure 13


def figure13(
    workload: str,
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    profile: BenchProfile = DEFAULT_PROFILE,
) -> dict[str, SessionResult | int]:
    """Varying the data size D (TPC-H workloads only in the paper)."""
    results: dict[str, SessionResult | int] = {}
    for scale in scales:
        data = make_workload(workload, profile, scale=scale)
        instances = make_instances(
            workload, data, default_q(workload, profile), profile
        )
        results[f"payless_D{scale:g}"] = run_session("payless", data, instances)
        results[f"download_all_D{scale:g}"] = download_all_bound(data)
    return results


# --------------------------------------------------------------- Figure 14


def figure14(
    workload: str,
    q_values: Sequence[int],
    profile: BenchProfile = DEFAULT_PROFILE,
) -> dict[str, dict[int, float]]:
    """Average evaluated (sub)plans: PayLess vs Disable SQR vs Disable All."""
    arms = {
        "PayLess": "payless",
        "Disable SQR": "payless_nosqr",
        "Disable All": "payless_disable_all",
    }
    data = make_workload(workload, profile)
    results: dict[str, dict[int, float]] = {label: {} for label in arms}
    for q in q_values:
        instances = make_instances(workload, data, q, profile)
        for label, system in arms.items():
            session = run_session(system, data, instances)
            results[label][q] = session.average_evaluated_plans
    return results


# --------------------------------------------------------------- Figure 15


def figure15(
    workload: str,
    q_values: Sequence[int],
    profile: BenchProfile = DEFAULT_PROFILE,
) -> dict[str, dict[int, float]]:
    """Average bounding boxes generated, with vs without pruning.

    One PayLess run yields both series: Algorithm 1 instruments the raw
    enumeration (No Pruning) and the post-pruning count (PayLess).
    """
    data = make_workload(workload, profile)
    results: dict[str, dict[int, float]] = {"PayLess": {}, "No Pruning": {}}
    for q in q_values:
        instances = make_instances(workload, data, q, profile)
        session = run_session("payless", data, instances)
        results["PayLess"][q] = session.average_boxes(pruned=True)
        results["No Pruning"][q] = session.average_boxes(pruned=False)
    return results
