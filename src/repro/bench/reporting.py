"""Plain-text reporting: the same rows/series the paper's figures plot."""

from __future__ import annotations

from typing import Mapping, Sequence


def checkpoints(length: int, count: int = 10) -> list[int]:
    """``count`` evenly spaced 1-based positions through a series."""
    if length <= 0:
        return []
    count = min(count, length)
    step = length / count
    positions = sorted({max(int(round(step * (i + 1))), 1) for i in range(count)})
    if positions[-1] != length:
        positions.append(length)
    return positions


def series_table(
    title: str,
    series: Mapping[str, Sequence[float]],
    x_label: str = "query #",
    points: int = 10,
) -> str:
    """Render several same-length series as an aligned checkpoint table."""
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    length = lengths.pop()
    marks = checkpoints(length, points)

    header = [x_label] + list(series)
    rows = [
        [str(mark)] + [_format(series[name][mark - 1]) for name in series]
        for mark in marks
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [title, ""]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def summary_table(
    title: str,
    rows: Sequence[Sequence[object]],
    header: Sequence[str],
) -> str:
    """Render a small summary table (for the Figure 14/15 style bar data)."""
    text_rows = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in text_rows))
        for i in range(len(header))
    ]
    lines = [title, ""]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
