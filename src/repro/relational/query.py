"""The analyzed logical query — the IR shared by the optimizer and engine.

The SQL analyzer lowers a parsed statement into a :class:`LogicalQuery`:
a flat select-project-join-aggregate block.  The same IR drives both the
local evaluation engine (:mod:`repro.relational.engine`) and PayLess's
money-based optimizer (:mod:`repro.core.optimizer`).

Per-table selection predicates are additionally *normalized* into
:class:`AttributeConstraint` values (point constraints on any type, integer
ranges on discrete numeric attributes).  Normalized constraints are what can
be pushed into data-market REST calls; anything that cannot be normalized
(e.g. float ranges, inequalities with ``!=``) stays as a residual predicate
and is applied locally after retrieval — a sound (never lossy) fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import SqlAnalysisError
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    conjunction,
)
from repro.relational.operators import Aggregate
from repro.relational.types import AttributeType

#: Sentinel bound meaning "unbounded" in integer range constraints.
UNBOUNDED = None


@dataclass(frozen=True)
class AttributeConstraint:
    """A normalized constraint on one attribute of one table.

    Exactly one of:

    * a *point* (``value is not None``) — equality with a constant;
    * a half-open integer range ``[low, high)`` — from <, <=, >, >=, BETWEEN
      predicates on INT/DATE attributes (inclusive upper bounds are stored
      as ``high = bound + 1``);
    * a *point set* (``values is not None``) — from ``IN`` lists or
      ``a = x OR a = y`` disjunctions; a data-market call cannot express a
      set directly, so plans decompose it into one call per value exactly
      like the paper's ``Country = 'Canada' OR Country = 'Germany'`` example.
    """

    attribute: str
    value: Any = None
    low: int | None = None
    high: int | None = None
    values: frozenset[Any] | None = None

    def __post_init__(self) -> None:
        flavours = sum(
            (
                self.value is not None,
                self.low is not None or self.high is not None,
                self.values is not None,
            )
        )
        if flavours != 1:
            raise SqlAnalysisError(
                f"constraint on {self.attribute!r} must be exactly one of "
                "point / range / point-set"
            )
        if self.values is not None and not self.values:
            raise SqlAnalysisError(f"empty point set on {self.attribute!r}")
        if (
            self.low is not None
            and self.high is not None
            and self.low >= self.high
        ):
            raise SqlAnalysisError(
                f"empty range [{self.low}, {self.high}) on {self.attribute!r}"
            )

    @property
    def is_point(self) -> bool:
        return self.value is not None

    @property
    def is_set(self) -> bool:
        return self.values is not None

    @property
    def is_range(self) -> bool:
        return not self.is_point and not self.is_set

    def matches(self, value: Any) -> bool:
        """Whether a concrete value satisfies this constraint."""
        if self.is_point:
            return value == self.value
        if self.is_set:
            return value in self.values
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value >= self.high:
            return False
        return True

    def to_expression(self, table: str | None) -> Expression:
        """An equivalent boolean :class:`Expression` (for local filtering)."""
        ref = ColumnRef(table, self.attribute)
        if self.is_point:
            return Comparison("=", ref, Literal(self.value))
        if self.is_set:
            from repro.relational.expressions import InList

            return InList(ref, self.values)
        parts: list[Expression] = []
        if self.low is not None:
            parts.append(Comparison(">=", ref, Literal(self.low)))
        if self.high is not None:
            parts.append(Comparison("<", ref, Literal(self.high)))
        return conjunction(parts)


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left = right`` between two table columns."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.table is None or self.right.table is None:
            raise SqlAnalysisError("join predicates must be fully qualified")

    def tables(self) -> tuple[str, str]:
        return (self.left.table, self.right.table)

    def side_for(self, table: str) -> ColumnRef:
        """The column reference belonging to ``table``."""
        if self.left.table.lower() == table.lower():
            return self.left
        if self.right.table.lower() == table.lower():
            return self.right
        raise SqlAnalysisError(f"join predicate does not involve {table!r}")

    def other_side(self, table: str) -> ColumnRef:
        """The column reference belonging to the *other* table."""
        if self.left.table.lower() == table.lower():
            return self.right
        if self.right.table.lower() == table.lower():
            return self.left
        raise SqlAnalysisError(f"join predicate does not involve {table!r}")

    def involves(self, table: str) -> bool:
        lowered = table.lower()
        return (
            self.left.table.lower() == lowered
            or self.right.table.lower() == lowered
        )


@dataclass(frozen=True)
class OutputColumn:
    """One item of the SELECT list: a plain column or an aggregate."""

    column: ColumnRef | None = None
    aggregate: Aggregate | None = None

    def __post_init__(self) -> None:
        if (self.column is None) == (self.aggregate is None):
            raise SqlAnalysisError("output column is either a column or an aggregate")

    @property
    def name(self) -> str:
        if self.column is not None:
            return self.column.column
        return self.aggregate.alias


@dataclass
class LogicalQuery:
    """A normalized select-project-join-aggregate query block."""

    #: Table names in FROM order (aliases already resolved to table names).
    tables: list[str]
    #: Per-table normalized constraints: table -> list of constraints.
    constraints: dict[str, list[AttributeConstraint]]
    #: Per-table residual predicates that could not be normalized.
    residuals: dict[str, list[Expression]]
    #: Equi-join predicates between tables.
    joins: list[JoinPredicate]
    #: SELECT list; empty means ``SELECT *``.
    outputs: list[OutputColumn] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    #: Post-aggregation filter; evaluated over group keys + aggregate
    #: aliases (HAVING clause).
    having: Expression | None = None
    order_by: list[ColumnRef] = field(default_factory=list)
    order_descending: list[bool] = field(default_factory=list)
    select_distinct: bool = False
    limit: int | None = None

    @property
    def is_star(self) -> bool:
        return not self.outputs

    @property
    def aggregates(self) -> list[Aggregate]:
        return [out.aggregate for out in self.outputs if out.aggregate is not None]

    @property
    def has_aggregates(self) -> bool:
        return any(out.aggregate is not None for out in self.outputs)

    def constraints_for(self, table: str) -> list[AttributeConstraint]:
        return self.constraints.get(table, [])

    def residuals_for(self, table: str) -> list[Expression]:
        return self.residuals.get(table, [])

    def joins_between(self, left_tables: Iterable[str], right: str) -> list[
        JoinPredicate
    ]:
        """Join predicates connecting ``right`` to any table in ``left_tables``."""
        lowered = {name.lower() for name in left_tables}
        found = []
        for join in self.joins:
            if not join.involves(right):
                continue
            other = join.other_side(right).table
            if other.lower() in lowered:
                found.append(join)
        return found

    def join_components(self) -> list[frozenset[str]]:
        """Connected components of the join graph (Theorem 3 partitioning)."""
        parent: dict[str, str] = {name.lower(): name.lower() for name in self.tables}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for join in self.joins:
            left, right = (t.lower() for t in join.tables())
            if left in parent and right in parent:
                parent[find(left)] = find(right)

        components: dict[str, set[str]] = {}
        for name in self.tables:
            components.setdefault(find(name.lower()), set()).add(name)
        return [frozenset(group) for group in components.values()]
