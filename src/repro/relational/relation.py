"""The columnar :class:`Relation`: tuple-of-columns with a lazy row view.

Intermediate results used to be bags of row tuples that every operator
immediately re-destructured.  The vectorized engine stores a relation as
one Python sequence per column instead, which lets the hot kernels run at
C speed (``itertools.compress`` for filters, ``map(column.__getitem__,
indices)`` for join gathers, ``list.count``/``sum``/``min``/``max`` for
aggregates) — while ``relation.rows`` stays available as a lazily
materialized view so every existing caller (the executor's staging loop,
``QueryResult.rows``, the reference engine) keeps working unchanged.

A relation can be built either way and converts on demand, caching the
other representation:

* ``Relation(layout, rows)`` — row-backed (the historical constructor);
* ``Relation.from_columns(layout, columns, count)`` — column-backed.

Relations are treated as immutable by every operator; sharing column
sequences between input and output (projection is zero-copy) is safe.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ExecutionError
from repro.relational.expressions import Row, RowLayout


class Relation:
    """A materialized intermediate result: columns + layout (+ lazy rows)."""

    __slots__ = ("layout", "_rows", "_columns", "_count")

    def __init__(self, layout: RowLayout, rows: list[Row] | None = None):
        self.layout = layout
        self._rows: list[Row] | None = rows if rows is not None else []
        self._columns: tuple[Sequence[Any], ...] | None = None
        self._count: int = len(self._rows)

    @classmethod
    def from_columns(
        cls,
        layout: RowLayout,
        columns: Sequence[Sequence[Any]],
        count: int | None = None,
    ) -> "Relation":
        """A column-backed relation; ``count`` defaults to the column length."""
        if len(columns) != len(layout):
            raise ExecutionError(
                f"relation has {len(columns)} columns, layout has {len(layout)}"
            )
        relation = cls.__new__(cls)
        relation.layout = layout
        relation._rows = None
        relation._columns = tuple(columns)
        if count is None:
            count = len(columns[0]) if columns else 0
        relation._count = count
        return relation

    def __len__(self) -> int:
        return self._count

    @property
    def rows(self) -> list[Row]:
        """The row-tuple view, materialized from the columns on first use."""
        if self._rows is None:
            self._rows = list(zip(*self._columns)) if self._columns else []
        return self._rows

    @property
    def columns_data(self) -> tuple[Sequence[Any], ...]:
        """One sequence per column, transposed from the rows on first use."""
        if self._columns is None:
            rows = self._rows
            if rows:
                self._columns = tuple(zip(*rows))
            else:
                self._columns = tuple(() for __ in range(len(self.layout)))
        return self._columns

    def column(self, position: int) -> Sequence[Any]:
        return self.columns_data[position]

    def column_values(self, table: str | None, column: str) -> list[Any]:
        return list(self.column(self.layout.resolve(table, column)))

    def distinct_values(self, table: str | None, column: str) -> set[Any]:
        return set(self.column(self.layout.resolve(table, column)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.layout.columns == other.layout.columns
            and self.rows == other.rows
        )

    def __repr__(self) -> str:
        backing = "columnar" if self._rows is None else "rows"
        return (
            f"Relation({len(self.layout)} cols × {self._count} rows, {backing})"
        )
