"""A simple row-store table.

Tables are append-only — the paper (Section 2.1) observes that data-market
datasets are append-only because they are released for analytics — and that
assumption also keeps the semantic store sound (stored results never go
stale under the default *weak* consistency level).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.schema import Schema

Row = tuple[Any, ...]


class Table:
    """An in-memory, append-only row store with a fixed :class:`Schema`."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Sequence[Any]] = ()):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._columns_cache: tuple[int, tuple[tuple[Any, ...], ...]] | None = None
        self.extend(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"

    @property
    def rows(self) -> list[Row]:
        """The underlying row list (treat as read-only)."""
        return self._rows

    def append(self, row: Sequence[Any]) -> None:
        """Validate ``row`` against the schema and append it."""
        if len(row) != len(self.schema):
            raise TypeMismatchError(
                f"{self.name}: row has {len(row)} values, schema has {len(self.schema)}"
            )
        coerced = tuple(
            attribute.type.coerce(value)
            for attribute, value in zip(self.schema, row)
        )
        self._rows.append(coerced)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.append(row)

    def columns_snapshot(self) -> tuple[tuple[Any, ...], ...]:
        """One tuple per attribute, transposed from the rows.

        Tables are append-only, so the snapshot is cached keyed on the row
        count: repeated scans of an unchanged table are zero-copy.
        """
        count = len(self._rows)
        cache = self._columns_cache
        if cache is None or cache[0] != count:
            if self._rows:
                columns = tuple(zip(*self._rows))
            else:
                columns = tuple(() for __ in self.schema.names)
            cache = (count, columns)
            self._columns_cache = cache
        return cache[1]

    def column(self, name: str) -> list[Any]:
        """All values of attribute ``name`` in row order."""
        position = self.schema.position(name)
        return [row[position] for row in self._rows]

    def distinct(self, name: str) -> set[Any]:
        """The set of distinct values of attribute ``name``."""
        position = self.schema.position(name)
        return {row[position] for row in self._rows}

    def select(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Rows satisfying ``predicate`` (a plain callable over row tuples)."""
        return [row for row in self._rows if predicate(row)]

    def getter(self, name: str) -> Callable[[Row], Any]:
        """A fast positional accessor for attribute ``name``."""
        position = self.schema.position(name)
        return lambda row: row[position]
