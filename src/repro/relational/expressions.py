"""Scalar and boolean expression trees evaluated over relational rows.

Expressions are built by the SQL analyzer (or directly by library users) and
*bound* against a :class:`RowLayout` — a mapping from possibly-qualified
column references to row positions — which compiles them into plain Python
callables.  Binding once and evaluating many times keeps the inner loops of
the operators cheap.  (The vectorized engine goes one step further and
compiles the whole tree into a single code object — see
:mod:`repro.relational.compile`; the semantics here are the reference.)

NULL semantics: SQL's ``NULL`` is represented as Python ``None``.  Both
engines use the same deterministic two-valued collapse of SQL's
three-valued logic:

* a :class:`Comparison` or :class:`InList` with a NULL operand evaluates
  to ``False`` (SQL's UNKNOWN, collapsed at the comparison);
* :class:`Arithmetic` propagates NULL (``x + NULL`` is NULL);
* ``AND`` / ``OR`` / ``NOT`` are ordinary boolean connectives over the
  collapsed leaves (so ``NOT (x = 5)`` is ``True`` for NULL ``x`` — a
  documented deviation from full three-valued logic, shared bit-for-bit
  by both engines and asserted by the parity suite).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import SchemaError

Row = tuple[Any, ...]
RowPredicate = Callable[[Row], bool]
RowFunction = Callable[[Row], Any]


class RowLayout:
    """Resolves column references to positions in a flat row tuple.

    A layout knows every column as ``(table, column)``; a reference may omit
    the table, in which case the column name must be unambiguous.
    """

    def __init__(self, columns: Iterable[tuple[str | None, str]]):
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, int | None] = {}
        self._columns = list(columns)
        for position, (table, column) in enumerate(self._columns):
            column_key = column.lower()
            if table is not None:
                self._qualified[(table.lower(), column_key)] = position
            if column_key in self._unqualified:
                self._unqualified[column_key] = None  # ambiguous
            else:
                self._unqualified[column_key] = position

    @property
    def columns(self) -> list[tuple[str | None, str]]:
        return list(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def resolve(self, table: str | None, column: str) -> int:
        """Position of ``table.column`` (or bare ``column``) in the row."""
        column_key = column.lower()
        if table is not None:
            try:
                return self._qualified[(table.lower(), column_key)]
            except KeyError:
                raise SchemaError(f"unknown column {table}.{column}") from None
        position = self._unqualified.get(column_key, None)
        if position is None:
            if column_key in self._unqualified:
                raise SchemaError(f"ambiguous column {column!r}")
            raise SchemaError(f"unknown column {column!r}")
        return position

    def has(self, table: str | None, column: str) -> bool:
        try:
            self.resolve(table, column)
        except SchemaError:
            return False
        return True

    @classmethod
    def for_table(cls, table_name: str, column_names: Iterable[str]) -> "RowLayout":
        return cls([(table_name, column) for column in column_names])

    def concat(self, other: "RowLayout") -> "RowLayout":
        """Layout of rows formed by concatenating a row of each layout."""
        return RowLayout(self._columns + other._columns)


class Expression:
    """Base class for all expressions."""

    def bind(self, layout: RowLayout) -> RowFunction:
        """Compile this expression to a callable over rows of ``layout``."""
        raise NotImplementedError

    def columns(self) -> list["ColumnRef"]:
        """All column references appearing in this expression."""
        return []


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def bind(self, layout: RowLayout) -> RowFunction:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to ``table.column`` (table may be ``None``)."""

    table: str | None
    column: str

    def bind(self, layout: RowLayout) -> RowFunction:
        position = layout.resolve(self.table, self.column)
        return lambda row: row[position]

    def columns(self) -> list["ColumnRef"]:
        return [self]

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left <op> right`` with op in + - * / (scalar arithmetic)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise SchemaError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, layout: RowLayout) -> RowFunction:
        combine = _ARITHMETIC[self.op]
        left = self.left.bind(layout)
        right = self.right.bind(layout)

        def evaluate(row: Row) -> Any:
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return combine(a, b)

        return evaluate

    def columns(self) -> list["ColumnRef"]:
        return self.left.columns() + self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """``left <op> right`` where op is one of = != < <= > >=."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise SchemaError(f"unknown comparison operator {self.op!r}")

    def bind(self, layout: RowLayout) -> RowPredicate:
        compare = _COMPARISONS[self.op]
        left = self.left.bind(layout)
        right = self.right.bind(layout)

        def evaluate(row: Row) -> bool:
            a = left(row)
            if a is None:
                return False
            b = right(row)
            if b is None:
                return False
            return compare(a, b)

        return evaluate

    def columns(self) -> list[ColumnRef]:
        return self.left.columns() + self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of one or more boolean expressions."""

    operands: tuple[Expression, ...]

    def bind(self, layout: RowLayout) -> RowPredicate:
        bound = [expr.bind(layout) for expr in self.operands]
        return lambda row: all(check(row) for check in bound)

    def columns(self) -> list[ColumnRef]:
        return [ref for expr in self.operands for ref in expr.columns()]

    def __repr__(self) -> str:
        return " AND ".join(repr(expr) for expr in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of one or more boolean expressions."""

    operands: tuple[Expression, ...]

    def bind(self, layout: RowLayout) -> RowPredicate:
        bound = [expr.bind(layout) for expr in self.operands]
        return lambda row: any(check(row) for check in bound)

    def columns(self) -> list[ColumnRef]:
        return [ref for expr in self.operands for ref in expr.columns()]

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(expr) for expr in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def bind(self, layout: RowLayout) -> RowPredicate:
        bound = self.operand.bind(layout)
        return lambda row: not bound(row)

    def columns(self) -> list[ColumnRef]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


@dataclass(frozen=True)
class InList(Expression):
    """``column IN (v1, v2, ...)`` membership test against constants."""

    operand: Expression
    values: frozenset[Any]

    def bind(self, layout: RowLayout) -> RowPredicate:
        bound = self.operand.bind(layout)
        values = self.values
        return lambda row: (value := bound(row)) is not None and value in values

    def columns(self) -> list[ColumnRef]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {sorted(self.values, key=repr)!r}"


def conjunction(parts: Iterable[Expression]) -> Expression:
    """AND together ``parts``; a single part is returned as-is."""
    parts = list(parts)
    if not parts:
        return Literal(True)
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def always_true() -> Expression:
    return Literal(True)
