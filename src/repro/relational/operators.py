"""Vectorized physical operators over columnar relations.

A :class:`Relation` is stored as one sequence per column (see
:mod:`repro.relational.relation`); operators are plain functions from
relations to relations with the same signatures the row-at-a-time engine
always had, so the executor, rewriter-remainder assembly, and obs spans
work unchanged.  Internally every hot path is batch-wise:

* ``filter_rows`` compiles the predicate to a single mask kernel
  (:mod:`repro.relational.compile`) and selects each column with
  ``itertools.compress`` — no per-row interpreter dispatch;
* ``project`` is zero-copy (the output shares column sequences);
* ``hash_join`` builds buckets of *row indices* from the key columns and
  gathers output columns with ``map(column.__getitem__, indices)``;
* ``aggregate_rows`` streams: one pass assigns group indices, then each
  aggregate folds its compiled value column into per-group accumulators
  (with C-level ``sum``/``min``/``max``/``list.count`` fast paths when a
  batch has no NULLs) — no per-group row lists.

Semantics — including the NULL rules (NULL join keys never match,
``COUNT(col)`` counts non-NULL only, SUM/AVG/MIN/MAX skip NULLs, sort is
NULLS LAST) *and* output row order — are identical to the row-at-a-time
oracle in :mod:`repro.relational.reference`; the parity suite asserts
exact equality between the two engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import compress, repeat
from typing import Any, Iterable, Sequence

from repro.errors import ExecutionError
from repro.relational.compile import predicate_kernel, value_kernel
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    Row,
    RowLayout,
)
from repro.relational.relation import Relation
from repro.relational.table import Table

__all__ = [
    "Aggregate",
    "Relation",
    "aggregate_rows",
    "cross_product",
    "distinct",
    "filter_rows",
    "hash_join",
    "limit",
    "project",
    "scan",
    "sort",
    "union_all",
]


def scan(table: Table, alias: str | None = None) -> Relation:
    """Full scan of ``table``, columns qualified by ``alias`` (or table name).

    Builds the relation directly from the table's cached column snapshot —
    no row tuples are materialized until something asks for them.
    """
    name = alias or table.name
    layout = RowLayout.for_table(name, table.schema.names)
    return Relation.from_columns(layout, table.columns_snapshot(), len(table))


def filter_rows(relation: Relation, predicate: Expression) -> Relation:
    """Keep only rows satisfying ``predicate`` (batch mask + compress)."""
    kernel = predicate_kernel(predicate, relation.layout)
    if kernel.constant is not None:
        if kernel.constant:
            return relation
        return Relation.from_columns(
            relation.layout, tuple(() for __ in range(len(relation.layout))), 0
        )
    columns = relation.columns_data
    mask = kernel.mask(columns, len(relation))
    selected = tuple(list(compress(column, mask)) for column in columns)
    count = len(selected[0]) if selected else 0
    return Relation.from_columns(relation.layout, selected, count)


def project(relation: Relation, refs: Sequence[ColumnRef]) -> Relation:
    """Project to the given column references, in order (bag semantics).

    Zero-copy: the output relation shares the selected column sequences.
    """
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    layout = RowLayout([(ref.table, ref.column) for ref in refs])
    columns = relation.columns_data
    return Relation.from_columns(
        layout, tuple(columns[p] for p in positions), len(relation)
    )


def _key_iter(columns: Sequence[Sequence[Any]], positions: Sequence[int]):
    """Join/group keys for every row: scalars for one key column, tuples else."""
    if len(positions) == 1:
        return columns[positions[0]]
    return zip(*(columns[p] for p in positions))


def hash_join(
    left: Relation,
    right: Relation,
    keys: Sequence[tuple[ColumnRef, ColumnRef]],
) -> Relation:
    """Equi-join on ``keys`` (pairs of left-side / right-side references).

    Builds index buckets on the smaller input, probes with the key column
    of the larger, and gathers output columns positionally.  Rows with a
    NULL in any join key never match (SQL: ``NULL = NULL`` is not true).
    The output layout is the concatenation ``left ++ right``.
    """
    if not keys:
        return cross_product(left, right)
    left_positions = [left.layout.resolve(l.table, l.column) for l, _ in keys]
    right_positions = [right.layout.resolve(r.table, r.column) for _, r in keys]

    build_right = len(right) <= len(left)
    if build_right:
        build_rel, probe_rel = right, left
        build_positions, probe_positions = right_positions, left_positions
    else:
        build_rel, probe_rel = left, right
        build_positions, probe_positions = left_positions, right_positions

    build_columns = build_rel.columns_data
    probe_columns = probe_rel.columns_data
    single_key = len(build_positions) == 1

    buckets: dict[Any, list[int]] = {}
    for index, key in enumerate(_key_iter(build_columns, build_positions)):
        if (key is None) if single_key else (None in key):
            continue
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [index]
        else:
            bucket.append(index)

    # NULL probe keys can never hit a bucket (NULL build keys were skipped),
    # so no probe-side check is needed.
    probe_count = len(probe_rel)
    probe_indices: list[int] | None
    if single_key and all(len(bucket) == 1 for bucket in buckets.values()):
        # Foreign-key shape: every build key is unique, so each probe row
        # has at most one match and output order is probe order either way.
        # The probe loop collapses to one C-level ``map`` over the key
        # column (a NULL probe key gets the miss sentinel, as required).
        index_of = {key: bucket[0] for key, bucket in buckets.items()}
        hits = list(map(index_of.get, probe_columns[probe_positions[0]]))
        if None in hits:
            mask = [hit is not None for hit in hits]
            build_indices = list(compress(hits, mask))
            probe_indices = list(compress(range(probe_count), mask))
        else:
            build_indices = hits
            probe_indices = None  # every probe row matched: identity gather
    else:
        probe_indices = []
        build_indices = []
        bucket_get = buckets.get
        for index, key in enumerate(_key_iter(probe_columns, probe_positions)):
            bucket = bucket_get(key)
            if bucket is None:
                continue
            if len(bucket) == 1:
                probe_indices.append(index)
                build_indices.append(bucket[0])
            else:
                probe_indices.extend(repeat(index, len(bucket)))
                build_indices.extend(bucket)

    if probe_indices is None:
        count = probe_count
        probe_part = probe_columns  # zero-copy pass-through
    else:
        count = len(probe_indices)
        probe_part = tuple(
            list(map(c.__getitem__, probe_indices)) for c in probe_columns
        )
    build_part = tuple(
        list(map(c.__getitem__, build_indices)) for c in build_columns
    )
    output = probe_part + build_part if build_right else build_part + probe_part
    return Relation.from_columns(
        left.layout.concat(right.layout), output, count
    )


def cross_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; layout is ``left ++ right``."""
    n_left, n_right = len(left), len(right)
    left_part = tuple(
        [value for value in column for __ in range(n_right)]
        for column in left.columns_data
    )
    right_part = tuple(list(column) * n_left for column in right.columns_data)
    return Relation.from_columns(
        left.layout.concat(right.layout), left_part + right_part, n_left * n_right
    )


def distinct(relation: Relation) -> Relation:
    """Remove duplicate rows, preserving first-seen order."""
    return Relation(relation.layout, list(dict.fromkeys(relation.rows)))


def sort(
    relation: Relation,
    refs: Sequence[ColumnRef],
    descending: Sequence[bool] | None = None,
) -> Relation:
    """Sort by the given columns; ``descending[i]`` flips the i-th key.

    NULLs order last in both directions (deterministic NULLS LAST), and
    the sort key never compares ``None`` against a value.
    """
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    flags = list(descending) if descending is not None else [False] * len(positions)
    if len(flags) != len(positions):
        raise ExecutionError("sort: descending flags do not match sort keys")
    rows = list(relation.rows)
    # Stable sort applied key-by-key from the least-significant key.
    for position, flag in reversed(list(zip(positions, flags))):
        if flag:
            # reverse=True flips the null flag too, so "is not None" puts
            # NULLs last after the reversal.
            rows.sort(
                key=lambda row: ((v := row[position]) is not None, v),
                reverse=True,
            )
        else:
            rows.sort(key=lambda row: ((v := row[position]) is None, v))
    return Relation(relation.layout, rows)


def limit(relation: Relation, count: int) -> Relation:
    if len(relation) <= count:
        return relation
    return Relation.from_columns(
        relation.layout,
        tuple(column[:count] for column in relation.columns_data),
        count,
    )


def union_all(relations: Iterable[Relation]) -> Relation:
    """Bag union of relations sharing column count (layout of the first)."""
    relations = list(relations)
    if not relations:
        raise ExecutionError("union_all of zero relations")
    width = len(relations[0].layout)
    for relation in relations:
        if len(relation.layout) != width:
            raise ExecutionError("union_all: mismatched column counts")
    columns = tuple(
        [value for relation in relations for value in relation.column(p)]
        for p in range(width)
    )
    return Relation.from_columns(
        relations[0].layout, columns, sum(len(r) for r in relations)
    )


@dataclass(frozen=True)
class Aggregate:
    """A single aggregate: ``func`` over ``arg`` (None means ``*``).

    ``arg`` may be any scalar :class:`Expression` — a plain column or an
    arithmetic combination like ``ExtendedPrice * Discount``.
    """

    func: str  # COUNT, SUM, AVG, MIN, MAX
    arg: Expression | None
    alias: str

    _SUPPORTED = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __post_init__(self) -> None:
        if self.func not in self._SUPPORTED:
            raise ExecutionError(f"unsupported aggregate {self.func}")
        if self.func != "COUNT" and self.arg is None:
            raise ExecutionError(f"{self.func} requires a column argument")


def _fold_global(func: str, values: list[Any]) -> Any:
    """One aggregate over a whole value batch, skipping NULLs.

    When the batch has no NULLs everything runs at C level
    (``list.count`` to detect, then ``sum``/``min``/``max`` directly).
    """
    nulls = values.count(None)
    if func == "COUNT":
        return len(values) - nulls
    if nulls:
        values = [value for value in values if value is not None]
        if not values:
            return None
    elif not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "AVG":
        return sum(values) / len(values)
    if func == "MIN":
        return min(values)
    return max(values)


def _fold_grouped(
    func: str, values: list[Any], group_index: list[int], n_groups: int
) -> list[Any]:
    """One aggregate folded into per-group accumulators in a single pass."""
    if func == "COUNT":
        counts = [0] * n_groups
        for group, value in zip(group_index, values):
            if value is not None:
                counts[group] += 1
        return counts
    seen = [0] * n_groups
    if func in ("SUM", "AVG"):
        sums: list[Any] = [0] * n_groups
        for group, value in zip(group_index, values):
            if value is not None:
                sums[group] += value
                seen[group] += 1
        if func == "SUM":
            return [s if c else None for s, c in zip(sums, seen)]
        return [s / c if c else None for s, c in zip(sums, seen)]
    best: list[Any] = [None] * n_groups
    if func == "MIN":
        for group, value in zip(group_index, values):
            if value is not None:
                current = best[group]
                if current is None or value < current:
                    best[group] = value
    else:  # MAX
        for group, value in zip(group_index, values):
            if value is not None:
                current = best[group]
                if current is None or value > current:
                    best[group] = value
    return best


def aggregate_rows(
    relation: Relation,
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[Aggregate],
) -> Relation:
    """GROUP BY + aggregate evaluation, streaming (no per-group row lists).

    With an empty ``group_by`` this produces exactly one row (global
    aggregation), even over an empty input — matching SQL semantics.
    ``COUNT(*)`` counts rows; every other aggregate sees only the
    non-NULL values of its argument.
    """
    layout = RowLayout(
        [(ref.table, ref.column) for ref in group_by]
        + [(None, aggregate.alias) for aggregate in aggregates]
    )
    columns = relation.columns_data
    count = len(relation)

    def value_batch(aggregate: Aggregate) -> list[Any]:
        return value_kernel(aggregate.arg, relation.layout).values(columns, count)

    if not group_by:
        computed = tuple(
            count
            if aggregate.arg is None
            else _fold_global(aggregate.func, value_batch(aggregate))
            for aggregate in aggregates
        )
        return Relation(layout, [computed])

    group_positions = [
        relation.layout.resolve(ref.table, ref.column) for ref in group_by
    ]
    single_key = len(group_positions) == 1

    # Single pass: assign every row its group index, groups in first-seen order.
    group_index: list[int] = []
    group_keys: list[tuple[Any, ...]] = []
    index_of: dict[Any, int] = {}
    append_index = group_index.append
    for key in _key_iter(columns, group_positions):
        group = index_of.get(key)
        if group is None:
            group = len(group_keys)
            index_of[key] = group
            group_keys.append((key,) if single_key else key)
        append_index(group)
    n_groups = len(group_keys)

    aggregate_columns: list[list[Any]] = []
    for aggregate in aggregates:
        if aggregate.arg is None:
            counts = [0] * n_groups
            for group in group_index:
                counts[group] += 1
            aggregate_columns.append(counts)
        else:
            aggregate_columns.append(
                _fold_grouped(
                    aggregate.func, value_batch(aggregate), group_index, n_groups
                )
            )

    output = [
        group_keys[g] + tuple(column[g] for column in aggregate_columns)
        for g in range(n_groups)
    ]
    return Relation(layout, output)
