"""Physical operators over in-memory relations.

A :class:`Relation` is a bag of rows plus a :class:`RowLayout` describing the
columns.  Operators are plain functions from relations to relations; they
materialize their output (fine for the data sizes this library targets, and
it keeps behaviour easy to reason about in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExecutionError
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    Row,
    RowLayout,
)
from repro.relational.table import Table


@dataclass
class Relation:
    """A materialized intermediate result: rows + column layout."""

    layout: RowLayout
    rows: list[Row]

    def __len__(self) -> int:
        return len(self.rows)

    def column_values(self, table: str | None, column: str) -> list[Any]:
        position = self.layout.resolve(table, column)
        return [row[position] for row in self.rows]

    def distinct_values(self, table: str | None, column: str) -> set[Any]:
        position = self.layout.resolve(table, column)
        return {row[position] for row in self.rows}


def scan(table: Table, alias: str | None = None) -> Relation:
    """Full scan of ``table``, columns qualified by ``alias`` (or table name)."""
    name = alias or table.name
    layout = RowLayout.for_table(name, table.schema.names)
    return Relation(layout, list(table.rows))


def filter_rows(relation: Relation, predicate: Expression) -> Relation:
    """Keep only rows satisfying ``predicate``."""
    check = predicate.bind(relation.layout)
    return Relation(relation.layout, [row for row in relation.rows if check(row)])


def project(relation: Relation, refs: Sequence[ColumnRef]) -> Relation:
    """Project to the given column references, in order (bag semantics)."""
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    layout = RowLayout([(ref.table, ref.column) for ref in refs])
    rows = [tuple(row[p] for p in positions) for row in relation.rows]
    return Relation(layout, rows)


def hash_join(
    left: Relation,
    right: Relation,
    keys: Sequence[tuple[ColumnRef, ColumnRef]],
) -> Relation:
    """Equi-join on ``keys`` (pairs of left-side / right-side references).

    Builds a hash table on the smaller input.  The output layout is the
    concatenation ``left ++ right``.
    """
    if not keys:
        return cross_product(left, right)
    left_positions = [left.layout.resolve(l.table, l.column) for l, _ in keys]
    right_positions = [right.layout.resolve(r.table, r.column) for _, r in keys]

    build_right = len(right.rows) <= len(left.rows)
    if build_right:
        build, probe = right.rows, left.rows
        build_positions, probe_positions = right_positions, left_positions
    else:
        build, probe = left.rows, right.rows
        build_positions, probe_positions = left_positions, right_positions

    buckets: dict[tuple[Any, ...], list[Row]] = {}
    for row in build:
        buckets.setdefault(tuple(row[p] for p in build_positions), []).append(row)

    output: list[Row] = []
    for row in probe:
        matches = buckets.get(tuple(row[p] for p in probe_positions))
        if not matches:
            continue
        if build_right:
            output.extend(row + match for match in matches)
        else:
            output.extend(match + row for match in matches)
    return Relation(left.layout.concat(right.layout), output)


def cross_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; layout is ``left ++ right``."""
    output = [l + r for l in left.rows for r in right.rows]
    return Relation(left.layout.concat(right.layout), output)


def distinct(relation: Relation) -> Relation:
    """Remove duplicate rows, preserving first-seen order."""
    seen: set[Row] = set()
    output: list[Row] = []
    for row in relation.rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return Relation(relation.layout, output)


def sort(
    relation: Relation,
    refs: Sequence[ColumnRef],
    descending: Sequence[bool] | None = None,
) -> Relation:
    """Sort by the given columns; ``descending[i]`` flips the i-th key."""
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    flags = list(descending) if descending is not None else [False] * len(positions)
    if len(flags) != len(positions):
        raise ExecutionError("sort: descending flags do not match sort keys")
    rows = list(relation.rows)
    # Stable sort applied key-by-key from the least-significant key.
    for position, flag in reversed(list(zip(positions, flags))):
        rows.sort(key=lambda row: row[position], reverse=flag)
    return Relation(relation.layout, rows)


def limit(relation: Relation, count: int) -> Relation:
    return Relation(relation.layout, relation.rows[:count])


def union_all(relations: Iterable[Relation]) -> Relation:
    """Bag union of relations sharing column count (layout of the first)."""
    relations = list(relations)
    if not relations:
        raise ExecutionError("union_all of zero relations")
    width = len(relations[0].layout)
    rows: list[Row] = []
    for relation in relations:
        if len(relation.layout) != width:
            raise ExecutionError("union_all: mismatched column counts")
        rows.extend(relation.rows)
    return Relation(relations[0].layout, rows)


@dataclass(frozen=True)
class Aggregate:
    """A single aggregate: ``func`` over ``arg`` (None means ``*``).

    ``arg`` may be any scalar :class:`Expression` — a plain column or an
    arithmetic combination like ``ExtendedPrice * Discount``.
    """

    func: str  # COUNT, SUM, AVG, MIN, MAX
    arg: Expression | None
    alias: str

    _SUPPORTED = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __post_init__(self) -> None:
        if self.func not in self._SUPPORTED:
            raise ExecutionError(f"unsupported aggregate {self.func}")
        if self.func != "COUNT" and self.arg is None:
            raise ExecutionError(f"{self.func} requires a column argument")


def _evaluate_aggregate(aggregate: Aggregate, values: list[Any]) -> Any:
    if aggregate.func == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.func == "SUM":
        return sum(values)
    if aggregate.func == "AVG":
        return sum(values) / len(values)
    if aggregate.func == "MIN":
        return min(values)
    return max(values)


def aggregate_rows(
    relation: Relation,
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[Aggregate],
) -> Relation:
    """GROUP BY + aggregate evaluation.

    With an empty ``group_by`` this produces exactly one row (global
    aggregation), even over an empty input — matching SQL semantics.
    """
    group_positions = [
        relation.layout.resolve(ref.table, ref.column) for ref in group_by
    ]
    value_getters: list[Callable[[Row], Any] | None] = []
    for aggregate in aggregates:
        if aggregate.arg is None:
            value_getters.append(None)
        else:
            value_getters.append(aggregate.arg.bind(relation.layout))

    groups: dict[tuple[Any, ...], list[Row]] = {}
    for row in relation.rows:
        groups.setdefault(tuple(row[p] for p in group_positions), []).append(row)
    if not group_by and not groups:
        groups[()] = []

    layout = RowLayout(
        [(ref.table, ref.column) for ref in group_by]
        + [(None, aggregate.alias) for aggregate in aggregates]
    )
    output: list[Row] = []
    for key, rows in groups.items():
        computed = []
        for aggregate, getter in zip(aggregates, value_getters):
            values = rows if getter is None else [getter(row) for row in rows]
            if getter is None:
                computed.append(len(values))
            else:
                computed.append(_evaluate_aggregate(aggregate, values))
        output.append(key + tuple(computed))
    return Relation(layout, output)
