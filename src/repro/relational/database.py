"""A named collection of tables — the "local DBMS" of the PayLess setting.

PayLess offloads final query processing (joins, aggregation) to a local
DBMS (Figure 3, steps 6-8 of the paper).  This class plays that role: it
holds the buyer's local tables plus the tables PayLess materializes from
data-market results.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table


class Database:
    """A case-insensitive registry of :class:`Table` objects."""

    def __init__(self, tables: Iterable[Table] = ()):
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table) -> Table:
        key = table.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def create(self, name: str, schema: Schema) -> Table:
        return self.add(Table(name, schema))

    def get_or_create(self, name: str, schema: Schema) -> Table:
        key = name.lower()
        if key in self._tables:
            return self._tables[key]
        return self.add(Table(name, schema))

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def names(self) -> list[str]:
        return [table.name for table in self._tables.values()]
