"""Expression codegen: collapse a bound expression tree into one code object.

The reference engine binds an :class:`~repro.relational.expressions.
Expression` into a tree of nested closures — evaluating a predicate costs
one Python call per tree node per row.  This module instead *emits source*
for the whole tree and runs it through :func:`compile`, so the per-row
interpreter dispatch disappears into a single stack frame:

* :func:`row_fn` — ``lambda _r: (_r[2] is not None and _r[2] > _k0)``,
  one call per row, no inner calls;
* :func:`predicate_kernel` — a batch kernel over *columns*: a single list
  comprehension with the predicate inlined produces the boolean mask for
  the whole batch (``filter_rows`` then compresses each column at C
  speed); constant predicates fold to ``True``/``False`` without looping;
* :func:`value_kernel` — the same shape for scalar expressions (aggregate
  arguments like ``ExtendedPrice * Discount``), producing the value column
  in one pass.

Emitted code implements exactly the NULL semantics documented in
:mod:`repro.relational.expressions`: comparisons and ``IN`` collapse to
``False`` on NULL operands, arithmetic propagates NULL.  Sub-expressions
that may be NULL are bound once via assignment expressions (``:=``), so
nothing is evaluated twice.

Compilation is memoized per ``(expression, layout signature)`` — the
expression dataclasses are frozen/hashable and layouts cache their
signature — so repeated queries pay the (already small) codegen cost once.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import SchemaError
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
    Row,
    RowLayout,
)

#: SQL comparison spelling -> Python operator source.
_CMP_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

Columns = Sequence[Sequence[Any]]
MaskFn = Callable[[Columns, int], list]
ValuesFn = Callable[[Columns, int], list]


class _Emitter:
    """Accumulates constants, temps, and used column positions while the
    tree is lowered to a source fragment."""

    def __init__(self, layout: RowLayout, var_template: str):
        self.layout = layout
        self.var_template = var_template
        self.env: dict[str, Any] = {}
        self.positions: list[int] = []  # first-use order
        self._temps = 0

    def var(self, position: int) -> str:
        if position not in self.positions:
            self.positions.append(position)
        return self.var_template.format(position)

    def const(self, value: Any) -> str:
        name = f"_k{len(self.env)}"
        self.env[name] = value
        return name

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"


def _emit(expr: Expression, em: _Emitter) -> tuple[str, bool]:
    """Lower ``expr`` to ``(source fragment, may_be_null)``."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "None", True
        if expr.value is True or expr.value is False:
            return str(expr.value), False
        return em.const(expr.value), False
    if isinstance(expr, ColumnRef):
        return em.var(em.layout.resolve(expr.table, expr.column)), True
    if isinstance(expr, Arithmetic):
        left, left_null = _emit(expr.left, em)
        right, right_null = _emit(expr.right, em)
        if not left_null and not right_null:
            return f"({left} {expr.op} {right})", False
        guards = []
        if left_null:
            temp = em.temp()
            guards.append(f"({temp} := {left}) is None")
            left = temp
        if right_null:
            temp = em.temp()
            guards.append(f"({temp} := {right}) is None")
            right = temp
        condition = " or ".join(guards)
        return f"(None if {condition} else ({left} {expr.op} {right}))", True
    if isinstance(expr, Comparison):
        left, left_null = _emit(expr.left, em)
        right, right_null = _emit(expr.right, em)
        op = _CMP_SOURCE[expr.op]
        parts = []
        if left_null:
            temp = em.temp()
            parts.append(f"({temp} := {left}) is not None")
            left = temp
        if right_null:
            temp = em.temp()
            parts.append(f"({temp} := {right}) is not None")
            right = temp
        parts.append(f"({left} {op} {right})")
        if len(parts) == 1:
            return parts[0], False
        return "(" + " and ".join(parts) + ")", False
    if isinstance(expr, And):
        return _connective(expr.operands, " and ", em)
    if isinstance(expr, Or):
        return _connective(expr.operands, " or ", em)
    if isinstance(expr, Not):
        operand, nullable = _emit(expr.operand, em)
        if nullable:
            temp = em.temp()
            operand = f"(({temp} := {operand}) is not None and {temp})"
        return f"(not {operand})", False
    if isinstance(expr, InList):
        operand, nullable = _emit(expr.operand, em)
        values = em.const(expr.values)
        if nullable:
            temp = em.temp()
            return (
                f"(({temp} := {operand}) is not None and {temp} in {values})",
                False,
            )
        return f"({operand} in {values})", False
    raise SchemaError(f"cannot compile expression {expr!r}")


def _connective(
    operands: tuple[Expression, ...], joiner: str, em: _Emitter
) -> tuple[str, bool]:
    parts = []
    for operand in operands:
        fragment, nullable = _emit(operand, em)
        if nullable:  # a bare scalar in boolean position: NULL -> False
            temp = em.temp()
            fragment = f"(({temp} := {fragment}) is not None and {temp})"
        parts.append(fragment)
    return "(" + joiner.join(parts) + ")", False


def _compile(source: str, env: dict[str, Any]):
    return eval(compile(source, "<repro.relational.compile>", "eval"), env)


def _batch_source(fragment: str, em: _Emitter) -> str:
    """The batch-kernel source: one comprehension over the used columns."""
    positions = em.positions
    if len(positions) == 1:
        p = positions[0]
        return f"lambda _cols, _n: [{fragment} for {em.var_template.format(p)} in _cols[{p}]]"
    loop_vars = ", ".join(em.var_template.format(p) for p in positions)
    zipped = ", ".join(f"_cols[{p}]" for p in positions)
    return f"lambda _cols, _n: [{fragment} for ({loop_vars}) in zip({zipped})]"


# ---------------------------------------------------------------------- caching

_CACHE: dict = {}
_CACHE_LIMIT = 4096


def _layout_signature(layout: RowLayout) -> tuple:
    signature = getattr(layout, "_compile_signature", None)
    if signature is None:
        signature = tuple(
            (table.lower() if table else None, column.lower())
            for table, column in layout.columns
        )
        layout._compile_signature = signature  # type: ignore[attr-defined]
    return signature


def _cached(kind: str, expr: Expression, layout: RowLayout, build):
    try:
        key = (kind, expr, _layout_signature(layout))
    except TypeError:  # unhashable literal somewhere in the tree
        return build()
    hit = _CACHE.get(key)
    if hit is None:
        hit = build()
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = hit
    return hit


def clear_cache() -> None:
    """Drop every memoized kernel (tests and benchmarks use this)."""
    _CACHE.clear()


# ------------------------------------------------------------------ public API


class PredicateKernel:
    """A compiled boolean expression, usable row-wise or batch-wise.

    ``constant`` is the folded verdict when the predicate touches no
    column (``None`` otherwise); ``mask(columns, n)`` returns the boolean
    selection list for a batch; ``row`` is the single-frame row predicate.
    """

    __slots__ = ("constant", "mask", "row")

    def __init__(self, constant, mask, row):
        self.constant = constant
        self.mask = mask
        self.row = row


class ValueKernel:
    """A compiled scalar expression: ``values(columns, n)`` -> value list."""

    __slots__ = ("values", "row")

    def __init__(self, values, row):
        self.values = values
        self.row = row


def row_fn(expr: Expression, layout: RowLayout) -> Callable[[Row], Any]:
    """One flat callable over row tuples (the codegen analogue of ``bind``)."""

    def build():
        em = _Emitter(layout, "_r[{}]")
        fragment, __ = _emit(expr, em)
        return _compile(f"lambda _r: {fragment}", em.env)

    return _cached("row", expr, layout, build)


def predicate_kernel(expr: Expression, layout: RowLayout) -> PredicateKernel:
    """The batch predicate kernel for ``expr`` over relations of ``layout``."""

    def build():
        em = _Emitter(layout, "_v{}")
        fragment, nullable = _emit(expr, em)
        if nullable:  # bare scalar used as a predicate: NULL -> False
            temp = em.temp()
            fragment = f"(({temp} := {fragment}) is not None and {temp})"
        if not em.positions:
            constant = bool(_compile(f"lambda: {fragment}", em.env)())
            return PredicateKernel(constant, None, lambda _row: constant)
        mask = _compile(_batch_source(fragment, em), em.env)
        row = row_fn(expr, layout)
        return PredicateKernel(None, mask, row)

    return _cached("predicate", expr, layout, build)


def value_kernel(expr: Expression, layout: RowLayout) -> ValueKernel:
    """The batch value kernel (aggregate arguments, computed columns)."""

    def build():
        em = _Emitter(layout, "_v{}")
        fragment, __ = _emit(expr, em)
        if not em.positions:
            constant = _compile(f"lambda: {fragment}", em.env)()
            return ValueKernel(
                lambda _cols, n: [constant] * n, lambda _row: constant
            )
        values = _compile(_batch_source(fragment, em), em.env)
        row = row_fn(expr, layout)
        return ValueKernel(values, row)

    return _cached("value", expr, layout, build)
