"""In-memory relational substrate: the buyer-side local DBMS."""

from repro.relational.database import Database
from repro.relational.engine import (
    DEFAULT_EXECUTION,
    ExecutionConfig,
    evaluate,
    row_count,
)
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
    RowLayout,
    conjunction,
)
from repro.relational.operators import (
    Aggregate,
    Relation,
    aggregate_rows,
    cross_product,
    distinct,
    filter_rows,
    hash_join,
    project,
    scan,
    sort,
    union_all,
)
from repro.relational.query import (
    AttributeConstraint,
    JoinPredicate,
    LogicalQuery,
    OutputColumn,
)
from repro.relational.schema import Attribute, Domain, Schema
from repro.relational.table import Table
from repro.relational.types import AttributeType, comparable

__all__ = [
    "Aggregate",
    "And",
    "Attribute",
    "AttributeConstraint",
    "AttributeType",
    "ColumnRef",
    "Comparison",
    "DEFAULT_EXECUTION",
    "Database",
    "Domain",
    "ExecutionConfig",
    "Expression",
    "InList",
    "JoinPredicate",
    "Literal",
    "LogicalQuery",
    "Not",
    "Or",
    "OutputColumn",
    "Relation",
    "RowLayout",
    "Schema",
    "Table",
    "aggregate_rows",
    "comparable",
    "conjunction",
    "cross_product",
    "distinct",
    "evaluate",
    "filter_rows",
    "hash_join",
    "project",
    "row_count",
    "scan",
    "sort",
    "union_all",
]
