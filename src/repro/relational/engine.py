"""A straightforward evaluator for :class:`LogicalQuery` over a :class:`Database`.

This is the "DBMS query engine" box of the paper's architecture (Figure 3):
once PayLess has materialized all required data-market rows locally, the
final join/aggregate work happens here.  The *plan* is deliberately simple —
scan, filter, hash-join in join-graph order, then aggregate/sort/limit —
but two interchangeable operator implementations can execute it:

* ``"vectorized"`` (the default): columnar batches + compiled expression
  kernels (:mod:`repro.relational.operators`);
* ``"reference"``: the original row-at-a-time interpreter
  (:mod:`repro.relational.reference`), kept as a differential test oracle.

Both produce identical results, row order included; pick one with
:class:`ExecutionConfig` (threaded through ``PlanningContext``/``PayLess``,
or ``--engine`` on the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutionError
from repro.relational import operators as _vectorized
from repro.relational import reference as _reference
from repro.relational.database import Database
from repro.relational.expressions import ColumnRef, conjunction
from repro.relational.operators import Relation
from repro.relational.query import LogicalQuery

#: engine name -> operator module (same function-level API in each).
_ENGINES = {
    "vectorized": _vectorized,
    "reference": _reference,
}


@dataclass(frozen=True)
class ExecutionConfig:
    """How local evaluation runs; ``engine`` selects the operator set."""

    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ExecutionError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{sorted(_ENGINES)}"
            )

    @property
    def ops(self):
        """The operator module implementing this engine."""
        return _ENGINES[self.engine]


DEFAULT_EXECUTION = ExecutionConfig()


def _scan_with_selection(
    database: Database, query: LogicalQuery, name: str, ops
) -> Relation:
    relation = ops.scan(database.table(name), alias=name)
    predicates = [c.to_expression(name) for c in query.constraints_for(name)]
    predicates.extend(query.residuals_for(name))
    if predicates:
        relation = ops.filter_rows(relation, conjunction(predicates))
    return relation


def _join_order(query: LogicalQuery) -> list[str]:
    """Tables ordered so each (when possible) joins something already placed."""
    remaining = list(query.tables)
    ordered: list[str] = []
    while remaining:
        placed_lower = {name.lower() for name in ordered}
        chosen = None
        if ordered:
            for candidate in remaining:
                if query.joins_between(placed_lower, candidate):
                    chosen = candidate
                    break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
    return ordered


def evaluate(
    database: Database,
    query: LogicalQuery,
    execution: ExecutionConfig | None = None,
) -> Relation:
    """Evaluate ``query`` against ``database`` and return the result relation."""
    if not query.tables:
        raise ExecutionError("query references no tables")
    ops = (execution or DEFAULT_EXECUTION).ops

    ordered = _join_order(query)
    result = _scan_with_selection(database, query, ordered[0], ops)
    joined = [ordered[0]]
    for name in ordered[1:]:
        right = _scan_with_selection(database, query, name, ops)
        join_predicates = query.joins_between(joined, name)
        if join_predicates:
            keys = []
            for join in join_predicates:
                right_ref = join.side_for(name)
                left_ref = join.other_side(name)
                keys.append((left_ref, right_ref))
            result = ops.hash_join(result, right, keys)
        else:
            result = ops.cross_product(result, right)
        joined.append(name)

    if query.has_aggregates:
        result = ops.aggregate_rows(result, query.group_by, query.aggregates)
        if query.having is not None:
            result = ops.filter_rows(result, query.having)
    elif query.group_by:
        result = ops.distinct(ops.project(result, query.group_by))
    elif not query.is_star:
        result = ops.project(result, [out.column for out in query.outputs])

    if query.select_distinct:
        result = ops.distinct(result)
    if query.order_by:
        result = ops.sort(result, query.order_by, query.order_descending or None)
    if query.limit is not None:
        result = ops.limit(result, query.limit)
    return result


def row_count(
    database: Database,
    query: LogicalQuery,
    execution: ExecutionConfig | None = None,
) -> int:
    """Number of rows ``query`` yields — convenience for tests/validation."""
    return len(evaluate(database, query, execution))
