"""A straightforward evaluator for :class:`LogicalQuery` over a :class:`Database`.

This is the "DBMS query engine" box of the paper's architecture (Figure 3):
once PayLess has materialized all required data-market rows locally, the
final join/aggregate work happens here.  It is deliberately simple — scan,
filter, hash-join in join-graph order, then aggregate/sort/limit — because
local execution costs no money and is not what the paper optimizes.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.relational.database import Database
from repro.relational.expressions import ColumnRef, conjunction
from repro.relational.operators import (
    Relation,
    aggregate_rows,
    cross_product,
    distinct,
    filter_rows,
    hash_join,
    limit as limit_rows,
    project,
    scan,
    sort,
)
from repro.relational.query import LogicalQuery


def _scan_with_selection(database: Database, query: LogicalQuery, name: str) -> Relation:
    relation = scan(database.table(name), alias=name)
    predicates = [c.to_expression(name) for c in query.constraints_for(name)]
    predicates.extend(query.residuals_for(name))
    if predicates:
        relation = filter_rows(relation, conjunction(predicates))
    return relation


def _join_order(query: LogicalQuery) -> list[str]:
    """Tables ordered so each (when possible) joins something already placed."""
    remaining = list(query.tables)
    ordered: list[str] = []
    while remaining:
        placed_lower = {name.lower() for name in ordered}
        chosen = None
        if ordered:
            for candidate in remaining:
                if query.joins_between(placed_lower, candidate):
                    chosen = candidate
                    break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
    return ordered


def evaluate(database: Database, query: LogicalQuery) -> Relation:
    """Evaluate ``query`` against ``database`` and return the result relation."""
    if not query.tables:
        raise ExecutionError("query references no tables")

    ordered = _join_order(query)
    result = _scan_with_selection(database, query, ordered[0])
    joined = [ordered[0]]
    for name in ordered[1:]:
        right = _scan_with_selection(database, query, name)
        join_predicates = query.joins_between(joined, name)
        if join_predicates:
            keys = []
            for join in join_predicates:
                right_ref = join.side_for(name)
                left_ref = join.other_side(name)
                keys.append((left_ref, right_ref))
            result = hash_join(result, right, keys)
        else:
            result = cross_product(result, right)
        joined.append(name)

    if query.has_aggregates:
        result = aggregate_rows(result, query.group_by, query.aggregates)
        if query.having is not None:
            result = filter_rows(result, query.having)
    elif query.group_by:
        result = distinct(project(result, query.group_by))
    elif not query.is_star:
        result = project(result, [out.column for out in query.outputs])

    if query.select_distinct:
        result = distinct(result)
    if query.order_by:
        result = sort(result, query.order_by, query.order_descending or None)
    if query.limit is not None:
        result = limit_rows(result, query.limit)
    return result


def row_count(database: Database, query: LogicalQuery) -> int:
    """Number of rows ``query`` yields — convenience for tests/validation."""
    return len(evaluate(database, query))
