"""Row-at-a-time reference operators — the differential test oracle.

This module preserves the original interpreter-style engine: expressions
bound to per-row callables, tuple-building joins, list-of-rows GROUP BY.
It is deliberately simple and obviously correct, and the parity suite
(``tests/test_engine_parity.py``) runs every operator through both this
module and the vectorized :mod:`repro.relational.operators`, asserting
*identical* output — the same oracle pattern the semantic store uses for
``debug_bruteforce``.

Both engines implement the same SQL semantics, including the NULL rules:
``hash_join`` never matches ``NULL = NULL`` keys, ``COUNT(col)`` counts
only non-NULL values, SUM/AVG/MIN/MAX skip NULLs (and return NULL over
zero non-NULL inputs), and ``sort`` orders NULLs last regardless of sort
direction.  Row *order* is also identical by construction (same
build-side tie-break in joins, insertion-ordered groups, stable sorts),
so parity tests compare row lists exactly.

Select an engine end-to-end with
``ExecutionConfig(engine="reference")`` — see :mod:`repro.relational.engine`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExecutionError
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    Row,
    RowLayout,
)
from repro.relational.operators import Aggregate
from repro.relational.relation import Relation
from repro.relational.table import Table


def scan(table: Table, alias: str | None = None) -> Relation:
    """Full scan of ``table``, columns qualified by ``alias`` (or table name)."""
    name = alias or table.name
    layout = RowLayout.for_table(name, table.schema.names)
    return Relation(layout, list(table.rows))


def filter_rows(relation: Relation, predicate: Expression) -> Relation:
    """Keep only rows satisfying ``predicate``."""
    check = predicate.bind(relation.layout)
    return Relation(relation.layout, [row for row in relation.rows if check(row)])


def project(relation: Relation, refs: Sequence[ColumnRef]) -> Relation:
    """Project to the given column references, in order (bag semantics)."""
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    layout = RowLayout([(ref.table, ref.column) for ref in refs])
    rows = [tuple(row[p] for p in positions) for row in relation.rows]
    return Relation(layout, rows)


def hash_join(
    left: Relation,
    right: Relation,
    keys: Sequence[tuple[ColumnRef, ColumnRef]],
) -> Relation:
    """Equi-join on ``keys`` (pairs of left-side / right-side references).

    Builds a hash table on the smaller input.  Rows with a NULL in any
    join key never match (SQL: ``NULL = NULL`` is not true) and are
    skipped on both sides.  The output layout is ``left ++ right``.
    """
    if not keys:
        return cross_product(left, right)
    left_positions = [left.layout.resolve(l.table, l.column) for l, _ in keys]
    right_positions = [right.layout.resolve(r.table, r.column) for _, r in keys]

    build_right = len(right.rows) <= len(left.rows)
    if build_right:
        build, probe = right.rows, left.rows
        build_positions, probe_positions = right_positions, left_positions
    else:
        build, probe = left.rows, right.rows
        build_positions, probe_positions = left_positions, right_positions

    buckets: dict[tuple[Any, ...], list[Row]] = {}
    for row in build:
        key = tuple(row[p] for p in build_positions)
        if None in key:
            continue
        buckets.setdefault(key, []).append(row)

    output: list[Row] = []
    for row in probe:
        key = tuple(row[p] for p in probe_positions)
        if None in key:
            continue
        matches = buckets.get(key)
        if not matches:
            continue
        if build_right:
            output.extend(row + match for match in matches)
        else:
            output.extend(match + row for match in matches)
    return Relation(left.layout.concat(right.layout), output)


def cross_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; layout is ``left ++ right``."""
    output = [l + r for l in left.rows for r in right.rows]
    return Relation(left.layout.concat(right.layout), output)


def distinct(relation: Relation) -> Relation:
    """Remove duplicate rows, preserving first-seen order."""
    seen: set[Row] = set()
    output: list[Row] = []
    for row in relation.rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return Relation(relation.layout, output)


def sort(
    relation: Relation,
    refs: Sequence[ColumnRef],
    descending: Sequence[bool] | None = None,
) -> Relation:
    """Sort by the given columns; ``descending[i]`` flips the i-th key.

    NULLs order last in both directions (deterministic NULLS LAST), and
    the sort key never compares ``None`` against a value.
    """
    positions = [relation.layout.resolve(ref.table, ref.column) for ref in refs]
    flags = list(descending) if descending is not None else [False] * len(positions)
    if len(flags) != len(positions):
        raise ExecutionError("sort: descending flags do not match sort keys")
    rows = list(relation.rows)
    # Stable sort applied key-by-key from the least-significant key.
    for position, flag in reversed(list(zip(positions, flags))):
        if flag:
            # reverse=True flips the null flag too, so "is not None" puts
            # NULLs last after the reversal.
            rows.sort(
                key=lambda row: ((v := row[position]) is not None, v),
                reverse=True,
            )
        else:
            rows.sort(key=lambda row: ((v := row[position]) is None, v))
    return Relation(relation.layout, rows)


def limit(relation: Relation, count: int) -> Relation:
    return Relation(relation.layout, relation.rows[:count])


def union_all(relations: Iterable[Relation]) -> Relation:
    """Bag union of relations sharing column count (layout of the first)."""
    relations = list(relations)
    if not relations:
        raise ExecutionError("union_all of zero relations")
    width = len(relations[0].layout)
    rows: list[Row] = []
    for relation in relations:
        if len(relation.layout) != width:
            raise ExecutionError("union_all: mismatched column counts")
        rows.extend(relation.rows)
    return Relation(relations[0].layout, rows)


def _evaluate_aggregate(aggregate: Aggregate, values: list[Any]) -> Any:
    values = [value for value in values if value is not None]
    if aggregate.func == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.func == "SUM":
        return sum(values)
    if aggregate.func == "AVG":
        return sum(values) / len(values)
    if aggregate.func == "MIN":
        return min(values)
    return max(values)


def aggregate_rows(
    relation: Relation,
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[Aggregate],
) -> Relation:
    """GROUP BY + aggregate evaluation.

    With an empty ``group_by`` this produces exactly one row (global
    aggregation), even over an empty input — matching SQL semantics.
    ``COUNT(*)`` counts rows; every other aggregate sees only the
    non-NULL values of its argument.
    """
    group_positions = [
        relation.layout.resolve(ref.table, ref.column) for ref in group_by
    ]
    value_getters: list[Callable[[Row], Any] | None] = []
    for aggregate in aggregates:
        if aggregate.arg is None:
            value_getters.append(None)
        else:
            value_getters.append(aggregate.arg.bind(relation.layout))

    groups: dict[tuple[Any, ...], list[Row]] = {}
    for row in relation.rows:
        groups.setdefault(tuple(row[p] for p in group_positions), []).append(row)
    if not group_by and not groups:
        groups[()] = []

    layout = RowLayout(
        [(ref.table, ref.column) for ref in group_by]
        + [(None, aggregate.alias) for aggregate in aggregates]
    )
    output: list[Row] = []
    for key, rows in groups.items():
        computed = []
        for aggregate, getter in zip(aggregates, value_getters):
            if getter is None:
                computed.append(len(rows))
            else:
                values = [getter(row) for row in rows]
                computed.append(_evaluate_aggregate(aggregate, values))
        output.append(key + tuple(computed))
    return Relation(layout, output)
