"""Schemas: named, typed attribute lists with optional declared domains.

A :class:`Domain` records the basic statistics a data market publishes about
an attribute (Section 2.1 of the paper: "normally the domain of each
attribute and the number of records").  Numeric domains are ``[low, high]``
bounds; categorical domains are explicit value sets (or just a size when the
values themselves are not published).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relational.types import AttributeType


@dataclass(frozen=True)
class Domain:
    """Declared domain of an attribute.

    Exactly one flavour is populated:

    * numeric: ``low``/``high`` inclusive bounds,
    * categorical: ``values`` (a frozenset) or just ``size``.
    """

    low: float | int | None = None
    high: float | int | None = None
    values: frozenset[Any] | None = None
    size: int | None = None

    def __post_init__(self) -> None:
        if self.values is not None and self.size is None:
            object.__setattr__(self, "size", len(self.values))
        if self.low is not None and self.high is not None and self.low > self.high:
            raise SchemaError(f"empty numeric domain [{self.low}, {self.high}]")

    @property
    def is_numeric(self) -> bool:
        return self.low is not None or self.high is not None

    @property
    def width(self) -> float | None:
        """Width of a numeric domain (``high - low``), if fully bounded."""
        if self.low is None or self.high is None:
            return None
        return self.high - self.low

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside the declared domain."""
        if self.values is not None:
            return value in self.values
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    @classmethod
    def numeric(cls, low: float | int, high: float | int) -> "Domain":
        return cls(low=low, high=high)

    @classmethod
    def categorical(cls, values: Iterable[Any]) -> "Domain":
        return cls(values=frozenset(values))


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute, optionally with a declared domain."""

    name: str
    type: AttributeType
    domain: Domain | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")


class Schema:
    """An ordered collection of attributes with fast name lookup.

    Attribute names are case-preserving but matched case-insensitively, the
    way SQL identifiers behave.
    """

    def __init__(self, attributes: Sequence[Attribute]):
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        self._attributes = tuple(attributes)
        self._index: dict[str, int] = {}
        for position, attribute in enumerate(self._attributes):
            key = attribute.name.lower()
            if key in self._index:
                raise SchemaError(f"duplicate attribute {attribute.name!r}")
            self._index[key] = position

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.type.value}" for a in self._attributes)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Index of attribute ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only ``names``, in the order given."""
        return Schema([self.attribute(name) for name in names])

    @classmethod
    def of(cls, **attributes: AttributeType) -> "Schema":
        """Shorthand: ``Schema.of(Country=AttributeType.STRING, ...)``."""
        return cls([Attribute(name, atype) for name, atype in attributes.items()])
