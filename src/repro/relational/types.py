"""Attribute types for the relational substrate.

The data-market setting in the paper needs only a small type system:
integers (also used for YYYYMMDD dates, as in the paper's WHW examples),
floats, and strings.  Types know how to validate and coerce Python values
and whether they are *numeric* (rangeable in REST constraints and boxes) or
*categorical* (point-or-whole-domain in REST constraints, Section 4.2).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class AttributeType(enum.Enum):
    """The value domain of an attribute."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    #: Dates are stored as ``YYYYMMDD`` integers exactly like the paper's
    #: examples (``Date >= 20140601``); kept distinct from INT so schemas
    #: stay self-documenting.
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support range constraints."""
        return self in (AttributeType.INT, AttributeType.FLOAT, AttributeType.DATE)

    @property
    def is_categorical(self) -> bool:
        """Whether values of this type are point-only in REST constraints."""
        return self is AttributeType.STRING

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising :class:`TypeMismatchError`.

        Booleans are rejected for numeric types (``True == 1`` would
        otherwise slip through ``isinstance`` checks).
        """
        if value is None:
            raise TypeMismatchError(f"NULL is not allowed for {self.value}")
        if self in (AttributeType.INT, AttributeType.DATE):
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                raise TypeMismatchError(f"expected {self.value}, got {value!r}")
            return value
        if self is AttributeType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected float, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected string, got {value!r}")
        return value

    def validates(self, value: Any) -> bool:
        """Return ``True`` when ``value`` already conforms to this type."""
        try:
            coerced = self.coerce(value)
        except TypeMismatchError:
            return False
        return coerced == value and type(coerced) is type(value)


def comparable(left: AttributeType, right: AttributeType) -> bool:
    """Whether two attribute types may appear on both sides of a comparison."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric
