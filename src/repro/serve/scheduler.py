"""The concurrent serving front-end: many sessions, one installation.

The paper's deployment unit is one PayLess installation per buyer
organization, shared by all of its end users (Section 3); the conclusion
explicitly plans for "many end users using PayLess simultaneously".  This
module is that serving layer: a :class:`QueryScheduler` runs queries from
many :class:`ServeSession` handles on a thread pool against one shared
:class:`~repro.core.payless.PayLess`, with

* **singleflight coalescing** — overlapping in-flight fetches of one
  remainder box bill exactly one market call
  (:mod:`repro.serve.singleflight`), wired onto the installation's
  planning context when :attr:`ServeConfig.coalesce` is on;
* **fairness / admission control** — per-session ``max_inflight`` (one
  chatty tenant cannot occupy every worker), FIFO dispatch within a
  session, and a bounded pending queue whose overflow blocks submitters
  (backpressure) until :attr:`ServeConfig.admission_timeout_s` runs out,
  then raises :class:`~repro.errors.AdmissionError`;
* **per-session attribution** — spend, coalesced savings, and query
  counts per tenant, summing exactly to the installation's totals (each
  query's stats are token-attributed in the executor, so concurrent
  sessions never steal each other's dollars).

When the installation runs the async transport
(``QueryOptions(transport_mode="async")``), every session's market calls
share the installation's single event loop (:mod:`repro.market.aio`):
worker threads then bound only local planning/evaluation, not in-flight
market calls — one worker can keep ``async_pool_size`` calls in flight
per seller, where a threaded worker tops out at
``max_concurrent_calls``.  Coalescing still works across drivers because
both consult the same singleflight group under the same table locks.

Usage::

    with QueryScheduler(payless, ServeConfig(workers=8)) as scheduler:
        alice = scheduler.session("alice")
        ticket = alice.submit(sql, params)   # async
        result = ticket.result()             # or alice.query(...) sync
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.objectives import ServiceTier
from repro.core.payless import PayLess, QueryResult
from repro.errors import AdmissionError, MarketError
from repro.serve.singleflight import SingleflightGroup

_TICKET_IDS = itertools.count()


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of the serving front-end."""

    #: Worker threads executing queries.
    workers: int = 4
    #: Pending bound: submitted-but-unfinished tickets across all
    #: sessions.  Submitters past it block (backpressure) and then fail.
    max_queue: int = 256
    #: Queries of one session allowed to execute concurrently; further
    #: submissions of that session queue in FIFO order behind them.
    session_max_inflight: int = 2
    #: How long a submitter may block on a full queue before
    #: :class:`~repro.errors.AdmissionError` (``None`` = wait forever).
    admission_timeout_s: float | None = 30.0
    #: Coalesce overlapping in-flight market fetches (singleflight).
    coalesce: bool = True
    #: Service tier of sessions that do not pick one explicitly
    #: (``None`` = plan under the installation's default objective).
    default_tier: ServiceTier | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise MarketError("workers must be >= 1")
        if self.max_queue < 1:
            raise MarketError("max_queue must be >= 1")
        if self.session_max_inflight < 1:
            raise MarketError("session_max_inflight must be >= 1")
        if (
            self.admission_timeout_s is not None
            and self.admission_timeout_s < 0
        ):
            raise MarketError("admission_timeout_s cannot be negative")
        if self.default_tier is not None and not isinstance(
            self.default_tier, ServiceTier
        ):
            raise MarketError(
                f"default_tier must be a ServiceTier, got {self.default_tier!r}"
            )


class QueryTicket:
    """A submitted query's future: block on :meth:`result`."""

    __slots__ = (
        "ticket_id",
        "session_name",
        "sql",
        "params",
        "_event",
        "_result",
        "_error",
    )

    def __init__(self, session_name: str, sql: str, params: tuple):
        self.ticket_id = next(_TICKET_IDS)
        self.session_name = session_name
        self.sql = sql
        self.params = params
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Wait for the query; re-raises whatever the query raised."""
        if not self._event.wait(timeout):
            raise AdmissionError(
                f"ticket #{self.ticket_id} ({self.session_name}) not done "
                f"after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return (
            f"QueryTicket(#{self.ticket_id}, {self.session_name!r}, {state})"
        )


class ServeSession:
    """One tenant's handle onto the scheduler: submit + attribution.

    ``tier`` (a :class:`~repro.core.objectives.ServiceTier`) makes every
    query of this session plan under the tier's objective — one shared
    installation serves cost-sensitive and latency-sensitive tenants side
    by side, and the plan cache keeps their plans apart (the objective is
    part of every cache key).
    """

    def __init__(
        self,
        scheduler: "QueryScheduler",
        name: str,
        tier: ServiceTier | None = None,
    ):
        self.scheduler = scheduler
        self.name = name
        self.tier = tier
        #: FIFO of admitted-but-not-dispatched tickets of this session.
        self._waiting: deque[QueryTicket] = deque()
        #: Queries of this session currently on a worker.
        self._inflight = 0
        #: Attribution (guarded by the scheduler's lock).
        self.queries = 0
        self.failures = 0
        self.transactions = 0
        self.price = 0.0
        self.coalesced_fetches = 0
        self.coalesced_savings_price = 0.0

    def submit(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryTicket:
        """Enqueue a query; returns immediately with its ticket."""
        return self.scheduler.submit(self, sql, params)

    def query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> QueryResult:
        """Submit and wait — the synchronous convenience."""
        return self.submit(sql, params).result()

    def __repr__(self) -> str:
        return (
            f"ServeSession({self.name!r}, {self.queries} queries, "
            f"{self.transactions} trans., "
            f"{self.coalesced_fetches} coalesced)"
        )


class QueryScheduler:
    """Thread-pool serving of one shared installation (see module doc)."""

    def __init__(
        self, payless: PayLess, config: ServeConfig | None = None
    ):
        self.payless = payless
        #: Without an explicit config, the singleflight default comes
        #: from the installation's ``QueryOptions.coalesce``.
        self.config = config or ServeConfig(
            coalesce=getattr(payless, "query_options", None) is None
            or payless.query_options.coalesce
        )
        #: Wire (or unwire) the singleflight layer onto the shared
        #: planning context; the executor picks it up per table access.
        self.coalescer = (
            SingleflightGroup(metrics=payless.metrics)
            if self.config.coalesce
            else None
        )
        payless.context.coalescer = self.coalescer
        self._sessions: dict[str, ServeSession] = {}
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        #: Tickets ready to run, in dispatch (FIFO) order.
        self._ready: deque[tuple[ServeSession, QueryTicket]] = deque()
        #: Submitted-but-unfinished tickets (waiting + ready + running).
        self._outstanding = 0
        self._closed = False
        self.completed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"payless-serve-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- sessions -------------------------------------------------------------

    def session(
        self, name: str, tier: ServiceTier | str | None = None
    ) -> ServeSession:
        """Get or create the serving session for ``name``.

        ``tier`` — a :class:`ServiceTier` or a built-in tier name
        (``"economy"``, ``"interactive"``, ``"realtime"``) — pins the
        session's planning objective; omitted, a new session inherits
        :attr:`ServeConfig.default_tier`.  Re-fetching an existing
        session with a *different* tier raises: a tenant's tier is part
        of its identity, not a per-call flag.
        """
        if isinstance(tier, str):
            tier = ServiceTier.named(tier)
        key = name.lower()
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = self._sessions[key] = ServeSession(
                    self, name, tier if tier is not None else self.config.default_tier
                )
            elif tier is not None and session.tier != tier:
                raise MarketError(
                    f"session {name!r} already exists with tier "
                    f"{session.tier and session.tier.name!r}; "
                    f"requested {tier.name!r}"
                )
            return session

    @property
    def sessions(self) -> list[ServeSession]:
        with self._lock:
            return list(self._sessions.values())

    # -- submission / dispatch ------------------------------------------------

    def submit(
        self,
        session: ServeSession,
        sql: str,
        params: Sequence[Any] = (),
    ) -> QueryTicket:
        ticket = QueryTicket(session.name, sql, tuple(params))
        timeout = self.config.admission_timeout_s
        with self._work:
            while (
                not self._closed
                and self._outstanding >= self.config.max_queue
            ):
                if not self._work.wait(timeout):
                    raise AdmissionError(
                        f"queue full ({self.config.max_queue} outstanding) "
                        f"for {timeout}s; query of {session.name!r} refused"
                    )
            if self._closed:
                raise AdmissionError("scheduler is closed")
            self._outstanding += 1
            session._waiting.append(ticket)
            self._dispatch_locked(session)
        return ticket

    def _dispatch_locked(self, session: ServeSession) -> None:
        """Move this session's waiting tickets to the ready queue while it
        is under its in-flight cap.  Caller holds the lock."""
        moved = False
        while (
            session._waiting
            and session._inflight < self.config.session_max_inflight
        ):
            self._ready.append((session, session._waiting.popleft()))
            session._inflight += 1
            moved = True
        if moved:
            self._work.notify_all()

    # -- the worker loop ------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._work:
                while not self._ready and not self._closed:
                    self._work.wait()
                if self._closed and not self._ready:
                    return
                session, ticket = self._ready.popleft()
            try:
                # Only pass the objective when the session has a tier, so
                # duck-typed installations without the kwarg keep working.
                if session.tier is not None:
                    result = self.payless.query(
                        ticket.sql, ticket.params, objective=session.tier
                    )
                else:
                    result = self.payless.query(ticket.sql, ticket.params)
            except BaseException as error:  # noqa: BLE001 - relayed to waiter
                ticket._error = error
                result = None
            else:
                ticket._result = result
            with self._work:
                session._inflight -= 1
                self._outstanding -= 1
                self.completed += 1
                if result is not None:
                    stats = result.stats
                    session.queries += 1
                    session.transactions += stats.transactions
                    session.price += stats.price
                    session.coalesced_fetches += stats.coalesced_fetches
                    session.coalesced_savings_price += (
                        stats.coalesced_savings_price
                    )
                else:
                    session.failures += 1
                self._dispatch_locked(session)
                self._work.notify_all()
            ticket._event.set()

    # -- lifecycle ------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted ticket has finished."""
        with self._work:
            if not self._work.wait_for(
                lambda: self._outstanding == 0, timeout
            ):
                raise AdmissionError(
                    f"{self._outstanding} tickets still outstanding "
                    f"after {timeout}s"
                )

    def close(self) -> None:
        """Finish the ready queue, stop the workers, unwire the coalescer."""
        with self._work:
            self._closed = True
            self._work.notify_all()
        for thread in self._threads:
            thread.join()
        if self.payless.context.coalescer is self.coalescer:
            self.payless.context.coalescer = None
        if getattr(self.payless, "durability", None) is not None:
            # Workers are joined: nothing appends anymore, so this commit
            # makes every served query durable (the snapshot itself is the
            # installation's job — payless.close()).
            self.payless.durability.commit()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
        self.close()

    # -- reporting ------------------------------------------------------------

    def spend_report(self) -> str:
        """Per-tenant attribution, plus what coalescing saved."""
        lines = [f"serving: {self.payless.bill()}"]
        with self._lock:
            sessions = sorted(
                self._sessions.values(), key=lambda s: s.name
            )
        for session in sessions:
            line = (
                f"  {session.name}: {session.queries} queries, "
                f"{session.transactions} transactions, "
                f"${session.price:g}"
            )
            if session.coalesced_fetches:
                line += (
                    f" (+{session.coalesced_fetches} coalesced fetches, "
                    f"${session.coalesced_savings_price:g} saved)"
                )
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"QueryScheduler({self.config.workers} workers, "
                f"{self._outstanding} outstanding, "
                f"{self.completed} completed, "
                f"coalesce={'on' if self.coalescer else 'off'})"
            )
