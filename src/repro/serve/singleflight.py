"""Singleflight coalescing of in-flight market fetches.

Under concurrent serving, sessions sharing one installation routinely ask
the market for the *same* remainder box at the same time — popular regions
(today's weather for a hot country) are exactly the ones many tenants
query.  Without coordination each session pays for its own copy of data
that is about to land in the shared semantic store anyway.  This module
closes that window: overlapping in-flight fetches of one logical call key
bill exactly one market call, and every waiter shares the leader's rows.

Protocol (leader / follower):

* ``begin(key)`` — atomically join the in-flight :class:`Flight` for
  ``key`` or register a new one.  Exactly one caller per flight is the
  *leader* (``begin`` returned ``True``); it issues the real transport
  fetch and pays.
* the leader calls ``complete(flight, result)`` the moment the fetch
  returns — waiters wake immediately and read the shared
  :class:`~repro.market.transport.FetchResult` off the flight.
* a failing leader calls ``abort(flight, error)``: the flight is removed
  from the registry *before* waiters wake, so a waiter never receives rows
  from a fetch the market did not bill.  Woken waiters loop back through
  coverage re-check + ``begin`` and one of them becomes the new leader
  with its own retry budget (billing stays at-most-once per *successful*
  fetch; a failed leader billed nothing, by the transport's waste
  accounting).
* the leader calls ``release(flight)`` only after it has *recorded* the
  purchased rows into the semantic store (under the store's table lock).

That last point is the invariant the whole design rests on: a completed
flight stays registered until its rows are in the store.  At any instant
after the first ``begin(key)``, a new query for the same box therefore
either joins a live flight (free) or finds the box covered (free) — the
fetch-completed-but-not-yet-recorded window can never double-bill.

Lock order: callers may invoke ``begin``/``release`` while holding a
store table lock (table lock > singleflight lock); this module never
calls back into the store.  ``Flight.wait`` must be called with **no**
locks held.
"""

from __future__ import annotations

import threading
from repro.market.transport import FetchResult


class Flight:
    """One in-flight (or just-landed) logical fetch, shared by its waiters."""

    __slots__ = ("key", "result", "error", "failed", "waiters", "_event")

    def __init__(self, key: str):
        self.key = key
        self.result: FetchResult | None = None
        self.error: Exception | None = None
        self.failed = False
        #: How many followers joined (leader excluded); bookkeeping only.
        self.waiters = 0
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def completed(self) -> bool:
        return self.done and not self.failed

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the leader completed or aborted.  No locks held!"""
        return self._event.wait(timeout)

    def __repr__(self) -> str:
        state = (
            "failed" if self.failed else "done" if self.done else "in-flight"
        )
        return f"Flight({self.key!r}, {state}, {self.waiters} waiters)"


class SingleflightGroup:
    """The per-installation registry of in-flight fetch keys."""

    def __init__(self, metrics=None):
        self._flights: dict[str, Flight] = {}
        self._lock = threading.Lock()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`.
        self.metrics = metrics
        #: Lifetime counters (asserted by tests, shown by benches).
        self.flights_led = 0
        self.fetches_coalesced = 0
        self.flights_aborted = 0

    # -- the protocol ---------------------------------------------------------

    def begin(self, key: str) -> tuple[Flight, bool]:
        """Join ``key``'s flight, or lead a new one.

        Returns ``(flight, is_leader)``.  Callers may hold a store table
        lock (the allowed order); this only touches the registry lock.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                self.fetches_coalesced += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            self.flights_led += 1
            return flight, True

    def complete(self, flight: Flight, result: FetchResult) -> None:
        """Leader: publish the landed result.  The flight STAYS registered
        (new arrivals keep joining for free) until :meth:`release`."""
        flight.result = result
        flight._event.set()

    def abort(self, flight: Flight, error: Exception | None = None) -> None:
        """Leader: the fetch failed — deregister, then wake waiters.

        Deregistering first guarantees no new waiter can join a failed
        flight; woken waiters re-check coverage and re-``begin``.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            self.flights_aborted += 1
        flight.error = error
        flight.failed = True
        flight._event.set()

    def release(self, flight: Flight) -> None:
        """Leader: the rows are recorded in the store — retire the flight.

        Must be called while holding the store's table lock for the
        table the rows were recorded into, so "flight gone" and "box
        covered" switch over atomically from any observer's view.
        Removing only *this* flight object keeps a successor flight
        (started after an abort) untouched.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    # -- introspection --------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def __repr__(self) -> str:
        return (
            f"SingleflightGroup({self.in_flight} in flight, "
            f"{self.flights_led} led, {self.fetches_coalesced} coalesced, "
            f"{self.flights_aborted} aborted)"
        )
