"""Concurrent multi-tenant serving of one shared PayLess installation.

* :mod:`repro.serve.scheduler` — the thread-pool front-end
  (:class:`~repro.serve.scheduler.QueryScheduler`,
  :class:`~repro.serve.scheduler.ServeSession`, admission control).
* :mod:`repro.serve.singleflight` — coalescing of overlapping in-flight
  market fetches (one bill, shared rows).
"""

from repro.serve.scheduler import (
    QueryScheduler,
    QueryTicket,
    ServeConfig,
    ServeSession,
)
from repro.serve.singleflight import Flight, SingleflightGroup

__all__ = [
    "Flight",
    "QueryScheduler",
    "QueryTicket",
    "ServeConfig",
    "ServeSession",
    "SingleflightGroup",
]
