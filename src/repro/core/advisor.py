"""The hindsight advisor: was PayLess right not to download everything?

The paper's introduction frames the buyer's dilemma: "downloading the whole
dataset would become a viable plan when the foreknowledge tells that the
number of transactions incurred by user queries would eventually exceed the
number of transactions required to download the complete data set" — and
the whole point of PayLess is that nobody has that foreknowledge.

This advisor supplies the *hindsight* version, per table: how much the
session actually spent on a table vs what downloading it whole would have
cost, the break-even point, and a recommendation going forward.  Because
PayLess's per-table spend is bounded — once the store covers a table it
never pays again — the recommendation can only ever be "you already
crossed break-even; spend stops soon anyway" or "you're still far below;
keep paying per query", never a regretful open-ended bleed (that is the
Minimizing-Calls failure mode the evaluation shows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.payless import PayLess


@dataclass(frozen=True)
class TableAdvice:
    """The hindsight ledger for one market table."""

    table: str
    dataset: str
    spent_transactions: int
    download_cost: int
    #: Fraction of the table's rows already in the semantic store.
    coverage: float

    @property
    def crossed_break_even(self) -> bool:
        return self.spent_transactions >= self.download_cost

    @property
    def recommendation(self) -> str:
        if self.coverage >= 0.999:
            return (
                "fully cached — every future query on this table is free"
            )
        if self.crossed_break_even:
            return (
                "spend has crossed the bulk-download cost; remaining "
                "uncached regions are the cheap tail and will stop costing "
                "once covered"
            )
        return (
            "well below the bulk-download cost — keep paying per query"
        )


def advise(payless: PayLess) -> list[TableAdvice]:
    """Per-table hindsight advice for one installation's session so far."""
    ledger = payless.market.ledger
    advice: list[TableAdvice] = []
    for dataset in payless.market:
        for market_table in dataset:
            name = market_table.name
            if not payless.context.has_table(name) or not payless.context.is_market(
                name
            ):
                continue
            spent = sum(
                entry.transactions
                for entry in ledger
                if entry.request.table.lower() == name.lower()
            )
            download_cost = dataset.pricing.transactions_for(
                len(market_table.table)
            )
            cached = (
                payless.store.table(name).cached_row_count
                if payless.store.has_table(name)
                else 0
            )
            total_rows = len(market_table.table)
            coverage = cached / total_rows if total_rows else 1.0
            advice.append(
                TableAdvice(
                    table=name,
                    dataset=dataset.name,
                    spent_transactions=spent,
                    download_cost=download_cost,
                    coverage=min(coverage, 1.0),
                )
            )
    return advice


def report(payless: PayLess) -> str:
    """A printable hindsight report for the whole installation."""
    lines = ["Hindsight: per-table spend vs bulk download", ""]
    header = f"{'table':<12} {'spent':>6} {'download':>9} {'cached':>7}  note"
    lines.append(header)
    lines.append("-" * len(header))
    for advice in advise(payless):
        lines.append(
            f"{advice.table:<12} {advice.spent_transactions:>6} "
            f"{advice.download_cost:>9} {advice.coverage:>6.0%}  "
            f"{advice.recommendation}"
        )
    return "\n".join(lines)
