"""Planning objectives, service tiers, and the unified ``QueryOptions``.

The paper's optimizer minimizes one thing: the money paid to the market.
Production buyers also care about wall-clock — the market's REST calls
dominate query time (Section 5) — so the planner enumerates the
money-latency Pareto frontier per subproblem and a :class:`PlanObjective`
picks the point to execute:

* ``min_dollars`` — the paper's objective, and the default.  The planner
  takes the exact single-objective path and chooses plans byte-identical
  to the exhaustive oracle.
* ``min_latency`` — the fastest plan (ties broken by dollars).
* ``dollars_under_latency_ms`` — the cheapest plan whose estimated
  latency fits under a bound; an unmeetable bound raises
  :class:`~repro.errors.InfeasibleObjectiveError` — never a silent
  fallback.
* ``latency_under_dollars`` — the fastest plan under a dollar budget.
* ``weighted`` — minimize ``dollar_weight·dollars +
  latency_weight_per_ms·latency_ms``.

"Dollars" here is the planner's money cost in market *transactions*
(``$1`` per transaction under the default
:class:`~repro.market.pricing.PricingPolicy`); latency estimates come
from the market's :class:`~repro.market.latency.LatencyModel` summed
serially over the plan's market calls.

:class:`ServiceTier` names an objective preset so the serving layer can
plan each tenant's queries under their tier, and :class:`QueryOptions`
is the one documented entry point consolidating the per-installation
knobs that used to be scattered across ``PayLess(...)`` keyword
arguments, :class:`~repro.core.optimizer.OptimizerOptions`, and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import PlanningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.core.optimizer import OptimizerOptions
    from repro.durable.backend import DurabilityConfig
    from repro.market.transport import TransportConfig


#: The five ways a plan can be chosen from the Pareto frontier.
PLAN_OBJECTIVE_KINDS = (
    "min_dollars",
    "min_latency",
    "dollars_under_latency_ms",
    "latency_under_dollars",
    "weighted",
)


@dataclass(frozen=True)
class PlanObjective:
    """What the planner optimizes for — one point on the Pareto frontier.

    Construct through the classmethods (``PlanObjective.min_latency()``,
    ``PlanObjective.dollars_under_latency_ms(500)``, ...) rather than the
    raw constructor; invalid combinations raise
    :class:`~repro.errors.PlanningError` at construction time.  Instances
    are frozen and hashable, so an objective can be part of a plan-cache
    key: two objectives over the same SQL template never share a cached
    plan.
    """

    kind: str = "min_dollars"
    #: Estimated-latency ceiling for ``dollars_under_latency_ms``.
    latency_bound_ms: float | None = None
    #: Estimated-dollars ceiling for ``latency_under_dollars``.
    dollar_bound: float | None = None
    #: Blend weights for ``weighted``: score = dollar_weight·dollars +
    #: latency_weight_per_ms·latency_ms.
    dollar_weight: float = 1.0
    latency_weight_per_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PLAN_OBJECTIVE_KINDS:
            raise PlanningError(
                f"unknown plan objective {self.kind!r}; "
                f"pick one of {PLAN_OBJECTIVE_KINDS}"
            )
        if self.kind == "dollars_under_latency_ms":
            if self.latency_bound_ms is None or self.latency_bound_ms <= 0:
                raise PlanningError(
                    "dollars_under_latency_ms needs a positive "
                    f"latency_bound_ms, got {self.latency_bound_ms!r}"
                )
        elif self.latency_bound_ms is not None:
            raise PlanningError(
                f"latency_bound_ms only applies to dollars_under_latency_ms, "
                f"not {self.kind!r}"
            )
        if self.kind == "latency_under_dollars":
            if self.dollar_bound is None or self.dollar_bound <= 0:
                raise PlanningError(
                    "latency_under_dollars needs a positive dollar_bound, "
                    f"got {self.dollar_bound!r}"
                )
        elif self.dollar_bound is not None:
            raise PlanningError(
                f"dollar_bound only applies to latency_under_dollars, "
                f"not {self.kind!r}"
            )
        if self.dollar_weight < 0 or self.latency_weight_per_ms < 0:
            raise PlanningError("objective weights cannot be negative")
        if self.kind == "weighted" and (
            self.dollar_weight == 0 and self.latency_weight_per_ms == 0
        ):
            raise PlanningError(
                "weighted objective needs at least one nonzero weight"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def min_dollars(cls) -> "PlanObjective":
        """The paper's objective: cheapest plan, latency ignored."""
        return MIN_DOLLARS

    @classmethod
    def min_latency(cls) -> "PlanObjective":
        """The fastest plan; ties broken by dollars."""
        return cls(kind="min_latency")

    @classmethod
    def dollars_under_latency_ms(cls, bound_ms: float) -> "PlanObjective":
        """Cheapest plan estimated to finish within ``bound_ms``."""
        return cls(kind="dollars_under_latency_ms", latency_bound_ms=bound_ms)

    @classmethod
    def latency_under_dollars(cls, bound: float) -> "PlanObjective":
        """Fastest plan estimated to cost at most ``bound`` dollars."""
        return cls(kind="latency_under_dollars", dollar_bound=bound)

    @classmethod
    def weighted(
        cls,
        dollar_weight: float = 1.0,
        latency_weight_per_ms: float = 0.01,
    ) -> "PlanObjective":
        """Minimize a linear blend of dollars and milliseconds."""
        return cls(
            kind="weighted",
            dollar_weight=dollar_weight,
            latency_weight_per_ms=latency_weight_per_ms,
        )

    @classmethod
    def parse(cls, text: str) -> "PlanObjective":
        """Parse a CLI-style objective: a kind name, with ``kind:value``
        for the bounded kinds (e.g. ``dollars_under_latency_ms:500``)."""
        name, sep, value = text.partition(":")
        name = name.strip().lower()
        if name == "min_dollars":
            return MIN_DOLLARS
        if name == "min_latency":
            return cls.min_latency()
        if name in ("dollars_under_latency_ms", "latency_under_dollars"):
            if not sep:
                raise PlanningError(
                    f"objective {name!r} needs a bound, e.g. {name}:500"
                )
            try:
                bound = float(value)
            except ValueError:
                raise PlanningError(
                    f"objective bound must be a number, got {value!r}"
                ) from None
            if name == "dollars_under_latency_ms":
                return cls.dollars_under_latency_ms(bound)
            return cls.latency_under_dollars(bound)
        if name == "weighted":
            if not sep:
                return cls.weighted()
            try:
                weight = float(value)
            except ValueError:
                raise PlanningError(
                    f"weighted latency weight must be a number, got {value!r}"
                ) from None
            return cls.weighted(latency_weight_per_ms=weight)
        raise PlanningError(
            f"unknown plan objective {name!r}; "
            f"pick one of {PLAN_OBJECTIVE_KINDS}"
        )

    # -- introspection --------------------------------------------------------

    @property
    def is_default(self) -> bool:
        """Whether this is the paper's single-objective (min-dollars) path."""
        return self.kind == "min_dollars"

    def fingerprint(self) -> tuple:
        """The hashable identity used inside plan-cache keys."""
        return (
            self.kind,
            self.latency_bound_ms,
            self.dollar_bound,
            self.dollar_weight,
            self.latency_weight_per_ms,
        )

    def describe(self) -> str:
        if self.kind == "dollars_under_latency_ms":
            return f"dollars_under_latency_ms({self.latency_bound_ms:g} ms)"
        if self.kind == "latency_under_dollars":
            return f"latency_under_dollars(${self.dollar_bound:g})"
        if self.kind == "weighted":
            return (
                f"weighted({self.dollar_weight:g}·$ + "
                f"{self.latency_weight_per_ms:g}·ms)"
            )
        return self.kind

    def __str__(self) -> str:
        return self.describe()


#: The paper's objective — the planner default, shared so identity checks
#: (``objective is MIN_DOLLARS``) work for the common case.
MIN_DOLLARS = PlanObjective()


@dataclass(frozen=True)
class AdaptivePolicy:
    """When to re-plan the remaining joins mid-query.

    The executor compares, after each executed join step, the prefix's
    *actual* cardinality against the plan's estimate.  When the two
    diverge by more than ``threshold`` (a ratio, in either direction) and
    the larger of the two clears the ``min_rows`` noise floor, the
    remaining joins are re-planned from the materialized intermediate —
    purchased boxes are already in the semantic store, so re-planning is
    money-free and can only reduce the remaining spend.  ``max_replans``
    bounds the planning work one query may buy itself.

    Off by default (``QueryOptions.adaptive = None``): legacy behaviour
    is byte-identical without a policy.
    """

    #: Divergence ratio that trips a re-plan: actual > threshold·est or
    #: est > threshold·actual.  Must be > 1.
    threshold: float = 2.0
    #: Noise floor: divergence below this many rows (on both sides) never
    #: trips — tiny intermediates re-plan nothing worth re-planning.
    min_rows: float = 10.0
    #: Re-plans allowed per query (each one runs the suffix DP once).
    max_replans: int = 2

    def __post_init__(self) -> None:
        if not self.threshold > 1.0:
            raise PlanningError(
                f"adaptive threshold must be > 1 (a divergence ratio), "
                f"got {self.threshold!r}"
            )
        if self.min_rows < 0:
            raise PlanningError(
                f"adaptive min_rows cannot be negative, got {self.min_rows!r}"
            )
        if isinstance(self.max_replans, bool) or not isinstance(
            self.max_replans, int
        ):
            raise PlanningError(
                f"max_replans must be an integer, got {self.max_replans!r}"
            )
        if self.max_replans < 1:
            raise PlanningError(
                f"max_replans must be >= 1, got {self.max_replans}"
            )

    def diverged(self, estimated: float, actual: float) -> bool:
        """Whether (estimated, actual) prefix cardinalities trip a re-plan."""
        if max(estimated, actual) < self.min_rows:
            return False
        return (
            actual > estimated * self.threshold
            or estimated > actual * self.threshold
        )

    def fingerprint(self) -> tuple:
        """Hashable identity for plan-cache keys (see plancache hygiene)."""
        return (self.threshold, self.min_rows, self.max_replans)

    @classmethod
    def parse(cls, text: str) -> "AdaptivePolicy":
        """Parse a CLI-style spec: ``THRESHOLD[:MIN_ROWS[:MAX_REPLANS]]``."""
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if not parts or len(parts) > 3:
            raise PlanningError(
                f"adaptive spec must be THRESHOLD[:MIN_ROWS[:MAX_REPLANS]], "
                f"got {text!r}"
            )
        try:
            threshold = float(parts[0])
            min_rows = float(parts[1]) if len(parts) > 1 else 10.0
            max_replans = int(parts[2]) if len(parts) > 2 else 2
        except ValueError:
            raise PlanningError(
                f"adaptive spec fields must be numbers, got {text!r}"
            ) from None
        return cls(
            threshold=threshold, min_rows=min_rows, max_replans=max_replans
        )

    def describe(self) -> str:
        return (
            f"adaptive(threshold={self.threshold:g}×, "
            f"min_rows={self.min_rows:g}, max_replans={self.max_replans})"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ServiceTier:
    """A named objective preset attachable to a serving session.

    The scheduler plans every query of a session under its tier's
    objective, so one installation serves latency-sensitive and
    cost-sensitive tenants side by side (see
    :meth:`repro.serve.scheduler.QueryScheduler.session`).
    """

    name: str
    objective: PlanObjective
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanningError("a service tier needs a name")
        if not isinstance(self.objective, PlanObjective):
            raise PlanningError(
                f"tier objective must be a PlanObjective, "
                f"got {self.objective!r}"
            )

    @classmethod
    def named(cls, name: str) -> "ServiceTier":
        """Look up one of the built-in tiers by name."""
        tier = SERVICE_TIERS.get(name.lower())
        if tier is None:
            raise PlanningError(
                f"unknown service tier {name!r}; "
                f"pick one of {tuple(SERVICE_TIERS)}"
            )
        return tier

    def __str__(self) -> str:
        return f"{self.name} ({self.objective.describe()})"


#: The built-in tiers (``ServiceTier.named("economy")`` etc.).
SERVICE_TIERS: dict[str, ServiceTier] = {
    tier.name: tier
    for tier in (
        ServiceTier(
            "economy",
            MIN_DOLLARS,
            "cheapest plan, latency ignored (the paper's behaviour)",
        ),
        ServiceTier(
            "interactive",
            PlanObjective.dollars_under_latency_ms(2000.0),
            "cheapest plan estimated under two seconds",
        ),
        ServiceTier(
            "realtime",
            PlanObjective(kind="min_latency"),
            "fastest plan regardless of dollars (ties broken by dollars)",
        ),
    )
}


@dataclass(frozen=True)
class QueryOptions:
    """Every installation knob, in one documented place.

    Pass it as ``PayLess(market, options=QueryOptions(...))``.  The old
    scattered surface — ``PayLess(transport=..., engine=...,
    max_concurrent_calls=..., prune_bounding_boxes=...)`` and
    ``options=OptimizerOptions(...)`` — keeps working through
    ``DeprecationWarning`` forwarders; see the README migration table.
    """

    # -- what to optimize for -------------------------------------------------
    #: Installation-wide default objective; per-call ``objective=`` on
    #: ``query``/``explain``/... (or a session's ServiceTier) overrides it.
    objective: PlanObjective = MIN_DOLLARS

    # -- planner (was OptimizerOptions + prune_bounding_boxes) ----------------
    use_sqr: bool = True
    use_theorems: bool = True
    #: The unit the money axis counts: "transactions" (PayLess) or
    #: "calls" (the Minimizing-Calls competitor).
    cost_metric: str = "transactions"
    max_bind_attrs: int = 2
    prune: bool = True
    plan_cache_size: int = 256
    #: Algorithm 1 bounding-box pruning inside the semantic rewriter.
    prune_bounding_boxes: bool = True

    # -- execution ------------------------------------------------------------
    #: Local-evaluation engine ("vectorized" or "reference"; None = default).
    engine: str | None = None
    #: In-flight market calls per table access (None = context default).
    max_concurrent_calls: int | None = None
    #: Default for singleflight coalescing when this installation is put
    #: behind a :class:`~repro.serve.scheduler.QueryScheduler` without an
    #: explicit :class:`~repro.serve.scheduler.ServeConfig`.
    coalesce: bool = True
    #: Which fetch driver executes market calls: "threaded" (the
    #: historical thread pool, byte-identical defaults) or "async" (the
    #: pipelined event-loop driver of :mod:`repro.market.aio` with
    #: per-seller connection pools and cross-access prefetch).
    transport_mode: str = "threaded"
    #: Per-seller connection pool size — and therefore the in-flight cap —
    #: of the async driver.  Ignored under "threaded", whose cap stays
    #: ``max_concurrent_calls``.
    async_pool_size: int = 64
    #: Cross-access prefetch under the async driver: rewrite the plan's
    #: certain (non-bind) upcoming accesses at query start and put their
    #: remainder calls in flight while earlier joins execute.  Only what
    #: the chosen plan will definitely buy is prefetched, so it cannot
    #: waste dollars; disabled automatically under adaptive re-planning.
    prefetch: bool = True

    # -- transport (was PayLess(transport=TransportConfig(...))) --------------
    #: A fully-specified transport config; the convenience fields below
    #: overlay it (or a default config) when set.
    transport: "TransportConfig | None" = None
    partial_results: bool | None = None
    max_retries: int | None = None
    #: Fault injection (0 = off) with a deterministic seed.
    fault_rate: float = 0.0
    fault_seed: int = 0

    # -- durability -----------------------------------------------------------
    #: Crash-safe state: a state directory path (str/Path) or a full
    #: :class:`~repro.durable.backend.DurabilityConfig`.  ``None`` keeps
    #: the installation in-memory only (the historical behaviour).
    durability: "DurabilityConfig | str | Path | None" = None

    # -- adaptive re-optimization ---------------------------------------------
    #: Mid-query re-planning policy; ``None`` (the default) keeps the
    #: static pipeline byte-identical to pre-adaptive behaviour.
    adaptive: AdaptivePolicy | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.objective, PlanObjective):
            raise PlanningError(
                f"objective must be a PlanObjective, got {self.objective!r}"
            )
        if self.adaptive is not None and not isinstance(
            self.adaptive, AdaptivePolicy
        ):
            raise PlanningError(
                f"adaptive must be an AdaptivePolicy or None, "
                f"got {self.adaptive!r}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise PlanningError(
                f"fault_rate must be within [0, 1], got {self.fault_rate!r}"
            )
        if self.transport_mode not in ("threaded", "async"):
            raise PlanningError(
                f"transport_mode must be 'threaded' or 'async', "
                f"got {self.transport_mode!r}"
            )
        if self.async_pool_size < 1:
            raise PlanningError(
                f"async_pool_size must be >= 1, got {self.async_pool_size!r}"
            )
        # Delegate the planner-knob validation (and fail fast at
        # construction, not first query).
        self.optimizer_options()

    # -- derived configs ------------------------------------------------------

    def optimizer_options(self) -> "OptimizerOptions":
        """The planner's view of these options."""
        from repro.core.optimizer import OptimizerOptions

        return OptimizerOptions(
            use_sqr=self.use_sqr,
            use_theorems=self.use_theorems,
            objective=self.cost_metric,
            max_bind_attrs=self.max_bind_attrs,
            prune=self.prune,
            plan_cache_size=self.plan_cache_size,
            plan_objective=self.objective,
        )

    def durability_config(self):
        """The durable backend's view (None = in-memory only)."""
        if self.durability is None:
            return None
        from repro.durable.backend import DurabilityConfig

        if isinstance(self.durability, DurabilityConfig):
            return self.durability
        return DurabilityConfig(state_dir=self.durability)

    def transport_config(self) -> "TransportConfig | None":
        """The money-safe transport's view (None = library defaults)."""
        from repro.market.faults import FaultPolicy
        from repro.market.transport import TransportConfig

        overlays = {}
        if self.partial_results is not None:
            overlays["partial_results"] = self.partial_results
        if self.max_retries is not None:
            overlays["max_retries"] = self.max_retries
        if self.fault_rate > 0.0:
            overlays["faults"] = FaultPolicy.uniform(
                seed=self.fault_seed, rate=self.fault_rate
            )
        if self.transport is None and not overlays:
            return None
        base = self.transport if self.transport is not None else TransportConfig()
        return replace(base, **overlays) if overlays else base

    @classmethod
    def from_optimizer_options(cls, options: "OptimizerOptions", **extra) -> "QueryOptions":
        """Adapt a legacy :class:`OptimizerOptions` (the forwarder path)."""
        return cls(
            objective=options.plan_objective,
            use_sqr=options.use_sqr,
            use_theorems=options.use_theorems,
            cost_metric=options.objective,
            max_bind_attrs=options.max_bind_attrs,
            prune=options.prune,
            plan_cache_size=options.plan_cache_size,
            **extra,
        )

    def with_objective(self, objective: PlanObjective) -> "QueryOptions":
        return replace(self, objective=objective)
