"""The evaluation's competitor systems (Section 5).

* **Minimizing Calls** — an optimizer in the style of limited-access-pattern
  query planners [Florescu et al., SIGMOD'99]: same plan machinery, but the
  objective is the *number of REST calls*, and there is no semantic
  rewriting.  It happily downloads a broad superset in one call where
  PayLess would pay per-page for less data.
* **Download All** — fetch each touched table in its entirety the first time
  any query needs it, then answer every query locally, free, forever.
  Optimal in hindsight for scan-heavy workloads; ruinous when the user asks
  three queries and walks away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import PlanningContext
from repro.errors import ExecutionError
from repro.market.server import DataMarket
from repro.relational.database import Database
from repro.relational.engine import evaluate
from repro.relational.operators import Relation
from repro.relational.query import LogicalQuery
from repro.relational.table import Table


@dataclass
class DownloadAllResult:
    """Mirror of :class:`~repro.core.executor.ExecutionResult` for the baseline."""

    relation: Relation
    transactions: int
    price: float
    calls: int
    fetched_records: int
    #: Simulated wall-clock spent on REST calls (serial sum).
    market_time_ms: float = 0.0
    #: Download-All issues one whole-table call per first touch — there is
    #: nothing to overlap, so the critical path equals the serial sum.
    market_time_critical_path_ms: float = 0.0


class DownloadAllStrategy:
    """Download whole tables on first touch; afterwards everything is local."""

    def __init__(self, context: PlanningContext):
        self.context = context
        self._downloaded = Database()

    @property
    def downloaded_tables(self) -> list[str]:
        return self._downloaded.names()

    def upfront_cost(self, tables: list[str]) -> int:
        """Transactions needed to download ``tables`` whole (for reporting)."""
        total = 0
        for name in tables:
            dataset, market_table = self.context.market.find_table(name)
            total += dataset.pricing.transactions_for(len(market_table.table))
        return total

    def execute(self, query: LogicalQuery) -> DownloadAllResult:
        ledger = self.context.market.ledger
        transactions_before = ledger.total_transactions
        price_before = ledger.total_price
        calls_before = ledger.total_calls
        records_before = ledger.total_records
        elapsed_before = ledger.total_elapsed_ms

        staging = Database()
        for name in query.tables:
            if self.context.is_market(name):
                staging.add(self._ensure_downloaded(name))
            else:
                staging.add(self.context.local_db.table(name))
        relation = evaluate(staging, query)
        return DownloadAllResult(
            relation=relation,
            transactions=ledger.total_transactions - transactions_before,
            price=ledger.total_price - price_before,
            calls=ledger.total_calls - calls_before,
            fetched_records=ledger.total_records - records_before,
            market_time_ms=ledger.total_elapsed_ms - elapsed_before,
            market_time_critical_path_ms=(
                ledger.total_elapsed_ms - elapsed_before
            ),
        )

    def _ensure_downloaded(self, name: str) -> Table:
        if name in self._downloaded:
            return self._downloaded.table(name)
        response = self.context.market.download_table(name)
        table = Table(name, response.schema)
        table.extend(response.rows)
        return self._downloaded.add(table)
