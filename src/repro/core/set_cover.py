"""Chvátal's greedy weighted set cover.

The second step of the paper's remainder-query generation (Section 4.2):
given the elementary boxes (elements) and candidate bounding boxes (sets,
each weighted by its estimated transactions), choose a cover of minimum
total weight.  The greedy rule — pick the set minimizing
``cost / newly covered elements`` — gives the classic ``1 + ln(n)``
approximation [Chvátal 1979] in ``O(|B| · |E|)`` time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanningError


@dataclass(frozen=True)
class CoverCandidate:
    """One candidate set: which elements it covers and what it costs."""

    covers: frozenset[int]
    cost: float

    def __post_init__(self) -> None:
        if not self.covers:
            raise PlanningError("a cover candidate must cover something")
        if self.cost < 0:
            raise PlanningError("cover cost cannot be negative")


def greedy_weighted_set_cover(
    element_count: int,
    candidates: Sequence[CoverCandidate],
) -> list[int]:
    """Indices of the chosen candidates covering all ``element_count`` elements.

    Implemented as *lazy greedy*: candidates sit in a heap keyed by their
    last-known ``cost / gain`` ratio; because gains only shrink as elements
    get covered (ratios only grow), a popped candidate whose ratio is still
    current is globally optimal for this step.  Ties break toward larger
    gain then lower index — deterministic for reproducible plans.  Raises
    :class:`PlanningError` when no full cover exists.
    """
    if element_count == 0:
        return []
    import heapq

    uncovered = set(range(element_count))
    chosen: list[int] = []
    heap: list[tuple[float, int, int, int]] = []  # (ratio, -gain, index, gain)
    for index, candidate in enumerate(candidates):
        gain = len(candidate.covers)
        if gain:
            heap.append((candidate.cost / gain, -gain, index, gain))
    heapq.heapify(heap)

    while uncovered:
        while heap:
            ratio, __, index, recorded_gain = heapq.heappop(heap)
            gain = len(candidates[index].covers & uncovered)
            if gain == 0:
                continue
            if gain == recorded_gain:
                chosen.append(index)
                uncovered -= candidates[index].covers
                break
            heapq.heappush(
                heap, (candidates[index].cost / gain, -gain, index, gain)
            )
        else:
            raise PlanningError(
                f"set cover infeasible: {len(uncovered)} elements uncoverable"
            )
    return chosen


def cover_cost(candidates: Sequence[CoverCandidate], chosen: Sequence[int]) -> float:
    """Total cost of a chosen cover."""
    return sum(candidates[index].cost for index in chosen)
