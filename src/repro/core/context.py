"""The planning/execution context: everything PayLess knows at query time.

Bundles the market connection, the catalog of market-table statistics, the
semantic store, the rewriter, the buyer's local database, and cheap exact
statistics about local tables.  Built once by the :class:`~repro.core.
payless.PayLess` facade at registration time and threaded through the
optimizer, baselines, and executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rewriter import SemanticRewriter
from repro.errors import PlanningError
from repro.market.server import DataMarket
from repro.market.transport import MarketTransport, TransportConfig
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import Tracer
from repro.relational.database import Database
from repro.relational.engine import DEFAULT_EXECUTION, ExecutionConfig
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.semstore.store import SemanticStore
from repro.stats.catalog import Catalog


@dataclass(frozen=True)
class LocalTableInfo:
    """Exact, free statistics about a local table."""

    table: str
    cardinality: int
    distinct: dict[str, int]

    def distinct_of(self, attribute: str) -> int:
        return self.distinct.get(attribute.lower(), self.cardinality)

    @classmethod
    def from_table(cls, table: Table) -> "LocalTableInfo":
        distinct = {
            attribute.name.lower(): len(table.distinct(attribute.name))
            for attribute in table.schema
        }
        return cls(
            table=table.name,
            cardinality=len(table),
            distinct=distinct,
        )


class PlanningContext:
    """Shared state for planning and executing one buyer's queries."""

    #: Default in-flight REST call bound for executors built on a context
    #: that does not override it.  1 = serial fetch.
    DEFAULT_MAX_CONCURRENT_CALLS = 4

    def __init__(
        self,
        market: DataMarket,
        catalog: Catalog,
        store: SemanticStore,
        rewriter: SemanticRewriter,
        local_db: Database,
        max_concurrent_calls: int | None = None,
        transport: TransportConfig | MarketTransport | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        execution: ExecutionConfig | None = None,
        transport_mode: str = "threaded",
        async_pool_size: int | None = None,
        prefetch: bool = True,
    ):
        self.market = market
        self.catalog = catalog
        self.store = store
        self.rewriter = rewriter
        self.local_db = local_db
        #: Observability: the query tracer (disabled by default — near-zero
        #: overhead) and the metrics registry (the process-wide default
        #: unless the installation wants isolation).  Threaded from here
        #: into the rewriter and the transport so every pipeline layer
        #: reports into the same trace/registry.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else REGISTRY
        #: Which local-evaluation engine runs the final joins/aggregates
        #: (see :class:`repro.relational.engine.ExecutionConfig`).
        self.execution = execution if execution is not None else DEFAULT_EXECUTION
        self.rewriter.tracer = self.tracer
        self.rewriter.metrics = self.metrics
        #: The money-safe transport every executor call goes through (see
        #: :mod:`repro.market.transport`).  Lives here, not on the
        #: executor: circuit breakers must remember failures across
        #: queries.  Accepts a ready transport or just its config.
        if isinstance(transport, MarketTransport):
            self.transport = transport
        else:
            self.transport = MarketTransport(
                market, transport, metrics=self.metrics
            )
        if max_concurrent_calls is not None and max_concurrent_calls < 1:
            raise PlanningError("max_concurrent_calls must be >= 1")
        #: Upper bound on concurrently in-flight market calls per table
        #: access during execution (see :mod:`repro.core.executor`).
        self.max_concurrent_calls = (
            max_concurrent_calls
            if max_concurrent_calls is not None
            else self.DEFAULT_MAX_CONCURRENT_CALLS
        )
        if transport_mode not in ("threaded", "async"):
            raise PlanningError(
                f"transport_mode must be 'threaded' or 'async', "
                f"got {transport_mode!r}"
            )
        #: The fetch driver executors use.  "threaded" keeps the
        #: historical thread-pool path byte-identical; "async" attaches a
        #: pipelined event-loop driver with per-seller connection pools
        #: (:mod:`repro.market.aio`) wrapping the *same* transport above.
        self.transport_mode = transport_mode
        #: Whether async executors prefetch upcoming non-bind accesses.
        self.prefetch = prefetch
        if transport_mode == "async":
            from repro.market.aio import DEFAULT_POOL_SIZE, AsyncMarketTransport

            self.async_transport = AsyncMarketTransport(
                self.transport,
                pool_size=(
                    async_pool_size
                    if async_pool_size is not None
                    else DEFAULT_POOL_SIZE
                ),
                metrics=self.metrics,
            )
        else:
            self.async_transport = None
        #: Singleflight group coalescing overlapping in-flight market
        #: fetches across concurrent sessions (``None`` = no coalescing).
        #: Wired by :class:`~repro.serve.scheduler.QueryScheduler`; the
        #: executor consults it per remainder call.
        self.coalescer = None
        #: Durable WAL backend (``None`` = in-memory only).  Wired by
        #: :class:`~repro.core.payless.PayLess` when ``QueryOptions``
        #: carries a durability config; the executor journals purchases
        #: through it inside the record→release window.
        self.durability = None
        self._local_info: dict[str, LocalTableInfo] = {}
        self._dataset_of: dict[str, str] = {}
        self._schemas: dict[str, Schema] = {}

    # -- registration -----------------------------------------------------------

    def register_local(self, table: Table) -> None:
        key = table.name.lower()
        self._local_info[key] = LocalTableInfo.from_table(table)
        self._schemas[key] = table.schema

    def register_market_table(self, dataset: str, table: str, schema: Schema) -> None:
        key = table.lower()
        self._dataset_of[key] = dataset
        self._schemas[key] = schema

    # -- lookups ----------------------------------------------------------------

    def is_market(self, table: str) -> bool:
        return table.lower() in self._dataset_of

    def is_local(self, table: str) -> bool:
        return table.lower() in self._local_info

    def dataset_of(self, table: str) -> str:
        try:
            return self._dataset_of[table.lower()]
        except KeyError:
            raise PlanningError(f"{table!r} is not a market table") from None

    def local_info(self, table: str) -> LocalTableInfo:
        try:
            return self._local_info[table.lower()]
        except KeyError:
            raise PlanningError(f"{table!r} is not a local table") from None

    def tuples_per_transaction(self, table: str) -> int:
        dataset = self.market.dataset(self.dataset_of(table))
        return dataset.pricing.tuples_per_transaction

    @property
    def latency_model(self):
        """The latency model the planner estimates plan wall-clock with.

        The market's own model when it has one; an instant market (the
        test/default configuration) falls back to
        :data:`~repro.market.latency.DEFAULT_LATENCY` so the latency axis
        of the Pareto frontier stays meaningful — planning against an
        all-zero model would make every plan "equally fast" and reduce
        every objective to min-dollars.
        """
        model = self.market.latency
        if model.is_instant:
            from repro.market.latency import DEFAULT_LATENCY

            return DEFAULT_LATENCY
        return model

    # -- SchemaProvider protocol (for the SQL analyzer) ---------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._schemas

    def schema_of(self, name: str) -> Schema:
        try:
            return self._schemas[name.lower()]
        except KeyError:
            raise PlanningError(f"unknown table {name!r}") from None
