"""The epoch-keyed parameterized plan cache.

Repeat templates dominate the workloads PayLess targets (the harness's
Zipfian sessions re-issue the same parameterized SQL over and over), yet
planning started from scratch on every call.  This module caches the
:class:`~repro.core.optimizer.PlanningResult` (and the analyzed
:class:`~repro.relational.query.LogicalQuery`) of a query so a repeat
skips parse + analyze + the whole DP.

**Key.**  A cached plan is only valid for the exact planning inputs, so
the key combines:

* the *template* — the parsed AST's deterministic ``repr`` with ``?``
  parameter holes left in place (whitespace variations of the same SQL
  normalize to one template), or the logical query's ``repr`` for
  pre-compiled queries;
* the *parameter values* — PayLess never reuses a "generic" plan across
  parameters: different constants mean different request regions and
  therefore different dollars;
* the installation's *planner fingerprint* — optimizer options, engine,
  and transport configuration (built by
  :meth:`~repro.core.payless.PayLess._planner_fingerprint`).

**Invalidation.**  Planning consults the semantic store, so a stored
plan is stamped with each referenced market table's mutation ``epoch``
and the store ``clock`` (the same signals the rewrite memo keys on).
A lookup re-validates the stamp: any purchase into a referenced table —
or a clock advance that may expire coverage — invalidates the entry,
guaranteeing a cache hit returns byte-identical output to fresh
planning.  Entries are stamped *at planning time*, before execution, so
a query whose own purchases mutate the store immediately invalidates its
entry for the next repeat.

Bounded LRU; ``OptimizerOptions.plan_cache_size`` sets the capacity and
``0`` disables caching entirely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.sqlparser.ast import SelectStatement
from repro.sqlparser.parser import parse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimizer import PlanningResult
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.relational.query import LogicalQuery
    from repro.semstore.store import SemanticStore


@dataclass
class CacheEntry:
    """One cached planning outcome plus its validity stamp."""

    logical: "LogicalQuery"
    planning: "PlanningResult"
    #: (table, epoch) per referenced market table, at planning time.
    epochs: tuple[tuple[str, int], ...]
    #: Store clock at planning time (coverage may expire as it advances).
    clock: float
    hits: int = 0


class PlanCache:
    """LRU of planning results keyed on template + params + fingerprint."""

    def __init__(
        self,
        store: "SemanticStore",
        capacity: int = 256,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ):
        self._store = store
        self.capacity = capacity
        self._metrics = metrics
        self._tracer = tracer
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._parsed: OrderedDict[str, SelectStatement] = OrderedDict()
        #: Guards both LRU maps and the counters.  Validation probes the
        #: store's per-table locks from inside (cache lock -> table lock is
        #: the allowed order; the store never calls back into the cache).
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._parsed.clear()

    # ------------------------------------------------------------------- keys

    def parse_sql(self, sql: str) -> SelectStatement:
        """Parse ``sql``, memoizing the AST by exact text.

        Statements are analyze-only after parsing (``PreparedQuery``
        already re-analyzes one shared AST per execution), so sharing the
        parsed object is safe.
        """
        if not self.enabled:
            return parse(sql)
        with self._lock:
            statement = self._parsed.get(sql)
            if statement is not None:
                self._parsed.move_to_end(sql)
                return statement
        statement = parse(sql)
        with self._lock:
            self._parsed[sql] = statement
            while len(self._parsed) > self.capacity:
                self._parsed.popitem(last=False)
        return statement

    @staticmethod
    def statement_key(
        statement: SelectStatement,
        params: Sequence[Any],
        fingerprint: tuple,
    ) -> tuple | None:
        """Cache key for a parsed template bound to ``params``.

        The AST ``repr`` is the normalized template (``Parameter`` holes
        stay holes); parameter values join the key separately.  Returns
        ``None`` (bypassing the cache) for unhashable parameter values.
        """
        key = ("sql", repr(statement), tuple(params), fingerprint)
        return _hashable_or_none(key)

    @staticmethod
    def logical_key(logical: "LogicalQuery", fingerprint: tuple) -> tuple | None:
        """Cache key for a pre-compiled logical query (harness fast path).

        Every expression/constraint class is a frozen dataclass with a
        deterministic ``repr``, so the query's ``repr`` is a faithful
        structural fingerprint with the parameters already substituted.
        """
        return ("logical", repr(logical), fingerprint)

    # ----------------------------------------------------------------- lookup

    def lookup(self, key: tuple | None) -> CacheEntry | None:
        """Return a *valid* entry for ``key``, or record a miss."""
        if key is None or not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not self._valid(entry):
                del self._entries[key]
                self.invalidations += 1
                if self._metrics is not None:
                    self._metrics.counter("plan_cache_invalidations").inc()
                entry = None
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.hits += 1
        if entry is None:
            if self._metrics is not None:
                self._metrics.counter("plan_cache_misses").inc()
            self._event(hit=False)
            return None
        if self._metrics is not None:
            self._metrics.counter("plan_cache_hits").inc()
        self._event(hit=True)
        return entry

    def insert(
        self, key: tuple | None, logical: "LogicalQuery", planning: "PlanningResult"
    ) -> None:
        """Stamp and store a fresh planning outcome (LRU-evicting)."""
        if key is None or not self.enabled:
            return
        store = self._store
        epochs = tuple(
            sorted(
                (name, store.epoch_of(name))
                for name in {t.lower() for t in logical.tables}
                if store.has_table(name)
            )
        )
        with self._lock:
            self._entries[key] = CacheEntry(
                logical=logical,
                planning=planning,
                epochs=epochs,
                clock=store.clock,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.counter("plan_cache_evictions").inc()

    def _valid(self, entry: CacheEntry) -> bool:
        if self._store.clock != entry.clock:
            return False
        for table, epoch in entry.epochs:
            if self._store.epoch_of(table) != epoch:
                return False
        return True

    def _event(self, hit: bool) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event("plan_cache", hit=hit)

    def __repr__(self) -> str:
        return (
            f"PlanCache({self.size}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.invalidations} invalidations)"
        )


def _hashable_or_none(key: tuple) -> tuple | None:
    try:
        hash(key)
    except TypeError:
        return None
    return key
