"""Multi-query (batch) optimization — the paper's future-work sketch.

The conclusion of the paper: "we will incorporate multi-query optimization
in PayLess if users are willing to defer theirs to become a batch."  When
several queries are available at once, the *order* they execute in changes
the bill: running a broad query first makes narrower overlapping queries
free, while running the narrow ones first buys the same region in fragments
— and every fragment pays its own ``ceil(rows/t)`` rounding.

The heuristic here is deliberately simple (it is future work in the paper):
estimate each query's request-region size per market table and execute in
descending containment order — queries whose regions are supersets of
others go first; ties break toward larger estimated regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.payless import PayLess, QueryResult
from repro.relational.query import LogicalQuery
from repro.semstore.boxes import Box, covers_fully


@dataclass
class BatchResult:
    """Results in the original submission order plus the total bill."""

    results: list[QueryResult]
    execution_order: list[int]
    total_transactions: int
    total_price: float


def _request_regions(
    payless: PayLess, query: LogicalQuery
) -> dict[str, list[Box]]:
    """The per-market-table region each query asks for (pre-binding)."""
    regions: dict[str, list[Box]] = {}
    for table in query.tables:
        if not payless.context.is_market(table):
            continue
        statistics = payless.catalog.statistics(table)
        boxes = statistics.space.boxes_for_constraints(
            query.constraints_for(table)
        )
        regions[table.lower()] = boxes
    return regions


def _region_size(payless: PayLess, regions: dict[str, list[Box]]) -> float:
    total = 0.0
    for table, boxes in regions.items():
        statistics = payless.catalog.statistics(table)
        total += sum(statistics.histogram.estimate(box) for box in boxes)
    return total


def _contains(outer: dict[str, list[Box]], inner: dict[str, list[Box]]) -> bool:
    """Whether ``outer``'s regions cover ``inner``'s on every shared table."""
    shared = set(outer) & set(inner)
    if not shared:
        return False
    for table in shared:
        for box in inner[table]:
            if not covers_fully(box, outer[table]):
                return False
    return True


def plan_batch_order(
    payless: PayLess, queries: Sequence[LogicalQuery]
) -> list[int]:
    """Execution order: containing queries first, then by region size."""
    regions = [_request_regions(payless, query) for query in queries]
    sizes = [_region_size(payless, region) for region in regions]
    # Count how many other queries each one (at least partially) dominates.
    dominated = [0] * len(queries)
    for i, outer in enumerate(regions):
        for j, inner in enumerate(regions):
            if i != j and _contains(outer, inner):
                dominated[i] += 1
    order = sorted(
        range(len(queries)),
        key=lambda index: (dominated[index], sizes[index]),
        reverse=True,
    )
    return order


def execute_batch(
    payless: PayLess, batch: Sequence[tuple[str, Sequence[Any]]]
) -> BatchResult:
    """Compile, reorder, and execute a batch of ``(sql, params)`` pairs.

    Results are returned in the original submission order; only execution
    order (and therefore the bill) is affected by the reordering.
    """
    compiled = [payless.compile(sql, params) for sql, params in batch]
    order = plan_batch_order(payless, compiled)
    results: list[QueryResult | None] = [None] * len(batch)
    transactions = 0
    price = 0.0
    for index in order:
        outcome = payless.execute_logical(compiled[index])
        results[index] = outcome
        transactions += outcome.stats.transactions
        price += outcome.stats.price
    return BatchResult(
        results=list(results),
        execution_order=order,
        total_transactions=transactions,
        total_price=price,
    )
