"""PayLess core: optimizer, semantic rewriting, execution, baselines."""

from repro.core.advisor import TableAdvice, advise
from repro.core.baselines import DownloadAllResult, DownloadAllStrategy
from repro.core.batch import BatchResult, execute_batch, plan_batch_order
from repro.core.budget import (
    BudgetedPayLess,
    BudgetExceededError,
    BudgetMode,
    BudgetPolicy,
    BudgetReport,
)
from repro.core.bounding_boxes import (
    CandidateBox,
    GenerationResult,
    generate_candidates,
)
from repro.core.context import LocalTableInfo, PlanningContext
from repro.core.executor import ExecutionResult, Executor
from repro.core.optimizer import (
    Optimizer,
    OptimizerOptions,
    PlanningResult,
    plan_space_baseline,
    plan_space_payless,
)
from repro.core.organization import Organization, UserSession
from repro.core.payless import PayLess, QueryResult
from repro.core.plancache import CacheEntry, PlanCache
from repro.core.prepared import PreparedQuery
from repro.core.persistence import load_state, save_state
from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    LocalScanNode,
    MarketAccessNode,
    PlanNode,
    market_leaves,
    plan_price,
)
from repro.core.rewriter import RemainderQuery, RewriteResult, SemanticRewriter
from repro.core.set_cover import (
    CoverCandidate,
    cover_cost,
    greedy_weighted_set_cover,
)

__all__ = [
    "BatchResult",
    "TableAdvice",
    "advise",
    "BudgetExceededError",
    "BudgetMode",
    "BudgetPolicy",
    "BudgetReport",
    "BudgetedPayLess",
    "CandidateBox",
    "CoverCandidate",
    "DownloadAllResult",
    "DownloadAllStrategy",
    "ExecutionResult",
    "Executor",
    "GenerationResult",
    "JoinNode",
    "LocalBlockNode",
    "LocalScanNode",
    "LocalTableInfo",
    "MarketAccessNode",
    "CacheEntry",
    "Optimizer",
    "Organization",
    "OptimizerOptions",
    "PayLess",
    "PlanCache",
    "PlanNode",
    "PlanningContext",
    "PlanningResult",
    "PreparedQuery",
    "QueryResult",
    "RemainderQuery",
    "RewriteResult",
    "SemanticRewriter",
    "UserSession",
    "cover_cost",
    "execute_batch",
    "plan_batch_order",
    "generate_candidates",
    "greedy_weighted_set_cover",
    "load_state",
    "market_leaves",
    "save_state",
    "plan_price",
    "plan_space_baseline",
    "plan_space_payless",
]
