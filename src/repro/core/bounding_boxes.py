"""Algorithm 1: candidate remainder-query (bounding-box) generation.

Given the elementary boxes of the missing-data region V̄, enumerate bounding
boxes from the per-dimension separator sets and keep the promising ones:

* **pruning rule 1** — only *minimum* bounding boxes survive: a candidate is
  dropped when a strictly smaller valid box contains the same elementary
  boxes (Figure 7c: B2 ⊋ B1 with the same contents is pruned);
* **pruning rule 2** — a candidate is dropped when its estimated price is
  not below the summed prices of the elementary boxes it contains
  (Figure 7c: B3 at 4 transactions loses to fetching E3 and E6 separately
  for 2).

Categorical dimensions only admit single-value or whole-domain extents
(Figure 8), and whole-domain is additionally invalid for *bound*
categorical attributes.  Elementary boxes themselves are always available
to the set-cover stage as fallback candidates (a cover must exist), but are
not counted as "generated bounding boxes" for the Figure 15 metric.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.semstore.boxes import Box, Extent
from repro.semstore.space import BoxSpace

#: Candidate-enumeration budget; once exhausted the result is flagged
#: ``capped`` and the set cover proceeds with what was generated (the
#: elementary fallbacks always keep it feasible).
DEFAULT_ENUMERATION_CAP = 20_000

#: With more elementary boxes than this, enumeration is skipped outright —
#: per-candidate work grows with the element count, and a remainder this
#: fragmented gains little from merged bounding boxes anyway.
DEFAULT_ELEMENTARY_CAP = 160

#: Per-axis candidate-extent budget; beyond it the axis falls back to
#: elementary-own extents + the tight span (see :func:`_axis_extents`).
AXIS_EXTENT_CAP = 512

Estimator = Callable[[Box], float]


@dataclass(frozen=True)
class CandidateBox:
    """A candidate remainder query: the box, its price, what it covers."""

    box: Box
    estimated_rows: float
    transactions: int
    covers: frozenset[int]  # indices into the elementary-box list


@dataclass
class GenerationResult:
    """Output of Algorithm 1 plus instrumentation for Figure 15."""

    elementary: list[Box]
    elementary_candidates: list[CandidateBox]
    merged_candidates: list[CandidateBox]
    #: Raw bounding boxes enumerated before pruning ("No Pruning" series).
    enumerated_count: int = 0
    #: Bounding boxes surviving both pruning rules ("PayLess" series).
    kept_count: int = 0
    #: Whether the enumeration cap forced the elementary-only fallback.
    capped: bool = False

    @property
    def all_candidates(self) -> list[CandidateBox]:
        return self.elementary_candidates + self.merged_candidates


def _price(estimated_rows: float, tuples_per_transaction: int) -> int:
    if estimated_rows <= 0:
        return 0
    return math.ceil(estimated_rows / tuples_per_transaction)


def _axis_extents(
    space: BoxSpace, elementary: Sequence[Box], axis: int
) -> list[Extent]:
    """Candidate extents for one dimension, respecting Figure 8 validity.

    Numeric extents pair a *low edge* with a *high edge* of the elementary
    boxes: any other extent cannot be minimal (pruning rule 1 would snap it
    to these edges anyway), so enumerating them would be wasted work.
    """
    dimension = space.dimensions[axis]
    if dimension.is_categorical:
        positions = sorted(
            {
                position
                for box in elementary
                for position in range(box.extents[axis][0], box.extents[axis][1])
            }
        )
        extents: list[Extent] = [(p, p + 1) for p in positions]
        if not dimension.is_bound and dimension.full_extent not in extents:
            extents.append(dimension.full_extent)
        return extents
    lows = sorted({box.extents[axis][0] for box in elementary})
    highs = sorted({box.extents[axis][1] for box in elementary})
    pairs = [(low, high) for low in lows for high in highs if low < high]
    if len(pairs) <= AXIS_EXTENT_CAP:
        return pairs
    # Too fragmented on this axis: fall back to each elementary box's own
    # extent plus the tight overall span (still enough to merge everything
    # or nothing on this axis; intermediate widths are sacrificed).
    own = sorted({box.extents[axis] for box in elementary})
    span = (lows[0], highs[-1])
    if span not in own:
        own.append(span)
    return own


def _is_minimal(
    box: Box, covered: Sequence[Box], space: BoxSpace
) -> bool:
    """Pruning rule 1: ``box`` is the smallest valid box around ``covered``."""
    for axis, dimension in enumerate(space.dimensions):
        tight_low = min(element.extents[axis][0] for element in covered)
        tight_high = max(element.extents[axis][1] for element in covered)
        if dimension.is_categorical and tight_high - tight_low > 1:
            tight_low, tight_high = dimension.full_extent
        if box.extents[axis] != (tight_low, tight_high):
            return False
    return True


def _axis_masks(
    extents: Sequence[Extent], elementary: Sequence[Box], axis: int
) -> list[tuple[Extent, int]]:
    """For each extent, the bitmask of elementary boxes it contains on
    ``axis``; extents containing nothing are dropped (their candidates
    cannot cover anything)."""
    entries: list[tuple[Extent, int]] = []
    for extent in extents:
        low, high = extent
        mask = 0
        for index, element in enumerate(elementary):
            element_low, element_high = element.extents[axis]
            if low <= element_low and element_high <= high:
                mask |= 1 << index
        if mask:
            entries.append((extent, mask))
    return entries


def generate_candidates(
    space: BoxSpace,
    elementary: Sequence[Box],
    estimate: Estimator,
    tuples_per_transaction: int,
    enumeration_cap: int = DEFAULT_ENUMERATION_CAP,
    prune: bool = True,
    elementary_cap: int = DEFAULT_ELEMENTARY_CAP,
) -> GenerationResult:
    """Run Algorithm 1 over ``elementary`` boxes.

    With ``prune=False`` both pruning rules are skipped (every enumerated
    box with a nonempty covered set is kept) — the "No Pruning" arm of the
    Figure 15 experiment.

    The enumeration intersects per-axis elementary-coverage bitmasks, so a
    candidate's covered set costs ``d`` integer ANDs rather than ``|E|``
    box-containment tests, and whole subtrees of the product are pruned as
    soon as the running mask goes empty.  ``enumeration_cap`` bounds the
    number of candidates considered; if it is hit the result is flagged
    ``capped`` (the set cover still succeeds via the elementary fallbacks).
    """
    elementary = list(elementary)
    result = GenerationResult(
        elementary=elementary,
        elementary_candidates=[],
        merged_candidates=[],
    )
    for index, element in enumerate(elementary):
        rows = estimate(element)
        result.elementary_candidates.append(
            CandidateBox(
                box=element,
                estimated_rows=rows,
                transactions=_price(rows, tuples_per_transaction),
                covers=frozenset([index]),
            )
        )
    if len(elementary) <= 1:
        return result
    if len(elementary) > elementary_cap:
        result.capped = True
        return result

    axis_entries = [
        _axis_masks(
            _axis_extents(space, elementary, axis), elementary, axis
        )
        for axis in range(space.dimensionality)
    ]
    if any(not entries for entries in axis_entries):
        return result

    elementary_set = {box.extents for box in elementary}
    elementary_prices = [c.transactions for c in result.elementary_candidates]
    dimensionality = space.dimensionality
    all_mask = (1 << len(elementary)) - 1
    seen: set[tuple[Extent, ...]] = set()
    stack: list[tuple[int, tuple[Extent, ...], int]] = [(0, (), all_mask)]
    # Partial expansions count against a node budget too — an adversarial
    # fragment pattern can otherwise explore far more interior nodes than
    # complete candidates.
    node_budget = enumeration_cap * 8
    nodes = 0
    while stack:
        nodes += 1
        if nodes > node_budget:
            result.capped = True
            break
        axis, prefix, mask = stack.pop()
        if axis == dimensionality:
            extents = prefix
            if extents in seen:
                continue
            seen.add(extents)
            covered_bits = mask
            if covered_bits & (covered_bits - 1) == 0 and extents in elementary_set:
                continue  # identical to a single elementary candidate
            result.enumerated_count += 1
            if result.enumerated_count > enumeration_cap:
                result.capped = True
                break
            covered = frozenset(_bit_indices(covered_bits))
            box = Box(extents)
            if prune and not _is_minimal(
                box, [elementary[i] for i in covered], space
            ):
                continue
            rows = estimate(box)
            transactions = _price(rows, tuples_per_transaction)
            if prune and transactions >= sum(
                elementary_prices[i] for i in covered
            ):
                continue
            result.kept_count += 1
            result.merged_candidates.append(
                CandidateBox(
                    box=box,
                    estimated_rows=rows,
                    transactions=transactions,
                    covers=covered,
                )
            )
            continue
        for extent, extent_mask in axis_entries[axis]:
            running = mask & extent_mask
            if running:
                stack.append((axis + 1, prefix + (extent,), running))
    return result


def _bit_indices(mask: int) -> list[int]:
    """Set-bit positions, isolating the lowest bit each step (O(popcount))."""
    indices = []
    while mask:
        low = mask & -mask
        indices.append(low.bit_length() - 1)
        mask ^= low
    return indices
