"""Budget control: spending caps for a buyer organization.

Figure 2 of the paper shows the organization receiving *bills* from the
market, and Section 2.2 notes organizations should not ration their users'
queries ("that is counter-productive") — but finance still wants a ceiling.
A :class:`BudgetPolicy` enforces one *before* money is spent: the optimizer
already produces a price estimate for every plan, so a query whose
estimated cost would exceed the remaining budget is rejected up front
(``hard`` mode) or logged (``advisory`` mode) instead of surprising anyone
on the invoice.

Estimates can err, so the guard is belt-and-braces: the hard check uses
the plan estimate before execution, and the running total uses actual
billed transactions after it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.payless import PayLess, QueryResult
from repro.errors import ReproError


class BudgetExceededError(ReproError):
    """Raised in hard mode when a query's estimate would break the budget."""


class BudgetMode(enum.Enum):
    HARD = "hard"          #: reject queries whose estimate exceeds the rest
    ADVISORY = "advisory"  #: execute anyway, but record the breach


@dataclass
class BudgetPolicy:
    """A transaction budget with a mode."""

    limit_transactions: int
    mode: BudgetMode = BudgetMode.HARD

    def __post_init__(self) -> None:
        if self.limit_transactions < 0:
            raise ReproError("budget cannot be negative")


@dataclass
class BudgetReport:
    """Where the money went, for the organization's finance page."""

    limit_transactions: int
    spent_transactions: int = 0
    executed_queries: int = 0
    rejected_queries: int = 0
    advisory_breaches: int = 0

    @property
    def remaining(self) -> int:
        return max(self.limit_transactions - self.spent_transactions, 0)


class BudgetedPayLess:
    """A PayLess wrapper that enforces a :class:`BudgetPolicy`."""

    def __init__(self, payless: PayLess, policy: BudgetPolicy):
        self.payless = payless
        self.policy = policy
        self.report = BudgetReport(limit_transactions=policy.limit_transactions)

    def query(self, sql: str, params: Sequence[Any] = ()) -> QueryResult:
        logical = self.payless.compile(sql, params)
        from repro.core.optimizer import Optimizer

        planning = Optimizer(
            self.payless.context, self.payless.options
        ).optimize(logical)
        estimate = planning.cost
        if (
            self.policy.mode is BudgetMode.HARD
            and estimate > self.report.remaining
        ):
            self.report.rejected_queries += 1
            raise BudgetExceededError(
                f"estimated {estimate:.0f} transactions exceeds the "
                f"remaining budget of {self.report.remaining}"
            )
        if estimate > self.report.remaining:
            self.report.advisory_breaches += 1
        result = self.payless.execute_logical(logical)
        self.report.spent_transactions += result.stats.transactions
        self.report.executed_queries += 1
        return result
