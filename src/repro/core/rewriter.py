"""Semantic query rewriting: answer from the store, buy only what's missing.

Given a table and the (pushable) constraints of a query against it, the
rewriter:

1. maps the constraints to their request region (one or more boxes —
   point-set constraints fan out, the decomposed-disjunction case);
2. subtracts the store's covered region, yielding the elementary boxes of
   the missing data V̄ (Figures 6/7);
3. runs Algorithm 1 to generate candidate bounding boxes, with both pruning
   rules;
4. solves the weighted set cover to pick the cheapest set of valid
   remainder queries;
5. compares against the *direct* plan (fetch the request region outright,
   no rewriting) and keeps whichever is estimated cheaper — the comparison
   in Algorithm 2 (line 14).

Elementary boxes that are not expressible as a single call (a partial
multi-value categorical extent, e.g. "every country except Canada") can
still be *elements* of the cover; for them the rewriter adds a snapped
fallback candidate (categorical extent widened to the whole domain), so a
cover always exists.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PlanningError
from repro.core.bounding_boxes import (
    CandidateBox,
    GenerationResult,
    generate_candidates,
)
from repro.core.set_cover import CoverCandidate, greedy_weighted_set_cover
from repro.relational.query import AttributeConstraint
from repro.semstore.boxes import Box
from repro.semstore.store import SemanticStore
from repro.stats.catalog import Catalog, TableStatistics


@dataclass(frozen=True)
class RemainderQuery:
    """One REST call to issue: a box plus its constraint rendering."""

    box: Box
    constraints: tuple[AttributeConstraint, ...]
    estimated_rows: float
    estimated_transactions: int


@dataclass
class RewriteResult:
    """The outcome of rewriting one table access."""

    table: str
    #: The region the query asks for (disjoint boxes).
    request_boxes: list[Box]
    #: Remainder queries to send to the market (empty when fully covered).
    remainder: list[RemainderQuery]
    #: Estimated total transactions of the remainder.
    estimated_transactions: int
    #: Whether the store already covers the whole request region.
    fully_covered: bool
    #: Whether rewriting (vs the direct fetch) won the cost comparison.
    used_rewriting: bool
    #: Figure 15 instrumentation: bounding boxes enumerated / kept.
    enumerated_boxes: int = 0
    kept_boxes: int = 0
    #: Estimated rows the remainder queries will pull from the market.
    estimated_remainder_rows: float = 0.0
    #: The store epoch of ``table`` this result was computed at.  A result
    #: is only valid while the store is at this epoch; the executor asserts
    #: it before issuing any REST call (see ``core.executor``).
    store_epoch: int = -1

    @property
    def is_free(self) -> bool:
        return self.estimated_transactions == 0 and not self.remainder


class SemanticRewriter:
    """Rewrites table accesses against a semantic store + catalog.

    ``rewrite()`` results are memoized per ``(table, constraints, page
    size, enabled-switch, clock, store epoch)``.  The epoch component makes
    invalidation automatic: any store mutation (``record`` or a persisted
    restore) bumps the table epoch, so the optimizer's many probe rewrites
    within one DP run — and repeat queries between store writes — hit the
    cache, while execution-time rewrites after a purchase never reuse a
    planning-epoch result.  Cached :class:`RewriteResult` objects are
    shared between callers and must be treated as immutable.
    """

    #: Memo entries are cheap (the results are shared, not copied), but a
    #: long-lived installation should not grow without bound; the whole
    #: memo is dropped past this size (practically never in one session).
    MEMO_CAP = 4096

    def __init__(
        self,
        store: SemanticStore,
        catalog: Catalog,
        enabled: bool = True,
        prune: bool = True,
    ):
        self.store = store
        self.catalog = catalog
        #: Global switch — the "PayLess w/o SQR" arm of Figure 10.
        self.enabled = enabled
        #: Algorithm 1 pruning switch — the "No Pruning" arm of Figure 15.
        self.prune = prune
        self._memo: dict[tuple, RewriteResult] = {}
        #: Guards only the memo dict and hit/miss counters.  The rewrite
        #: computation itself runs *outside* this lock: it probes the store
        #: (which takes the per-table lock), and an executor holding the
        #: table lock may call ``rewrite`` — holding the memo lock across
        #: the compute would deadlock.  Concurrent duplicate computes are
        #: idempotent and last-write-wins into the memo.
        self._memo_lock = threading.Lock()
        #: Memoization observability (asserted by tests, shown in benches).
        self.cache_hits = 0
        self.cache_misses = 0
        #: Observability hooks, wired by :class:`~repro.core.context.
        #: PlanningContext` (``None`` = standalone rewriter, no reporting).
        self.tracer = None
        self.metrics = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of ``rewrite()`` calls answered from the memo."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # -- public API -----------------------------------------------------------

    def rewrite(
        self,
        table: str,
        constraints: Sequence[AttributeConstraint],
        tuples_per_transaction: int,
    ) -> RewriteResult:
        """Compute (or recall) the cheapest set of REST calls for a request."""
        epoch = self.store.epoch_of(table)
        key = (
            table.lower(),
            tuple(constraints),
            tuples_per_transaction,
            self.enabled,
            self.prune,
            self.store.clock,
            epoch,
        )
        try:
            hash(key)
        except TypeError:  # unhashable constraint value: compute uncached
            key = None
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if key is not None:
            with self._memo_lock:
                cached = self._memo.get(key)
                if cached is not None:
                    self.cache_hits += 1
            if cached is not None:
                if tracing:
                    tracer.event("memo", table=table, hit=True)
                if self.metrics is not None:
                    self.metrics.counter("memo_hits").inc()
                return cached
        with self._memo_lock:
            self.cache_misses += 1
        if tracing:
            tracer.event("memo", table=table, hit=False)
            with tracer.span("rewrite", table=table) as span:
                result = self._rewrite_uncached(
                    table, constraints, tuples_per_transaction
                )
                span.set(
                    remainder=len(result.remainder),
                    estimated_transactions=result.estimated_transactions,
                    fully_covered=result.fully_covered,
                    used_rewriting=result.used_rewriting,
                )
        else:
            result = self._rewrite_uncached(
                table, constraints, tuples_per_transaction
            )
        if self.metrics is not None:
            self.metrics.counter("memo_misses").inc()
            self.metrics.counter("rewrites").inc()
            if result.fully_covered:
                self.metrics.counter("rewrites_covered").inc()
        result.store_epoch = epoch
        if key is not None:
            with self._memo_lock:
                if len(self._memo) >= self.MEMO_CAP:
                    self._memo.clear()
                self._memo[key] = result
        return result

    def _rewrite_uncached(
        self,
        table: str,
        constraints: Sequence[AttributeConstraint],
        tuples_per_transaction: int,
    ) -> RewriteResult:
        """Compute the cheapest set of REST calls answering the request."""
        statistics = self.catalog.statistics(table)
        space = statistics.space
        request_boxes = space.boxes_for_constraints(constraints)
        if not request_boxes:
            # The request region is empty (off-domain point): nothing to buy.
            return RewriteResult(
                table=table,
                request_boxes=[],
                remainder=[],
                estimated_transactions=0,
                fully_covered=True,
                used_rewriting=False,
            )

        direct = self._direct_plan(
            statistics, request_boxes, tuples_per_transaction
        )
        if not self.enabled or not self.store.policy.rewriting_enabled:
            return direct

        elementary: list[Box] = []
        for box in request_boxes:
            elementary.extend(self.store.remainder(table, box))
        if not elementary:
            return RewriteResult(
                table=table,
                request_boxes=request_boxes,
                remainder=[],
                estimated_transactions=0,
                fully_covered=True,
                used_rewriting=True,
            )

        rewritten = self._cover_plan(
            statistics, request_boxes, elementary, tuples_per_transaction
        )
        if direct.estimated_transactions < rewritten.estimated_transactions:
            direct.enumerated_boxes = rewritten.enumerated_boxes
            direct.kept_boxes = rewritten.kept_boxes
            return direct
        return rewritten

    # -- strategies ---------------------------------------------------------------

    def _direct_plan(
        self,
        statistics: TableStatistics,
        request_boxes: list[Box],
        tuples_per_transaction: int,
    ) -> RewriteResult:
        """Fetch the request region outright, one call per request box."""
        remainder: list[RemainderQuery] = []
        total = 0
        for box in request_boxes:
            query = self._remainder_query(
                statistics, box, tuples_per_transaction
            )
            remainder.append(query)
            total += query.estimated_transactions
        return RewriteResult(
            table=statistics.table,
            request_boxes=request_boxes,
            remainder=remainder,
            estimated_transactions=total,
            fully_covered=False,
            used_rewriting=False,
            estimated_remainder_rows=sum(q.estimated_rows for q in remainder),
        )

    #: Above this many elementary boxes, per-box histogram estimates are
    #: replaced by a constant-density approximation over the request region
    #: (one histogram probe total instead of thousands).
    DENSITY_FALLBACK_THRESHOLD = 256

    def _cover_plan(
        self,
        statistics: TableStatistics,
        request_boxes: list[Box],
        elementary: list[Box],
        tuples_per_transaction: int,
    ) -> RewriteResult:
        """Algorithm 1 + weighted set cover over the missing region."""
        space = statistics.space
        estimate = statistics.histogram.estimate
        if len(elementary) > self.DENSITY_FALLBACK_THRESHOLD:
            region_rows = sum(
                statistics.histogram.estimate(box) for box in request_boxes
            )
            region_volume = sum(box.volume() for box in request_boxes)
            density = region_rows / region_volume if region_volume else 0.0
            estimate = lambda box: density * box.volume()  # noqa: E731
        generation = generate_candidates(
            space,
            elementary,
            estimate,
            tuples_per_transaction,
            prune=self.prune,
        )
        candidates = self._coverage_candidates(
            statistics, generation, tuples_per_transaction, estimate
        )
        if generation.merged_candidates:
            cover_input = [
                CoverCandidate(covers=c.covers, cost=float(c.transactions))
                for c in candidates
            ]
            chosen = greedy_weighted_set_cover(len(elementary), cover_input)
        else:
            # No merged boxes to weigh against (single elementary box, or
            # the enumeration was capped): the cover is simply every
            # fallback candidate — skip the greedy entirely.
            chosen = range(len(candidates))
        remainder = [
            self._to_remainder_query(space, candidates[index])
            for index in chosen
        ]
        total = sum(query.estimated_transactions for query in remainder)
        return RewriteResult(
            table=statistics.table,
            request_boxes=request_boxes,
            remainder=remainder,
            estimated_transactions=total,
            fully_covered=False,
            used_rewriting=True,
            enumerated_boxes=generation.enumerated_count,
            kept_boxes=generation.kept_count,
            estimated_remainder_rows=sum(q.estimated_rows for q in remainder),
        )

    def _coverage_candidates(
        self,
        statistics: TableStatistics,
        generation: GenerationResult,
        tuples_per_transaction: int,
        estimate=None,
    ) -> list[CandidateBox]:
        """All candidates offered to the set cover, guaranteeing feasibility.

        Expressible elementary boxes stand for themselves; inexpressible
        ones get a snapped fallback (categorical extents widened to the full
        domain).  Algorithm 1's merged candidates come last.
        """
        space = statistics.space
        if estimate is None:
            estimate = statistics.histogram.estimate
        candidates: list[CandidateBox] = []
        seen: set[tuple] = set()
        for candidate in generation.elementary_candidates:
            if space.expressible(candidate.box):
                candidates.append(candidate)
                continue
            snapped = self._snap(space, candidate.box)
            if snapped.extents in seen:
                continue
            seen.add(snapped.extents)
            rows = estimate(snapped)
            covers = frozenset(
                index
                for index, element in enumerate(generation.elementary)
                if snapped.contains_box(element)
            )
            candidates.append(
                CandidateBox(
                    box=snapped,
                    estimated_rows=rows,
                    transactions=math.ceil(rows / tuples_per_transaction)
                    if rows > 0
                    else 0,
                    covers=covers,
                )
            )
        for candidate in generation.merged_candidates:
            if space.expressible(candidate.box):
                candidates.append(candidate)
        return candidates

    @staticmethod
    def _snap(space, box: Box) -> Box:
        """Widen invalid categorical extents to the whole domain."""
        extents = []
        for dimension, extent in zip(space.dimensions, box.extents):
            low, high = extent
            if (
                dimension.is_categorical
                and high - low > 1
                and extent != dimension.full_extent
            ):
                if dimension.is_bound:
                    raise PlanningError(
                        f"{space.table}: cannot express remainder on bound "
                        f"categorical attribute {dimension.attribute!r}"
                    )
                extents.append(dimension.full_extent)
            else:
                extents.append(extent)
        return Box(tuple(extents))

    def _remainder_query(
        self,
        statistics: TableStatistics,
        box: Box,
        tuples_per_transaction: int,
    ) -> RemainderQuery:
        rows = statistics.histogram.estimate(box)
        return RemainderQuery(
            box=box,
            constraints=statistics.space.constraints_for_box(box),
            estimated_rows=rows,
            estimated_transactions=(
                math.ceil(rows / tuples_per_transaction) if rows > 0 else 0
            ),
        )

    def _to_remainder_query(
        self, space, candidate: CandidateBox
    ) -> RemainderQuery:
        return RemainderQuery(
            box=candidate.box,
            constraints=space.constraints_for_box(candidate.box),
            estimated_rows=candidate.estimated_rows,
            estimated_transactions=candidate.transactions,
        )
