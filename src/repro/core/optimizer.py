"""PayLess's cost-based optimizer (Section 4, Algorithm 2).

Bottom-up dynamic programming whose objective is the money paid to the
market, with the paper's three search-space reductions:

* **Theorem 1** — only left-deep plans are enumerated (each DP level adds
  one market relation to the current left subtree);
* **Theorem 2** — all *zero-price* relations (local tables, plus market
  relations whose request region the semantic store already covers) are
  joined first into a single ``LocalBlock`` leaf;
* **Theorem 3** — when a relation subset splits into join-disconnected
  components, the best plans of the components are combined with a
  Cartesian product instead of being re-enumerated.

Each candidate relation can be accessed directly (when its bound attributes
are constrained by the query) or as the right side of a *bind join* on up
to ``max_bind_attrs`` join attributes.  Access costs come from the semantic
rewriter, so stored results reduce estimated prices exactly as they will at
execution time.

The module also houses the exhaustive *bushy* enumerator used by the
"Disable All" arm of Figure 14, and the closed-form search-space size
formulas of Section 4.1.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from itertools import combinations

from repro.core.context import PlanningContext
from repro.core.objectives import MIN_DOLLARS, PlanObjective
from repro.core.plans import (
    JoinNode,
    LocalBlockNode,
    MarketAccessNode,
    MaterializedNode,
    PlanNode,
)
from repro.core.rewriter import RewriteResult
from repro.errors import InfeasibleObjectiveError, PlanningError
from repro.relational.expressions import conjunction
from repro.relational.query import JoinPredicate, LogicalQuery
from repro.semstore.space import BoxSpace
from repro.stats.overlay import CardinalityOverlay


@dataclass
class OptimizerOptions:
    """Switches for the evaluation's ablation arms."""

    #: Consult the semantic store while costing ("PayLess w/o SQR" = False).
    use_sqr: bool = True
    #: Apply Theorems 1-3 ("Disable All" of Figure 14 = False → bushy).
    use_theorems: bool = True
    #: "transactions" (PayLess) or "calls" (the Minimizing-Calls baseline).
    objective: str = "transactions"
    #: Bind joins may bind values for at most this many attributes.
    max_bind_attrs: int = 2
    #: Branch-and-bound + dominance pruning of the DP enumeration.  False
    #: runs the exhaustive oracle (same chosen plan, more work) — the
    #: debug arm the parity tests compare against.
    prune: bool = True
    #: Entries the installation's parameterized plan cache may hold;
    #: 0 disables the cache entirely.
    plan_cache_size: int = 256
    #: What to pick from the money-latency Pareto frontier (see
    #: :mod:`repro.core.objectives`).  The default ``min_dollars`` runs
    #: the paper's exact single-objective DP; any other kind switches the
    #: DP to per-subset Pareto frontiers of (money, latency_ms) vectors.
    plan_objective: PlanObjective = MIN_DOLLARS

    def __post_init__(self) -> None:
        if self.objective not in ("transactions", "calls"):
            raise PlanningError(f"unknown objective {self.objective!r}")
        if not isinstance(self.plan_objective, PlanObjective):
            raise PlanningError(
                f"plan_objective must be a PlanObjective, "
                f"got {self.plan_objective!r}"
            )
        if not isinstance(self.prune, bool):
            raise PlanningError(
                f"prune must be True or False, got {self.prune!r}"
            )
        if isinstance(self.max_bind_attrs, bool) or not isinstance(
            self.max_bind_attrs, int
        ):
            raise PlanningError(
                f"max_bind_attrs must be an integer, got {self.max_bind_attrs!r}"
            )
        if self.max_bind_attrs < 0:
            raise PlanningError(
                f"max_bind_attrs cannot be negative, got {self.max_bind_attrs}"
            )
        if isinstance(self.plan_cache_size, bool) or not isinstance(
            self.plan_cache_size, int
        ):
            raise PlanningError(
                f"plan_cache_size must be an integer, got {self.plan_cache_size!r}"
            )
        if self.plan_cache_size < 0:
            raise PlanningError(
                f"plan_cache_size must be >= 0 (0 disables the cache), "
                f"got {self.plan_cache_size}"
            )


@dataclass
class PlanningResult:
    """The chosen plan plus the instrumentation Figures 14-15 read."""

    plan: PlanNode
    cost: float
    evaluated_plans: int
    enumerated_boxes: int
    kept_boxes: int
    #: Candidates discarded by branch-and-bound / dominance (0 when the
    #: exhaustive oracle ran).
    pruned_plans: int = 0
    #: How the installation's plan cache was involved: "hit" (this result
    #: was served from the cache), "miss" (planned fresh, now cached), or
    #: "off" (cache disabled, or the optimizer was invoked directly).
    cache_status: str = "off"
    #: Estimated serial wall-clock of the chosen plan's market calls under
    #: the planning context's latency model.
    latency_ms: float = 0.0
    #: The objective the plan was chosen under.
    objective: PlanObjective = MIN_DOLLARS
    #: The full-query money-latency Pareto frontier as ``(cost,
    #: latency_ms)`` points in first-seen order.  A single point under
    #: ``min_dollars`` (the frontier is not enumerated on that path).
    frontier: tuple[tuple[float, float], ...] = ()
    #: Why the chosen point won (EXPLAIN's "why" line; empty for
    #: min_dollars).
    objective_note: str = ""

    @property
    def from_cache(self) -> bool:
        return self.cache_status == "hit"

    @property
    def frontier_size(self) -> int:
        return len(self.frontier)

    @property
    def kept_plans(self) -> int:
        """Candidates that survived pruning (all of them for the oracle)."""
        return self.evaluated_plans - self.pruned_plans


@dataclass
class _SubPlan:
    node: PlanNode
    cost: float
    rows: float
    #: Serial market wall-clock estimate — the second Pareto axis.
    latency: float = 0.0


@dataclass
class SuffixPlan:
    """A re-planned remainder from :meth:`Optimizer.optimize_suffix`.

    ``old_cost`` is the *old* plan's remaining steps re-costed under the
    same observed-cardinality overlay — the apples-to-apples baseline the
    executor compares ``cost`` against when estimating dollars saved.
    """

    plan: PlanNode
    cost: float
    latency_ms: float
    old_cost: float
    evaluated_plans: int


class Optimizer:
    """Algorithm 2, parameterized by :class:`OptimizerOptions`."""

    def __init__(self, context: PlanningContext, options: OptimizerOptions | None = None):
        self.context = context
        self.options = options or OptimizerOptions()
        self._tracing = False
        self._overlay: CardinalityOverlay | None = None

    # ------------------------------------------------------------------ entry

    def optimize(self, query: LogicalQuery) -> PlanningResult:
        tracer = self.context.tracer
        self._tracing = tracer.enabled
        started = time.perf_counter()
        if not self._tracing:
            result = self._optimize(query)
        else:
            with tracer.span("plan") as span:
                result = self._optimize(query)
                span.set(
                    evaluated_plans=result.evaluated_plans,
                    pruned_plans=result.pruned_plans,
                    cost=result.cost,
                    enumerated_boxes=result.enumerated_boxes,
                    kept_boxes=result.kept_boxes,
                )
        metrics = self.context.metrics
        metrics.counter("plan_candidates").inc(result.evaluated_plans)
        if result.pruned_plans:
            metrics.counter("plan_candidates_pruned").inc(result.pruned_plans)
        metrics.histogram("planning_us").observe(
            (time.perf_counter() - started) * 1e6
        )
        return result

    def _reset(self, query: LogicalQuery) -> None:
        """Initialize the per-run planning state for ``query``."""
        self._query = query
        self._evaluated = 0
        self._pruned = 0
        self._enumerated_boxes = 0
        self._kept_boxes = 0
        # Branch-and-bound state: ``_upper_bound`` is the cost of the best
        # *complete* plan known so far (seeded by the greedy left-deep plan,
        # tightened whenever the full key improves).  Only the left-deep DP
        # prunes; the bushy debug arm stays exhaustive.
        self._prune = self.options.prune and self.options.use_theorems
        self._upper_bound = math.inf
        self._full_key: frozenset[str] | None = None
        #: Pareto mode: any objective besides the paper's min_dollars
        #: switches the DP to per-subset (money, latency) frontiers.  The
        #: min_dollars path below is the unmodified single-objective DP —
        #: latency is computed on every node but never consulted, so its
        #: chosen plans stay byte-identical to the historical oracle.
        self._objective = self.options.plan_objective
        self._pareto = not self._objective.is_default
        self._latency_model = self.context.latency_model
        #: Pareto branch-and-bound state: (money, latency) vectors of
        #: known *complete* plans (greedy seeds + accepted full-key
        #: candidates).  A candidate strictly worse than any of them on
        #: BOTH axes can never contribute a frontier point.
        self._bound_frontier: list[tuple[float, float]] = []
        # Per-optimize() probe memos.  Safe because planning never mutates
        # the store or catalog: every probe is a pure function of the query
        # and the store state at planning time.  (The rewriter's own
        # epoch-keyed memo still guards reuse *across* queries.)
        self._memo_rewrite: dict[str, RewriteResult] = {}
        self._memo_direct: dict[str, MarketAccessNode] = {}
        self._memo_region_rows: dict[str, float] = {}
        self._memo_standalone: dict[str, bool] = {}
        self._memo_bindable: dict[tuple[str, str], bool] = {}
        self._memo_feasible: dict[tuple[str, frozenset[str]], bool] = {}
        self._memo_distinct: dict[tuple[str, str], float] = {}
        self._memo_domain: dict[tuple[str, str], float] = {}
        #: Observed-cardinality overlay for adaptive suffix planning; a
        #: fresh ``optimize()`` always starts from shared estimates only.
        self._overlay = None

    def _optimize(self, query: LogicalQuery) -> PlanningResult:
        self._reset(query)
        market_tables = [t for t in query.tables if self.context.is_market(t)]
        local_tables = [t for t in query.tables if not self.context.is_market(t)]
        for table in local_tables:
            if not self.context.is_local(table):
                raise PlanningError(f"table {table!r} is neither local nor market")

        if not self.options.use_theorems:
            if self._pareto:
                raise PlanningError(
                    "the bushy debug enumerator supports only the "
                    "min_dollars objective; Pareto planning needs the "
                    "left-deep DP (use_theorems=True)"
                )
            return self._optimize_bushy(query, market_tables, local_tables)

        zero_market = [
            t for t in market_tables if self._is_zero_price(t)
        ]
        priced = [t for t in market_tables if t not in zero_market]
        block = self._build_block(local_tables, zero_market)

        if not priced:
            if block is None:
                raise PlanningError("query references no tables")
            if self._pareto:
                chosen, note = self._select_from_frontier([block])
                return self._result(chosen, frontier=[block], note=note)
            return self._result(block)

        if self._pareto:
            return self._optimize_pareto(priced, block)

        best = self._dynamic_program(priced, block)
        key = frozenset(t.lower() for t in priced)
        if key not in best and self._prune:
            # The greedy seed's bound proved unreachable within the pruned
            # space (possible only when no greedy completion exists, e.g.
            # every remaining table needs a binding the current prefix
            # cannot supply in greedy order).  Correctness net: re-run the
            # exhaustive oracle; parity with ``prune=False`` is preserved
            # because pruning then contributed nothing.
            self._prune = False
            self._upper_bound = math.inf
            self.context.metrics.counter("plan_bnb_fallbacks").inc()
            best = self._dynamic_program(priced, block)
        if key not in best:
            raise PlanningError(
                "no feasible plan: some bound attributes can never be bound"
            )
        return self._result(best[key])

    def _result(
        self,
        subplan: _SubPlan,
        frontier: list[_SubPlan] | None = None,
        note: str = "",
    ) -> PlanningResult:
        points = (
            tuple((entry.cost, entry.latency) for entry in frontier)
            if frontier is not None
            else ((subplan.cost, subplan.latency),)
        )
        if frontier is not None:
            self.context.metrics.histogram("plan_frontier_size").observe(
                len(points)
            )
        return PlanningResult(
            plan=subplan.node,
            cost=subplan.cost,
            evaluated_plans=self._evaluated,
            enumerated_boxes=self._enumerated_boxes,
            kept_boxes=self._kept_boxes,
            pruned_plans=self._pruned,
            latency_ms=subplan.latency,
            objective=self._objective,
            frontier=points,
            objective_note=note,
        )

    # ------------------------------------------------------- adaptive suffix

    def optimize_suffix(
        self,
        query: LogicalQuery,
        prefix: MaterializedNode,
        overlay: CardinalityOverlay | None = None,
        old_steps: tuple[JoinNode, ...] = (),
    ) -> SuffixPlan | None:
        """Re-plan the joins *not yet executed*, resuming from ``prefix``.

        ``prefix`` is the materialized intermediate (actual cardinality,
        zero cost — its money is already spent), ``overlay`` layers the
        executor's observed cardinalities over the shared estimates for
        this call only, and ``old_steps`` is the original plan's
        remaining join steps, re-costed under the same overlay to price
        what staying the course would spend.

        Returns ``None`` whenever re-planning cannot (or should not)
        produce a resumable plan — the executor then simply keeps the
        original plan.  The same left-deep DP (scalar or Pareto,
        preserving the active :class:`PlanObjective`) runs over only the
        remaining market tables, seeded with the prefix instead of the
        Theorem-2 block.  Results are never cached: the plan cache only
        ever holds statically-planned trees (see plancache hygiene
        tests).
        """
        if not self.options.use_theorems:
            # The bushy debug arm has no left-deep prefix to resume from.
            return None
        self._reset(query)
        self._overlay = overlay
        remaining = [
            t
            for t in query.tables
            if self.context.is_market(t)
            and t.lower() not in prefix.relations
        ]
        if not remaining:
            return None
        remaining_set = frozenset(t.lower() for t in remaining)
        if len(self._components(remaining_set, prefix.relations)) > 1:
            # Join-disconnected remainders would re-enter Theorem-3
            # composition, which could only duplicate the prefix leaf.
            # Rare (the static planner already ordered the query); keep
            # the original plan instead.
            return None
        seed = _SubPlan(
            node=prefix, cost=0.0, rows=max(prefix.estimated_rows, 0.0)
        )
        try:
            if self._pareto:
                frontiers = self._pareto_program(remaining, seed)
                if not frontiers.get(remaining_set) and self._prune:
                    self._prune = False
                    self._bound_frontier = []
                    frontiers = self._pareto_program(remaining, seed)
                entries = frontiers.get(remaining_set)
                if not entries:
                    return None
                chosen, _ = self._select_from_frontier(
                    self._pareto_front(entries)
                )
            else:
                best = self._dynamic_program(remaining, seed)
                if remaining_set not in best and self._prune:
                    self._prune = False
                    self._upper_bound = math.inf
                    best = self._dynamic_program(remaining, seed)
                if remaining_set not in best:
                    return None
                chosen = best[remaining_set]
        except PlanningError:
            # Includes InfeasibleObjectiveError: a bounded objective that
            # became unmeetable mid-query must not kill the running query
            # — the original plan stays in force.
            return None
        evaluated = self._evaluated
        old_cost = self._recost_steps(seed, old_steps)
        return SuffixPlan(
            plan=chosen.node,
            cost=chosen.cost,
            latency_ms=chosen.latency,
            old_cost=old_cost,
            evaluated_plans=evaluated,
        )

    def _recost_steps(
        self, seed: _SubPlan, old_steps: tuple[JoinNode, ...]
    ) -> float:
        """Price the original plan's remaining steps under the overlay.

        Each old step is matched to the freshly-costed extension
        candidate with the same access shape (same table, same bound
        attributes); a step with no matching candidate (the store state
        can narrow feasibility between plan and re-plan) falls back to
        re-attaching the stamped access node as-is.
        """
        current = seed
        for step in old_steps:
            access = step.right
            if not isinstance(access, MarketAccessNode):
                continue
            signature = tuple(access.bind_attributes)
            match: _SubPlan | None = None
            for candidate in self._extension_candidates(
                current, access.table
            ):
                right = candidate.node.right if isinstance(
                    candidate.node, JoinNode
                ) else None
                if (
                    isinstance(right, MarketAccessNode)
                    and tuple(right.bind_attributes) == signature
                ):
                    match = candidate
                    break
            if match is None:
                applicable = self._applicable_joins(
                    current.node.relations, access.table
                )
                match = self._attach(
                    current, access, applicable, bind=step.bind
                )
            current = match
        return current.cost

    # ---------------------------------------------------------------- theorems

    def _is_zero_price(self, table: str) -> bool:
        """Theorem 2 candidates: covered market relations are free."""
        if not self.options.use_sqr:
            return False
        if not self._standalone_feasible(table):
            return False
        rewrite = self._rewrite(table)
        return rewrite.fully_covered or rewrite.estimated_transactions == 0

    def _build_block(
        self, local_tables: list[str], zero_market: list[str]
    ) -> _SubPlan | None:
        """The Theorem-2 left-most leaf joining all zero-price relations."""
        tables = list(local_tables) + list(zero_market)
        if not tables:
            return None
        rows = 1.0
        for table in local_tables:
            rows *= max(self._local_filtered_count(table), 0)
        for table in zero_market:
            rewrite = self._rewrite(table)
            region_rows = sum(
                self.context.catalog.statistics(table).histogram.estimate(box)
                for box in rewrite.request_boxes
            )
            rows *= max(region_rows, 0.0)
        # Apply join selectivities for predicates internal to the block.
        lowered = {t.lower() for t in tables}
        for join in self._query.joins:
            left_t, right_t = (t.lower() for t in join.tables())
            if left_t in lowered and right_t in lowered:
                d_left = self._base_distinct(join.left.table, join.left.column)
                d_right = self._base_distinct(join.right.table, join.right.column)
                rows /= max(d_left, d_right, 1.0)
        node = LocalBlockNode(
            relations=frozenset(t.lower() for t in tables),
            cost=0.0,
            estimated_rows=rows,
            tables=tuple(tables),
            covered_market_tables=tuple(zero_market),
        )
        return _SubPlan(node=node, cost=0.0, rows=rows)

    def _components(
        self, subset: frozenset[str], block_tables: frozenset[str]
    ) -> list[frozenset[str]]:
        """Theorem 3: connected components of ``subset`` in the join graph.

        Tables joined to the zero-price block are connected *through* it.
        """
        parent = {t: t for t in subset}
        block_anchor: str | None = None

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for join in self._query.joins:
            left_t, right_t = (t.lower() for t in join.tables())
            if left_t in subset and right_t in subset:
                union(left_t, right_t)
            elif left_t in subset and right_t in block_tables:
                if block_anchor is None:
                    block_anchor = left_t
                else:
                    union(left_t, block_anchor)
            elif right_t in subset and left_t in block_tables:
                if block_anchor is None:
                    block_anchor = right_t
                else:
                    union(right_t, block_anchor)

        groups: dict[str, set[str]] = {}
        for table in sorted(subset):
            groups.setdefault(find(table), set()).add(table)
        # Deterministic component order (by smallest member) so Theorem-3
        # composition nests the same way in every process.
        return sorted(
            (frozenset(group) for group in groups.values()), key=min
        )

    # ------------------------------------------------------------------- the DP

    def _dynamic_program(
        self, priced: list[str], block: _SubPlan | None
    ) -> dict[frozenset[str], _SubPlan]:
        best: dict[frozenset[str], _SubPlan] = {}
        block_tables = (
            frozenset(t.lower() for t in block.node.tables)
            if block is not None
            else frozenset()
        )
        by_name = {t.lower(): t for t in priced}
        self._full_key = frozenset(by_name)
        if self._prune:
            self._upper_bound = self._greedy_upper_bound(priced, block)

        # Level 1.
        for table in priced:
            key = frozenset([table.lower()])
            for candidate in self._extension_candidates(block, table):
                self._consider(best, key, candidate)

        # Levels 2..n.
        for size in range(2, len(priced) + 1):
            for subset_names in combinations(sorted(by_name), size):
                subset = frozenset(subset_names)
                components = self._components(subset, block_tables)
                if len(components) > 1:
                    combined = self._combine_components(best, components)
                    if combined is not None:
                        self._evaluated += 1
                        self._consider(best, subset, combined)
                    continue
                # Deterministic, not raw frozenset order: on cost ties
                # the first-seen candidate wins, so iteration order IS
                # plan choice — hash-order iteration would make tied
                # plans vary across processes.  Reverse-sorted extension
                # (largest table added last) canonicalizes ties to the
                # join order that reads in table-name order.
                for table_key in sorted(subset, reverse=True):
                    rest = subset - {table_key}
                    left = best.get(rest)
                    if left is None:
                        continue
                    table = by_name[table_key]
                    for candidate in self._extension_candidates(left, table):
                        self._consider(best, subset, candidate)
        return best

    def _greedy_upper_bound(
        self, priced: list[str], block: _SubPlan | None
    ) -> float:
        """Cost of a cheap greedy left-deep plan — the initial B&B bound.

        Repeatedly extends the current prefix with the globally cheapest
        access over all remaining tables.  The resulting cost is the cost
        of one complete executable strategy, so any stored subplan already
        costing strictly more can never be part of the final optimum
        (access costs are non-negative and additive).  When the greedy
        walk gets stuck (a remaining table is neither directly feasible
        nor joinable to the prefix) the bound stays infinite and this
        query runs unpruned.
        """
        current = block
        remaining = dict(sorted((t.lower(), t) for t in priced))
        while remaining:
            step: _SubPlan | None = None
            step_key: str | None = None
            for key, table in remaining.items():
                for candidate in self._extension_candidates(current, table):
                    if step is None or candidate.cost < step.cost:
                        step, step_key = candidate, key
            if step is None:
                return math.inf
            current = step
            del remaining[step_key]
        return current.cost if current is not None else math.inf

    def _consider(
        self,
        best: dict[frozenset[str], _SubPlan],
        key: frozenset[str],
        candidate: _SubPlan,
    ) -> None:
        incumbent = best.get(key)
        accepted = incumbent is None or candidate.cost < incumbent.cost
        # Branch and bound: a subplan costing strictly more than a known
        # complete plan can never extend into the optimum.  Strictly — on
        # a cost tie ``accepted`` already keeps the first-seen plan, which
        # is what makes pruned and oracle runs byte-identical.
        bounded = self._prune and candidate.cost > self._upper_bound
        if bounded:
            accepted = False
        if self._prune and not accepted:
            # Dominance: the retained plan over the same table set has
            # lower-or-equal cost and (left-deep plans over one table set
            # expose the same usable bound attributes, fixed by the set
            # and the join graph) an equal attribute superset — or the
            # candidate exceeded the bound outright.
            self._pruned += 1
        if self._tracing:
            # Rejected candidates are exactly what EXPLAIN cannot show —
            # the trace records every considered (sub)plan with its cost.
            self.context.tracer.event(
                "plan_candidate",
                tables=sorted(key),
                cost=candidate.cost,
                accepted=accepted,
                bounded=bounded,
            )
        if accepted:
            best[key] = candidate
            if (
                self._prune
                and key == self._full_key
                and candidate.cost < self._upper_bound
            ):
                # A cheaper complete plan tightens the bound mid-run.
                self._upper_bound = candidate.cost

    def _combine_components(
        self,
        best: dict[frozenset[str], _SubPlan],
        components: list[frozenset[str]],
    ) -> _SubPlan | None:
        """Theorem 3 composition: Best(C1) × Best(C2) × ..."""
        parts = []
        for component in components:
            part = best.get(component)
            if part is None:
                return None
            parts.append(part)
        return self._combine_parts(parts)

    @staticmethod
    def _combine_parts(parts: list[_SubPlan]) -> _SubPlan:
        """Cartesian-product composition of component subplans."""
        parts = sorted(parts, key=lambda p: p.cost, reverse=True)
        combined = parts[0]
        for part in parts[1:]:
            node = JoinNode(
                relations=combined.node.relations | part.node.relations,
                cost=combined.cost + part.cost,
                estimated_rows=combined.rows * part.rows,
                latency_ms=combined.latency + part.latency,
                left=combined.node,
                right=part.node,
                predicates=(),
                cartesian=True,
            )
            combined = _SubPlan(
                node=node,
                cost=node.cost,
                rows=node.estimated_rows,
                latency=node.latency_ms,
            )
        return combined

    # -------------------------------------------------------------- Pareto DP
    #
    # Any objective besides min_dollars runs the same bottom-up left-deep
    # enumeration, but each subset keeps a *Pareto frontier* of (money,
    # latency) vectors instead of a single cheapest subplan.  Pruning
    # generalizes the scalar branch and bound: a candidate is discarded
    # only when a known complete plan beats it *strictly on both axes*
    # (strict, so first-seen ties survive — the property that keeps
    # pruned and unpruned runs byte-identical, here per frontier point).

    def _optimize_pareto(
        self, priced: list[str], block: _SubPlan | None
    ) -> PlanningResult:
        frontiers = self._pareto_program(priced, block)
        key = frozenset(t.lower() for t in priced)
        if not frontiers.get(key) and self._prune:
            # Same correctness net as the scalar path: if the pruned
            # space never completed a plan, re-run exhaustively.
            self._prune = False
            self._bound_frontier = []
            self.context.metrics.counter("plan_bnb_fallbacks").inc()
            frontiers = self._pareto_program(priced, block)
        entries = frontiers.get(key)
        if not entries:
            raise PlanningError(
                "no feasible plan: some bound attributes can never be bound"
            )
        frontier = self._pareto_front(entries)
        chosen, note = self._select_from_frontier(frontier)
        return self._result(chosen, frontier=frontier, note=note)

    def _pareto_program(
        self, priced: list[str], block: _SubPlan | None
    ) -> dict[frozenset[str], list[_SubPlan]]:
        frontiers: dict[frozenset[str], list[_SubPlan]] = {}
        block_tables = (
            frozenset(t.lower() for t in block.node.tables)
            if block is not None
            else frozenset()
        )
        by_name = {t.lower(): t for t in priced}
        self._full_key = frozenset(by_name)
        if self._prune:
            self._seed_bound_frontier(priced, block)

        # Level 1.
        for table in priced:
            key = frozenset([table.lower()])
            for candidate in self._extension_candidates(block, table):
                self._consider_pareto(frontiers, key, candidate)

        # Levels 2..n.
        for size in range(2, len(priced) + 1):
            for subset_names in combinations(sorted(by_name), size):
                subset = frozenset(subset_names)
                components = self._components(subset, block_tables)
                if len(components) > 1:
                    for combined in self._combine_components_pareto(
                        frontiers, components
                    ):
                        self._evaluated += 1
                        self._consider_pareto(frontiers, subset, combined)
                    continue
                # Reverse-sorted for the same tie-determinism reason as
                # the scalar DP: first-seen wins exact vector ties.
                for table_key in sorted(subset, reverse=True):
                    rest = subset - {table_key}
                    lefts = frontiers.get(rest)
                    if not lefts:
                        continue
                    table = by_name[table_key]
                    for left in lefts:
                        for candidate in self._extension_candidates(
                            left, table
                        ):
                            self._consider_pareto(frontiers, subset, candidate)
        return frontiers

    def _seed_bound_frontier(
        self, priced: list[str], block: _SubPlan | None
    ) -> None:
        """Seed the B&B bound with two greedy complete plans: one chasing
        money, one chasing latency — together they bound both axes."""
        for key_fn in (
            lambda c: (c.cost, c.latency),
            lambda c: (c.latency, c.cost),
        ):
            complete = self._greedy_complete(priced, block, key_fn)
            if complete is not None:
                self._note_complete(complete.cost, complete.latency)

    def _greedy_complete(
        self, priced: list[str], block: _SubPlan | None, key_fn
    ) -> _SubPlan | None:
        """One greedy left-deep completion, extending by ``key_fn``-best."""
        current = block
        remaining = dict(sorted((t.lower(), t) for t in priced))
        while remaining:
            step: _SubPlan | None = None
            step_key: str | None = None
            for key, table in remaining.items():
                for candidate in self._extension_candidates(current, table):
                    if step is None or key_fn(candidate) < key_fn(step):
                        step, step_key = candidate, key
            if step is None:
                return None
            current = step
            del remaining[step_key]
        return current

    def _note_complete(self, cost: float, latency: float) -> None:
        """Record a complete plan's vector in the B&B bound frontier."""
        for known_cost, known_latency in self._bound_frontier:
            if known_cost <= cost and known_latency <= latency:
                return
        self._bound_frontier = [
            (known_cost, known_latency)
            for known_cost, known_latency in self._bound_frontier
            if not (cost <= known_cost and latency <= known_latency)
        ]
        self._bound_frontier.append((cost, latency))

    def _consider_pareto(
        self,
        frontiers: dict[frozenset[str], list[_SubPlan]],
        key: frozenset[str],
        candidate: _SubPlan,
    ) -> None:
        entries = frontiers.setdefault(key, [])
        accepted = True
        # Within-subset *weak* dominance: an incumbent at least as good
        # on both axes rejects the candidate, so on exact vector ties the
        # first-seen plan is kept — the same tie rule that makes the
        # scalar path reproducible against its oracle.
        for incumbent in entries:
            if (
                incumbent.cost <= candidate.cost
                and incumbent.latency <= candidate.latency
            ):
                accepted = False
                break
        bounded = False
        if accepted and self._prune:
            for bound_cost, bound_latency in self._bound_frontier:
                if (
                    bound_cost < candidate.cost
                    and bound_latency < candidate.latency
                ):
                    # Strictly worse than a complete plan on BOTH axes:
                    # access costs are non-negative and additive, so no
                    # extension of this candidate can reach the final
                    # frontier or claim a first-seen tie on it.
                    accepted = False
                    bounded = True
                    break
        if self._prune and not accepted:
            self._pruned += 1
        if self._tracing:
            self.context.tracer.event(
                "plan_candidate",
                tables=sorted(key),
                cost=candidate.cost,
                latency_ms=candidate.latency,
                accepted=accepted,
                bounded=bounded,
            )
        if not accepted:
            return
        # Drop incumbents strictly worse than the newcomer on both axes
        # (their extensions are strictly worse than the newcomer's and a
        # complete plan through the newcomer will bound them anyway);
        # weak ties stay, preserving first-seen representatives.
        entries[:] = [
            incumbent
            for incumbent in entries
            if not (
                candidate.cost < incumbent.cost
                and candidate.latency < incumbent.latency
            )
        ]
        entries.append(candidate)
        if self._prune and key == self._full_key:
            self._note_complete(candidate.cost, candidate.latency)

    def _combine_components_pareto(
        self,
        frontiers: dict[frozenset[str], list[_SubPlan]],
        components: list[frozenset[str]],
    ) -> list[_SubPlan]:
        """Theorem 3 over frontiers: the Cartesian product of the
        components' Pareto sets, combined one candidate per combination."""
        combos: list[list[_SubPlan]] = [[]]
        for component in components:
            entries = frontiers.get(component)
            if not entries:
                return []
            combos = [
                prefix + [entry] for prefix in combos for entry in entries
            ]
        return [self._combine_parts(parts) for parts in combos]

    @staticmethod
    def _pareto_front(entries: list[_SubPlan]) -> list[_SubPlan]:
        """The non-dominated subset, in first-seen order.

        The per-subset lists may retain entries that a later, cheaper
        *and* faster plan never displaced (weak ties are deliberately
        kept during the run); the final sweep removes anything another
        entry beats on one axis without losing the other.
        """
        front = []
        for entry in entries:
            dominated = False
            for other in entries:
                if other is entry:
                    continue
                if (
                    other.cost <= entry.cost
                    and other.latency <= entry.latency
                    and (
                        other.cost < entry.cost
                        or other.latency < entry.latency
                    )
                ):
                    dominated = True
                    break
            if not dominated:
                front.append(entry)
        return front

    def _select_from_frontier(
        self, front: list[_SubPlan]
    ) -> tuple[_SubPlan, str]:
        """Pick the frontier point the objective asks for (or raise)."""
        objective = self._objective
        count = len(front)
        if objective.kind == "min_latency":
            chosen = min(front, key=lambda e: (e.latency, e.cost))
            return chosen, f"fastest of {count} Pareto point(s)"
        if objective.kind == "dollars_under_latency_ms":
            bound = objective.latency_bound_ms
            feasible = [e for e in front if e.latency <= bound]
            if not feasible:
                self.context.metrics.counter(
                    "plan_objective_infeasible"
                ).inc()
                fastest = min(e.latency for e in front)
                raise InfeasibleObjectiveError(
                    f"no plan fits under {bound:g} ms: the fastest of "
                    f"{count} Pareto point(s) is estimated at "
                    f"{fastest:g} ms",
                    objective=objective,
                    frontier=tuple((e.cost, e.latency) for e in front),
                )
            chosen = min(feasible, key=lambda e: (e.cost, e.latency))
            return chosen, (
                f"cheapest of {len(feasible)}/{count} Pareto point(s) "
                f"within {bound:g} ms"
            )
        if objective.kind == "latency_under_dollars":
            bound = objective.dollar_bound
            feasible = [e for e in front if e.cost <= bound]
            if not feasible:
                self.context.metrics.counter(
                    "plan_objective_infeasible"
                ).inc()
                cheapest = min(e.cost for e in front)
                raise InfeasibleObjectiveError(
                    f"no plan fits under ${bound:g}: the cheapest of "
                    f"{count} Pareto point(s) is estimated at "
                    f"${cheapest:g}",
                    objective=objective,
                    frontier=tuple((e.cost, e.latency) for e in front),
                )
            chosen = min(feasible, key=lambda e: (e.latency, e.cost))
            return chosen, (
                f"fastest of {len(feasible)}/{count} Pareto point(s) "
                f"under ${bound:g}"
            )
        weight_dollars = objective.dollar_weight
        weight_latency = objective.latency_weight_per_ms
        chosen = min(
            front,
            key=lambda e: (
                weight_dollars * e.cost + weight_latency * e.latency,
                e.cost,
                e.latency,
            ),
        )
        return chosen, (
            f"best {objective.describe()} score over {count} Pareto point(s)"
        )

    # ----------------------------------------------------------- access costing

    def _extension_candidates(
        self, left: _SubPlan | None, table: str
    ) -> list[_SubPlan]:
        """All ways to add ``table`` to the current left subtree."""
        candidates: list[_SubPlan] = []
        applicable = (
            self._applicable_joins(left.node.relations, table)
            if left is not None
            else []
        )

        if self._standalone_feasible(table):
            access = self._direct_access(table)
            self._evaluated += 1
            candidates.append(self._attach(left, access, applicable, bind=False))

        if left is not None and applicable:
            bindable = [
                j for j in applicable if self._bindable(table, j.side_for(table).column)
            ]
            for r in range(1, min(self.options.max_bind_attrs, len(bindable)) + 1):
                for join_subset in combinations(bindable, r):
                    bind_columns = {j.side_for(table).column for j in join_subset}
                    if len(bind_columns) != len(join_subset):
                        continue
                    if not self._feasible_with_binding(table, bind_columns):
                        continue
                    access = self._bind_access(table, join_subset, left)
                    self._evaluated += 1
                    candidates.append(
                        self._attach(left, access, applicable, bind=True)
                    )
        return candidates

    def _attach(
        self,
        left: _SubPlan | None,
        access: MarketAccessNode,
        applicable: list[JoinPredicate],
        bind: bool,
    ) -> _SubPlan:
        if left is None:
            return _SubPlan(
                node=access,
                cost=access.cost,
                rows=access.estimated_rows,
                latency=access.latency_ms,
            )
        rows = left.rows * access.estimated_rows
        if applicable:
            for join in applicable:
                d_left = self._base_distinct(join.left.table, join.left.column)
                d_right = self._base_distinct(join.right.table, join.right.column)
                rows /= max(d_left, d_right, 1.0)
        node = JoinNode(
            relations=left.node.relations | access.relations,
            cost=left.cost + access.cost,
            estimated_rows=rows,
            latency_ms=left.latency + access.latency_ms,
            left=left.node,
            right=access,
            predicates=tuple(applicable),
            bind=bind,
            cartesian=not applicable,
        )
        return _SubPlan(node=node, cost=node.cost, rows=rows, latency=node.latency_ms)

    def _applicable_joins(
        self, left_relations: frozenset[str], table: str
    ) -> list[JoinPredicate]:
        found = []
        for join in self._query.joins:
            if not join.involves(table):
                continue
            other = join.other_side(table).table.lower()
            if other in left_relations:
                found.append(join)
        return found

    def _direct_access(self, table: str) -> MarketAccessNode:
        # The access node is a pure function of the table (given the query
        # and store state), so one instance is shared by every candidate
        # that embeds it; plans never mutate their nodes.  The Figure-15
        # box counters still tick per use, exactly like the oracle's.
        key = table.lower()
        node = self._memo_direct.get(key)
        if node is None:
            rewrite = self._rewrite(table)
            node = MarketAccessNode(
                relations=frozenset([key]),
                cost=self._objective_cost(rewrite),
                estimated_rows=self._region_rows(table),
                latency_ms=self._access_latency(rewrite),
                table=table,
                rewrite=rewrite,
            )
            self._memo_direct[key] = node
        rewrite = node.rewrite
        self._enumerated_boxes += rewrite.enumerated_boxes
        self._kept_boxes += rewrite.kept_boxes
        return node

    def _region_rows(self, table: str) -> float:
        """Histogram estimate of the table's whole request region (memoized).

        An adaptive-replan overlay takes precedence: the executor has
        *seen* the region's exact row count, so the shared estimate is
        no longer the best truth for this one planning call.
        """
        key = table.lower()
        rows = self._memo_region_rows.get(key)
        if rows is None:
            if self._overlay is not None:
                observed = self._overlay.region_rows(table)
                if observed is not None:
                    self._memo_region_rows[key] = observed
                    return observed
            rewrite = self._rewrite(table)
            histogram = self.context.catalog.statistics(table).histogram
            rows = sum(
                histogram.estimate(box) for box in rewrite.request_boxes
            )
            self._memo_region_rows[key] = rows
        return rows

    def _bind_access(
        self,
        table: str,
        joins: tuple[JoinPredicate, ...],
        left: _SubPlan,
    ) -> MarketAccessNode:
        """Cost a bind-join access: one call per distinct binding combination."""
        tuples_per_transaction = self.context.tuples_per_transaction(table)
        rewrite = self._rewrite(table)
        region_rows = self._region_rows(table)

        bindings = 1.0
        selectivity = 1.0
        for join in joins:
            outer = join.other_side(table)
            inner = join.side_for(table)
            outer_distinct = min(
                self._base_distinct(outer.table, outer.column), left.rows
            )
            bindings *= max(outer_distinct, 1.0)
            domain = self._attribute_domain_size(table, inner.column)
            selectivity /= max(domain, 1.0)
        bindings = min(bindings, max(left.rows, 1.0))

        rows_per_binding = region_rows * selectivity
        fetched_rows = rows_per_binding * bindings
        if self.options.use_sqr and region_rows > 0:
            uncovered = rewrite.estimated_remainder_rows / region_rows
            uncovered = min(max(uncovered, 0.0), 1.0)
        elif self.options.use_sqr:
            uncovered = 0.0
        else:
            uncovered = 1.0

        per_call = (
            math.ceil(rows_per_binding / tuples_per_transaction)
            if rows_per_binding > 0
            else 0
        )
        if self.options.objective == "calls":
            cost = bindings
        else:
            cost = bindings * uncovered * per_call
        # One REST call per uncovered binding combination, each returning
        # ``per_call`` transaction pages — the latency axis stays in
        # transactions even when the money axis counts calls.
        latency = bindings * uncovered * self._latency_model.call_ms(per_call)
        self._enumerated_boxes += rewrite.enumerated_boxes
        self._kept_boxes += rewrite.kept_boxes
        return MarketAccessNode(
            relations=frozenset([table.lower()]),
            cost=cost,
            estimated_rows=min(fetched_rows, region_rows),
            latency_ms=latency,
            table=table,
            rewrite=rewrite,
            bind_attributes=tuple(j.side_for(table).column for j in joins),
            estimated_bindings=bindings,
        )

    def _access_latency(self, rewrite: RewriteResult) -> float:
        """Estimated serial wall-clock of a direct access's remainder calls."""
        model = self._latency_model
        return sum(
            model.call_ms(query.estimated_transactions)
            for query in rewrite.remainder
        )

    def _objective_cost(self, rewrite: RewriteResult) -> float:
        if self.options.objective == "calls":
            return float(max(len(rewrite.remainder), len(rewrite.request_boxes)))
        return float(rewrite.estimated_transactions)

    def _rewrite(self, table: str) -> RewriteResult:
        """Rewrite a table access for costing (memoized per optimize()).

        The per-call memo is safe because planning never mutates the
        store: within one ``optimize()`` every probe of a table returns
        the same result.  The rewriter's own epoch-keyed memo still
        guards reuse *across* queries — it can never serve a result
        computed before a store mutation.
        """
        key = table.lower()
        cached = self._memo_rewrite.get(key)
        if cached is not None:
            return cached
        rewriter = self.context.rewriter
        previous = rewriter.enabled
        rewriter.enabled = previous and self.options.use_sqr
        try:
            result = rewriter.rewrite(
                table,
                self._query.constraints_for(table),
                self.context.tuples_per_transaction(table),
            )
        finally:
            rewriter.enabled = previous
        self._memo_rewrite[key] = result
        return result

    # ------------------------------------------------------------- feasibility

    def _space(self, table: str) -> BoxSpace:
        return self.context.catalog.statistics(table).space

    def _constrained_attributes(self, table: str) -> set[str]:
        return {
            c.attribute.lower() for c in self._query.constraints_for(table)
        }

    def _standalone_feasible(self, table: str) -> bool:
        """All bound dimensions are constrained by the query itself."""
        key = table.lower()
        cached = self._memo_standalone.get(key)
        if cached is not None:
            return cached
        constrained = self._constrained_attributes(table)
        feasible = True
        for dimension in self._space(table).dimensions:
            if dimension.is_bound and dimension.attribute.lower() not in constrained:
                feasible = False
                break
        self._memo_standalone[key] = feasible
        return feasible

    def _feasible_with_binding(self, table: str, bound_columns: set[str]) -> bool:
        key = (table.lower(), frozenset(c.lower() for c in bound_columns))
        cached = self._memo_feasible.get(key)
        if cached is not None:
            return cached
        constrained = self._constrained_attributes(table) | key[1]
        feasible = True
        for dimension in self._space(table).dimensions:
            if dimension.is_bound and dimension.attribute.lower() not in constrained:
                feasible = False
                break
        self._memo_feasible[key] = feasible
        return feasible

    def _bindable(self, table: str, column: str) -> bool:
        """A bind join can only bind a constrainable (dimension) attribute."""
        key = (table.lower(), column.lower())
        cached = self._memo_bindable.get(key)
        if cached is None:
            cached = self._space(table).has_dimension(column)
            self._memo_bindable[key] = cached
        return cached

    # ----------------------------------------------------------------- statistics

    def _base_distinct(self, table: str, column: str) -> float:
        key = (table.lower(), column.lower())
        cached = self._memo_distinct.get(key)
        if cached is not None:
            return cached
        if self._overlay is not None:
            observed = self._overlay.distinct(table, column)
            if observed is not None:
                self._memo_distinct[key] = observed
                return observed
        if self.context.is_market(table):
            statistics = self.context.catalog.statistics(table)
            space = statistics.space
            index = space.dimension_index(column)
            if index is None:
                distinct = float(statistics.cardinality)
            else:
                dimension = space.dimensions[index]
                distinct = float(
                    min(dimension.high - dimension.low, statistics.cardinality)
                )
        else:
            distinct = float(self.context.local_info(table).distinct_of(column))
        self._memo_distinct[key] = distinct
        return distinct

    def _attribute_domain_size(self, table: str, column: str) -> float:
        key = (table.lower(), column.lower())
        cached = self._memo_domain.get(key)
        if cached is not None:
            return cached
        statistics = self.context.catalog.statistics(table)
        index = statistics.space.dimension_index(column)
        if index is None:
            size = float(statistics.cardinality)
        else:
            dimension = statistics.space.dimensions[index]
            size = float(dimension.high - dimension.low)
        self._memo_domain[key] = size
        return size

    def _local_filtered_count(self, table: str) -> float:
        """Exact matching-row count of a local table (local data is free)."""
        data = self.context.local_db.table(table)
        predicates = [
            c.to_expression(table) for c in self._query.constraints_for(table)
        ]
        predicates.extend(self._query.residuals_for(table))
        if not predicates:
            return float(len(data))
        from repro.relational.operators import filter_rows, scan

        return float(len(filter_rows(scan(data, alias=table), conjunction(predicates)).rows))

    # --------------------------------------------------------- bushy enumeration

    def _optimize_bushy(
        self,
        query: LogicalQuery,
        market_tables: list[str],
        local_tables: list[str],
    ) -> PlanningResult:
        """Exhaustive bushy enumeration — the "Disable All" arm of Figure 14.

        Every relation (local or market) is a base unit; every subset is
        planned by trying all (left, right) splits with local joins and all
        left-deep-style bind extensions.  No Theorem 1/2/3 shortcuts; the
        instrumentation counts every candidate plan formed.
        """
        units: dict[str, _SubPlan] = {}
        for table in local_tables:
            rows = self._local_filtered_count(table)
            node = LocalBlockNode(
                relations=frozenset([table.lower()]),
                cost=0.0,
                estimated_rows=rows,
                tables=(table,),
            )
            units[table.lower()] = _SubPlan(node=node, cost=0.0, rows=rows)
        feasible_market: dict[str, _SubPlan] = {}
        for table in market_tables:
            if self._standalone_feasible(table):
                access = self._direct_access(table)
                self._evaluated += 1
                feasible_market[table.lower()] = _SubPlan(
                    node=access,
                    cost=access.cost,
                    rows=access.estimated_rows,
                    latency=access.latency_ms,
                )

        all_tables = sorted(
            [t.lower() for t in query.tables]
        )
        by_name = {t.lower(): t for t in query.tables}
        best: dict[frozenset[str], _SubPlan] = {}
        for key, subplan in units.items():
            best[frozenset([key])] = subplan
        for key, subplan in feasible_market.items():
            self._consider(best, frozenset([key]), subplan)

        for size in range(2, len(all_tables) + 1):
            for subset_names in combinations(all_tables, size):
                subset = frozenset(subset_names)
                # (i) all binary splits joined locally (bushy shape).
                for r in range(1, size):
                    for left_names in combinations(sorted(subset), r):
                        left_set = frozenset(left_names)
                        right_set = subset - left_set
                        left = best.get(left_set)
                        right = best.get(right_set)
                        if left is None or right is None:
                            continue
                        predicates = self._joins_between_sets(left_set, right_set)
                        self._evaluated += 1
                        rows = left.rows * right.rows
                        for join in predicates:
                            d_left = self._base_distinct(
                                join.left.table, join.left.column
                            )
                            d_right = self._base_distinct(
                                join.right.table, join.right.column
                            )
                            rows /= max(d_left, d_right, 1.0)
                        node = JoinNode(
                            relations=subset,
                            cost=left.cost + right.cost,
                            estimated_rows=rows,
                            latency_ms=left.latency + right.latency,
                            left=left.node,
                            right=right.node,
                            predicates=tuple(predicates),
                            cartesian=not predicates,
                        )
                        self._consider(
                            best,
                            subset,
                            _SubPlan(
                                node=node,
                                cost=node.cost,
                                rows=rows,
                                latency=node.latency_ms,
                            ),
                        )
                # (ii) bind extensions: left subtree + one bound market table.
                for table_key in subset:
                    table = by_name[table_key]
                    if not self.context.is_market(table):
                        continue
                    rest = subset - {table_key}
                    left = best.get(rest)
                    if left is None:
                        continue
                    for candidate in self._extension_candidates(left, table):
                        self._consider(best, subset, candidate)

        key = frozenset(all_tables)
        if key not in best:
            raise PlanningError("no feasible bushy plan")
        return self._result(best[key])

    def _joins_between_sets(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[JoinPredicate]:
        found = []
        for join in self._query.joins:
            left_t, right_t = (t.lower() for t in join.tables())
            if (left_t in left and right_t in right) or (
                left_t in right and right_t in left
            ):
                found.append(join)
        return found


# ------------------------------------------------------------------ formulas


def plan_space_baseline(
    n: int, tightened: bool = True, *, enumerated: bool = True
) -> int:
    """Candidate count of the bushy enumerator for an all-market chain query.

    The default is the **exact** number of candidate plans
    ``Optimizer(use_theorems=False, prune=False)`` evaluates for a chain
    of ``n`` market tables with nothing covered (the topology the tests
    and ``bench_planner`` generate: table *i* shares one join attribute
    with table *i+1*, every attribute free): ``n`` feasible base accesses,
    plus per subset of size ``k`` every binary split (``2^k − 2``,
    memoized best-per-side) and every extension — one direct access per
    member plus ``j + C(j,2)`` bind combinations for a member with ``j``
    chain neighbours present.

    ``enumerated=False`` returns the paper's Section 4.1 closed form
    instead, which counts the un-memoized plan space:
    ``n + Σ_k C(n,k) · Σ_i C(k,i) · 4^min(i,k-i)``; its looser
    ``tightened=False`` variant (exponent ``k−i``) has the headline
    ``6^n − 5^n`` leading term.  ``tightened`` only affects the paper
    form.
    """
    if not enumerated:
        total = n
        for k in range(2, n + 1):
            inner = 0
            for i in range(1, k):
                exponent = min(i, k - i) if tightened else k - i
                inner += math.comb(k, i) * 4 ** exponent
            total += math.comb(n, k) * inner
        return total
    total = n  # level 1: one direct access per (feasible) market table
    for k in range(2, n + 1):
        # Every subset of size k gets all 2^k − 2 binary splits plus one
        # direct-access extension per member.
        total += math.comb(n, k) * (2 ** k - 2 + k)
        # Bind extensions: a member with j chain neighbours present in the
        # rest contributes C(j,1) + C(j,2) bind combinations (j <= 2).
        if n >= 3:
            both = (n - 2) * math.comb(n - 3, k - 3) if k >= 3 else 0
            one_interior = 2 * (n - 2) * math.comb(n - 3, k - 2)
            one_endpoint = 2 * math.comb(n - 2, k - 2)
            total += 3 * both + one_interior + one_endpoint
        elif n == 2:
            # Two tables: each extension has its single neighbour present.
            total += 2
    return total


def plan_space_payless(
    n: int, zero_price: int = 0, *, enumerated: bool = True
) -> int:
    """Candidate count with Theorems 1-3 for a chain query.

    The default is the **exact** number of candidate plans
    ``Optimizer(prune=False)`` evaluates for a chain of ``n`` market
    tables whose first ``zero_price`` tables the store fully covers (so
    Theorem 2 folds them into the local block).  With ``n' = n − m``
    priced tables left: level 1 contributes one direct access each plus a
    block bind join for the table adjacent to the block; a connected
    interval of size ``k`` contributes ``4k − 4`` candidates (``4k − 2``
    when anchored at the block); each disconnected subset with all its
    components planned contributes one Theorem-3 combination.

    ``enumerated=False`` returns the previous closed-form approximation
    ``4n' + Σ_k (4·k·(n'-k+1) + (C(n',k) − (n'-k+1)))`` ≈ 2^n' + (2/3)n'³.
    """
    reduced = n - zero_price
    if not enumerated:
        if reduced <= 0:
            return 1
        total = 4 * reduced
        for k in range(2, reduced + 1):
            connected = reduced - k + 1
            disconnected = math.comb(reduced, k) - connected
            total += 4 * k * connected + disconnected
        return total
    if reduced <= 0:
        return 0  # the zero-price block is the plan; nothing is enumerated
    block = zero_price >= 1
    total = reduced + (1 if block else 0)
    for k in range(2, reduced + 1):
        intervals = reduced - k + 1
        if block:
            # The interval anchored at the block gains the block bind join.
            total += (intervals - 1) * (4 * k - 4) + (4 * k - 2)
        else:
            total += intervals * (4 * k - 4)
        total += math.comb(reduced, k) - intervals
    return total
