"""Persisting a PayLess installation across sessions (legacy JSON blob).

The whole economics of PayLess rests on *never* re-buying data it already
holds — which only works if the semantic store (and the learned statistics)
survive process restarts.  This module serializes the buyer-side state to a
JSON file: per-table covered regions + cached rows, the feedback
histograms, the consistency clock, and the running bill.

Usage::

    save_state(payless, "buyer_state.json")
    ...
    payless = PayLess.full(market); payless.register_dataset("WHW")
    load_state(payless, "buyer_state.json")   # merges into the fresh install

This all-or-nothing blob is the *compatibility* path.  It is only durable
at the moment ``save_state`` runs — everything since the last save dies
with a crash — and its v1 format silently dropped the wasted/coalesced
sides of the bill.  The crash-safe path is the write-ahead log in
:mod:`repro.durable` (``QueryOptions(durability=...)``); ``load_state``
on a WAL-backed installation still works, importing the legacy JSON into
the WAL's snapshot format (with a warning).  The v2 format written here
adds the previously-dropped billing buckets; v1 files load with those
buckets defaulting to zero.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.core.payless import PayLess
from repro.durable.records import (
    box_from_json,
    box_to_json,
    cover_from_json,
    cover_to_json,
)
from repro.errors import ReproError
from repro.semstore.boxes import Box

#: v1 = store + histograms + spent totals only; v2 adds the wasted and
#: coalesced buckets v1 silently dropped.  Both load.
FORMAT_VERSION = 2


def _box_to_json(box: Box) -> list[list[int]]:
    return box_to_json(box)


def _box_from_json(data: list[list[int]]) -> Box:
    return box_from_json(data)


def save_state(payless: PayLess, path: str | Path) -> None:
    """Write the buyer-side state (store + statistics + bill) to ``path``."""
    from repro.stats.isomer import FeedbackHistogram

    tables = {}
    for key, table_store in payless.store._tables.items():  # noqa: SLF001
        statistics = payless.catalog.statistics(key)
        histogram_state = None
        if isinstance(statistics.histogram, FeedbackHistogram):
            histogram_state = statistics.histogram.state_snapshot()
        tables[key] = {
            "covered": [
                cover_to_json(covered) for covered in table_store.covered
            ],
            "rows": [list(row) for row in table_store._rows],  # noqa: SLF001
            # Only the default (ISOMER-style) statistic serializes; other
            # statistics re-learn from scratch after a restart.
            "histogram": histogram_state,
        }
    state = {
        "version": FORMAT_VERSION,
        "clock": payless.store.clock,
        "totals": {
            "transactions": payless.total_transactions,
            "price": payless.total_price,
            "calls": payless.total_calls,
            "queries": payless.queries_executed,
            "wasted_transactions": payless.total_wasted_transactions,
            "wasted_price": payless.total_wasted_price,
            "coalesced_fetches": payless.total_coalesced_fetches,
            "coalesced_transactions": payless.total_coalesced_transactions,
            "coalesced_price": payless.total_coalesced_price,
        },
        "tables": tables,
    }
    Path(path).write_text(json.dumps(state))


def load_state(payless: PayLess, path: str | Path) -> None:
    """Merge a previously saved state into a freshly registered install.

    Every table in the file must already be registered (re-register the
    datasets first); the file's rows and coverage are merged into the
    store, the histograms are restored, and the bill counters resume.
    Accepts both v1 and v2 files (v1's missing wasted/coalesced buckets
    default to zero — the information is simply not in the file).
    """
    state = json.loads(Path(path).read_text())
    version = state.get("version")
    if version not in (1, FORMAT_VERSION):
        raise ReproError(
            f"unsupported state version {version!r}"
        )
    for key, table_state in state["tables"].items():
        if not payless.store.has_table(key):
            raise ReproError(
                f"state references unregistered table {key!r}; call "
                "register_dataset first"
            )
        table_store = payless.store.table(key)
        rows = [tuple(row) for row in table_state["rows"]]
        # Reinsert rows (dedup + grid points + point index), then restore
        # the exact covered-region list (record() would re-consolidate, so
        # covers are re-inserted verbatim for fidelity).  Both restore
        # paths bump the table epoch, invalidating any memoized rewrites.
        for row in rows:
            table_store.restore_row(row)
        for covered in table_state["covered"]:
            table_store.restore_cover(cover_from_json(covered))
        from repro.stats.isomer import FeedbackHistogram

        histogram = payless.catalog.statistics(key).histogram
        histogram_state = table_state.get("histogram")
        if histogram_state is not None and isinstance(
            histogram, FeedbackHistogram
        ):
            histogram.restore_state(
                histogram_state["cardinality"],
                histogram_state["feedback_count"],
                [
                    (box_from_json(r["box"]), r["count"])
                    for r in histogram_state["refined"]
                ],
            )
    payless.store.clock = state["clock"]
    totals = state["totals"]
    payless.total_transactions = totals["transactions"]
    payless.total_price = totals["price"]
    payless.total_calls = totals["calls"]
    payless.queries_executed = totals["queries"]
    payless.total_wasted_transactions = totals.get("wasted_transactions", 0)
    payless.total_wasted_price = totals.get("wasted_price", 0.0)
    payless.total_coalesced_fetches = totals.get("coalesced_fetches", 0)
    payless.total_coalesced_transactions = totals.get(
        "coalesced_transactions", 0
    )
    payless.total_coalesced_price = totals.get("coalesced_price", 0.0)
    if payless.durability is not None:
        # Importing the legacy blob into a WAL-backed installation: make
        # the merged state durable immediately by snapshotting it into the
        # WAL state dir, so the next restart recovers it without the JSON.
        warnings.warn(
            "load_state() on a WAL-backed installation imports the legacy "
            "JSON into the WAL state dir; future restarts should use "
            "payless.recover() instead",
            stacklevel=2,
        )
        payless.durability.snapshot()
