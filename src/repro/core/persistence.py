"""Persisting a PayLess installation across sessions.

The whole economics of PayLess rests on *never* re-buying data it already
holds — which only works if the semantic store (and the learned statistics)
survive process restarts.  This module serializes the buyer-side state to a
JSON file: per-table covered regions + cached rows, the feedback
histograms, the consistency clock, and the running bill.

Usage::

    save_state(payless, "buyer_state.json")
    ...
    payless = PayLess.full(market); payless.register_dataset("WHW")
    load_state(payless, "buyer_state.json")   # merges into the fresh install
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.payless import PayLess
from repro.errors import ReproError
from repro.semstore.boxes import Box
from repro.semstore.store import CoveredBox
from repro.stats.isomer import _Refined

FORMAT_VERSION = 1


def _box_to_json(box: Box) -> list[list[int]]:
    return [list(extent) for extent in box.extents]


def _box_from_json(data: list[list[int]]) -> Box:
    return Box(tuple((low, high) for low, high in data))


def save_state(payless: PayLess, path: str | Path) -> None:
    """Write the buyer-side state (store + statistics + bill) to ``path``."""
    from repro.stats.isomer import FeedbackHistogram

    tables = {}
    for key, table_store in payless.store._tables.items():  # noqa: SLF001
        statistics = payless.catalog.statistics(key)
        histogram_state = None
        if isinstance(statistics.histogram, FeedbackHistogram):
            histogram_state = {
                "cardinality": statistics.histogram.cardinality,
                "feedback_count": statistics.histogram.feedback_count,
                "refined": [
                    {"box": _box_to_json(refined.box), "count": refined.count}
                    for refined in statistics.histogram._refined  # noqa: SLF001
                ],
            }
        tables[key] = {
            "covered": [
                {
                    "box": _box_to_json(covered.box),
                    "stored_at": covered.stored_at,
                    "row_count": covered.row_count,
                }
                for covered in table_store.covered
            ],
            "rows": [list(row) for row in table_store._rows],  # noqa: SLF001
            # Only the default (ISOMER-style) statistic serializes; other
            # statistics re-learn from scratch after a restart.
            "histogram": histogram_state,
        }
    state = {
        "version": FORMAT_VERSION,
        "clock": payless.store.clock,
        "totals": {
            "transactions": payless.total_transactions,
            "price": payless.total_price,
            "calls": payless.total_calls,
            "queries": payless.queries_executed,
        },
        "tables": tables,
    }
    Path(path).write_text(json.dumps(state))


def load_state(payless: PayLess, path: str | Path) -> None:
    """Merge a previously saved state into a freshly registered install.

    Every table in the file must already be registered (re-register the
    datasets first); the file's rows and coverage are merged into the
    store, the histograms are restored, and the bill counters resume.
    """
    state = json.loads(Path(path).read_text())
    if state.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported state version {state.get('version')!r}"
        )
    for key, table_state in state["tables"].items():
        if not payless.store.has_table(key):
            raise ReproError(
                f"state references unregistered table {key!r}; call "
                "register_dataset first"
            )
        table_store = payless.store.table(key)
        rows = [tuple(row) for row in table_state["rows"]]
        # Reinsert rows (dedup + grid points + point index), then restore
        # the exact covered-region list (record() would re-consolidate, so
        # covers are re-inserted verbatim for fidelity).  Both restore
        # paths bump the table epoch, invalidating any memoized rewrites.
        for row in rows:
            table_store.restore_row(row)
        for covered in table_state["covered"]:
            table_store.restore_cover(
                CoveredBox(
                    box=_box_from_json(covered["box"]),
                    stored_at=covered["stored_at"],
                    row_count=covered["row_count"],
                )
            )
        from repro.stats.isomer import FeedbackHistogram

        histogram = payless.catalog.statistics(key).histogram
        histogram_state = table_state.get("histogram")
        if histogram_state is not None and isinstance(
            histogram, FeedbackHistogram
        ):
            histogram.cardinality = histogram_state["cardinality"]
            histogram.feedback_count = histogram_state["feedback_count"]
            histogram._refined = [  # noqa: SLF001
                _Refined(box=_box_from_json(r["box"]), count=r["count"])
                for r in histogram_state["refined"]
            ]
    payless.store.clock = state["clock"]
    totals = state["totals"]
    payless.total_transactions = totals["transactions"]
    payless.total_price = totals["price"]
    payless.total_calls = totals["calls"]
    payless.queries_executed = totals["queries"]
