"""Execution-plan trees for PayLess.

Only leaves that call the market contribute to a plan's price φ (the Fact
inside Theorem 1's proof); local scans, local joins and Cartesian products
are free.  Plans here are *left-deep over market accesses*: the left-most
leaf is the pre-joined block of zero-price relations (Theorem 2), and each
further level adds exactly one market relation, accessed either directly or
through a bind join (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.rewriter import RewriteResult
from repro.relational.query import JoinPredicate


@dataclass
class PlanNode:
    """Base node: relation set, estimated price, estimated output size."""

    relations: frozenset[str]
    cost: float
    estimated_rows: float
    #: Estimated wall-clock of this subtree's market calls, run serially,
    #: under the planning context's latency model (0 for free subtrees).
    #: The second axis of the planner's money-latency Pareto frontier.
    latency_ms: float = 0.0

    def leaves(self) -> Iterator["PlanNode"]:
        yield self

    def describe(self, indent: int = 0) -> str:
        raise NotImplementedError


@dataclass
class LocalScanNode(PlanNode):
    """Scan of a local (buyer-side) table — never costs market money."""

    table: str = ""

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"LocalScan({self.table}) rows≈{self.estimated_rows:.0f}"


@dataclass
class LocalBlockNode(PlanNode):
    """The Theorem-2 block: all zero-price relations joined first.

    Contains local tables and market relations whose request regions are
    already fully covered by the semantic store.
    """

    tables: tuple[str, ...] = ()
    covered_market_tables: tuple[str, ...] = ()

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        covered = (
            f" (covered market: {', '.join(self.covered_market_tables)})"
            if self.covered_market_tables
            else ""
        )
        return (
            f"{pad}LocalBlock({', '.join(self.tables)}){covered} "
            f"rows≈{self.estimated_rows:.0f}"
        )


@dataclass
class MarketAccessNode(PlanNode):
    """A leaf REST access to one market table.

    ``bind_attributes`` is nonempty when the access is the right side of a
    bind join: the listed attributes receive values from the outer plan at
    execution time.  ``rewrite`` holds the planning-time rewriting outcome
    (the executor re-rewrites with actual binding values).
    """

    table: str = ""
    rewrite: RewriteResult | None = None
    bind_attributes: tuple[str, ...] = ()
    #: Planning-time estimate of distinct binding-value combinations.
    estimated_bindings: float = 1.0

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        bind = (
            f" bind({', '.join(self.bind_attributes)})×{self.estimated_bindings:.0f}"
            if self.bind_attributes
            else ""
        )
        return (
            f"{pad}MarketAccess({self.table}){bind} "
            f"φ≈{self.cost:.0f} rows≈{self.estimated_rows:.0f}"
        )


@dataclass
class MaterializedNode(PlanNode):
    """An already-executed prefix, resumed in place during a re-plan.

    Adaptive re-optimization seeds the suffix DP with this node: its
    ``estimated_rows`` is the prefix's *actual* cardinality, its cost is
    zero (the money is already spent and the rows already staged), and
    the executor substitutes the materialized intermediate for it at
    resume time.  It never appears in a statically-planned tree nor in
    any plan-cache entry.
    """

    tables: tuple[str, ...] = ()

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}Materialized({', '.join(self.tables)}) "
            f"rows≈{self.estimated_rows:.0f}"
        )


@dataclass
class JoinNode(PlanNode):
    """Binary join; ``bind=True`` marks a bind join (−→⋈)."""

    left: PlanNode | None = None
    right: PlanNode | None = None
    predicates: tuple[JoinPredicate, ...] = ()
    bind: bool = False
    cartesian: bool = False

    def leaves(self) -> Iterator[PlanNode]:
        yield from self.left.leaves()
        yield from self.right.leaves()

    @property
    def symbol(self) -> str:
        if self.cartesian:
            return "×"
        return "−→⋈" if self.bind else "⋈"

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = [
            f"{pad}{self.symbol} φ≈{self.cost:.0f} rows≈{self.estimated_rows:.0f}"
        ]
        lines.append(self.left.describe(indent + 2))
        lines.append(self.right.describe(indent + 2))
        return "\n".join(lines)


def plan_latency(plan: PlanNode) -> float:
    """Estimated serial wall-clock (ms) of the plan's market calls."""
    total = 0.0
    for leaf in plan.leaves():
        if isinstance(leaf, MarketAccessNode):
            total += leaf.latency_ms
    return total


def plan_price(plan: PlanNode) -> float:
    """φ(P): the summed price of market-access leaves."""
    total = 0.0
    for leaf in plan.leaves():
        if isinstance(leaf, MarketAccessNode):
            total += leaf.cost
    return total


def market_leaves(plan: PlanNode) -> list[MarketAccessNode]:
    return [
        leaf for leaf in plan.leaves() if isinstance(leaf, MarketAccessNode)
    ]
