"""Multi-user organizations — the paper's deployment unit.

"PayLess is supposed to be installed by each data buyer and serves all the
end users from the same data buyer" (Section 3), and the conclusion plans
for "many end users using PayLess simultaneously ... multi-query
optimization if users are willing to defer theirs to become a batch."

An :class:`Organization` wraps one shared PayLess installation:

* every end user gets a :class:`UserSession`; all sessions share the same
  semantic store and statistics, so one analyst's purchases make a
  colleague's overlapping queries free;
* spend is attributed per user for the finance report;
* users may *defer* queries; :meth:`Organization.flush` executes the
  deferred batch through the containment-ordered multi-query optimizer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.batch import execute_batch
from repro.core.payless import PayLess, QueryResult
from repro.errors import ReproError


@dataclass
class _Deferred:
    user: str
    sql: str
    params: tuple
    ticket: int


class UserSession:
    """One end user's handle onto the shared installation."""

    def __init__(self, organization: "Organization", name: str):
        self.organization = organization
        self.name = name
        self.transactions = 0
        self.queries = 0
        #: Attribution guard: several threads may run queries as one user
        #: (and :meth:`Organization.flush` attributes from another thread).
        self._lock = threading.Lock()

    def query(self, sql: str, params: Sequence[Any] = ()) -> QueryResult:
        """Run immediately, attributing the spend to this user."""
        result = self.organization.payless.query(sql, params)
        self._attribute(result)
        return result

    def _attribute(self, result: QueryResult) -> None:
        with self._lock:
            self.transactions += result.stats.transactions
            self.queries += 1

    def defer(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Queue for the next organization-wide batch; returns a ticket."""
        return self.organization._defer(self.name, sql, tuple(params))

    def __repr__(self) -> str:
        return (
            f"UserSession({self.name!r}, {self.queries} queries, "
            f"{self.transactions} trans.)"
        )


class Organization:
    """A buyer organization: one PayLess install, many end users."""

    def __init__(self, payless: PayLess, name: str = "organization"):
        self.payless = payless
        self.name = name
        self._users: dict[str, UserSession] = {}
        self._users_lock = threading.Lock()
        self._deferred: list[_Deferred] = []
        self._next_ticket = 0

    def user(self, name: str) -> UserSession:
        """Get or create the session for ``name``."""
        key = name.lower()
        with self._users_lock:
            if key not in self._users:
                self._users[key] = UserSession(self, name)
            return self._users[key]

    def serve(self, config=None) -> "QueryScheduler":
        """Open the concurrent serving front-end on this installation.

        Returns a started :class:`~repro.serve.scheduler.QueryScheduler`
        (use it as a context manager); all its sessions share this
        organization's store, statistics, and plan cache, and overlapping
        in-flight fetches coalesce when the config enables it.
        """
        from repro.serve.scheduler import QueryScheduler

        return QueryScheduler(self.payless, config)

    @property
    def users(self) -> list[UserSession]:
        with self._users_lock:
            return list(self._users.values())

    @property
    def pending_count(self) -> int:
        return len(self._deferred)

    def _defer(self, user: str, sql: str, params: tuple) -> int:
        ticket = self._next_ticket
        self._next_ticket += 1
        self._deferred.append(
            _Deferred(user=user, sql=sql, params=params, ticket=ticket)
        )
        return ticket

    def flush(self) -> dict[int, QueryResult]:
        """Run every deferred query as one cost-ordered batch.

        Returns results keyed by ticket; spend is attributed to the user
        who deferred each query (by the actual per-query billing inside
        the batch).
        """
        if not self._deferred:
            return {}
        deferred = self._deferred
        self._deferred = []
        outcome = execute_batch(
            self.payless, [(d.sql, d.params) for d in deferred]
        )
        results: dict[int, QueryResult] = {}
        for entry, result in zip(deferred, outcome.results):
            self.user(entry.user)._attribute(result)
            results[entry.ticket] = result
        return results

    def recover(self):
        """Rebuild the installation's durable state (see PayLess.recover)."""
        return self.payless.recover()

    def close(self) -> None:
        """Clean shutdown of the shared installation's durable state."""
        self.payless.close()

    def __enter__(self) -> "Organization":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def spend_report(self) -> str:
        """Per-user attribution of the organization's market spend."""
        lines = [f"{self.name}: {self.payless.bill()}"]
        users = self.users
        for session in sorted(users, key=lambda s: s.name):
            lines.append(
                f"  {session.name}: {session.queries} queries, "
                f"{session.transactions} transactions"
            )
        unattributed = self.payless.total_transactions - sum(
            s.transactions for s in users
        )
        if unattributed:
            lines.append(f"  (unattributed: {unattributed} transactions)")
        return "\n".join(lines)
